//! # safeweb
//!
//! Top-level facade for the SafeWeb workspace: re-exports every subsystem
//! crate plus the deployment builder from [`safeweb_core`]. Downstream
//! users can depend on this one crate; the repository's examples and
//! integration tests are written against it.
//!
//! See `README.md` for an overview and `DESIGN.md` for the paper-to-crate
//! mapping.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use safeweb_core::{SafeWebBuilder, SafeWebDeployment, Zone, ZoneTopology, ZoneViolation};

pub use safeweb_broker as broker;
pub use safeweb_docstore as docstore;
pub use safeweb_engine as engine;
pub use safeweb_events as events;
pub use safeweb_http as http;
pub use safeweb_json as json;
pub use safeweb_labels as labels;
pub use safeweb_mdt as mdt;
pub use safeweb_obs as obs;
pub use safeweb_regex as regex;
pub use safeweb_relstore as relstore;
pub use safeweb_sched as sched;
pub use safeweb_selector as selector;
pub use safeweb_stomp as stomp;
pub use safeweb_taint as taint;
pub use safeweb_web as web;

/// Crate version, for diagnostics.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
