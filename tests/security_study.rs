//! Repository-level integration test: the §5.2 security study (experiments
//! E6–E9 in DESIGN.md). For each of the paper's four CVE-derived
//! vulnerability classes, SafeWeb must contain the injected bug: the
//! protected portal denies the response while the unprotected portal
//! provably leaks.

use safeweb_mdt::{run_experiment, VulnClass};

fn assert_contained(class: VulnClass) {
    let result = run_experiment(class);
    assert_ne!(
        result.protected_status, 200,
        "{class}: SafeWeb failed to abort the disclosing response"
    );
    assert_eq!(
        result.unprotected_status, 200,
        "{class}: the injected bug did not manifest without SafeWeb"
    );
    assert!(
        result.unprotected_leaked,
        "{class}: unprotected run did not actually disclose foreign data"
    );
    assert!(result.contained(), "{class}: not contained");
}

#[test]
fn e6_omitted_access_checks_contained() {
    assert_contained(VulnClass::OmittedAccessCheck);
}

#[test]
fn e7_errors_in_access_checks_contained() {
    assert_contained(VulnClass::ErrorInAccessCheck);
}

#[test]
fn e8_inappropriate_access_checks_contained() {
    assert_contained(VulnClass::InappropriateAccessCheck);
}

#[test]
fn e9_design_errors_contained() {
    assert_contained(VulnClass::DesignError);
}

#[test]
fn correct_portal_passes_baseline() {
    // The frontend classes share a baseline shape: attacker denied with
    // the *application* check alone.
    let r = run_experiment(VulnClass::OmittedAccessCheck);
    assert_eq!(r.baseline_status, 403);
    // The design-error baseline is the owner reading their own records.
    let r = run_experiment(VulnClass::DesignError);
    assert_eq!(r.baseline_status, 200);
}
