//! Repository-level integration tests spanning every tier over real
//! sockets: STOMP broker server ↔ engine (remote bus) ↔ document store ↔
//! HTTP frontend, plus the S1 unidirectionality properties.

use std::sync::Arc;
use std::time::Duration;

use safeweb::broker::{Broker, BrokerServer};
use safeweb::docstore::{DocStore, Replicator};
use safeweb::engine::{Engine, Relabel, RemoteBus, UnitError, UnitSpec};
use safeweb::events::Event;
use safeweb::http::{client, Method, Request};
use safeweb::labels::{Label, LabelSet, Policy, Privilege, PrivilegeSet};
use safeweb::taint::SStr;
use safeweb::web::{AuthConfig, Ctx, SResponse, SafeWebApp, UserStore};
use safeweb::{Zone, ZoneTopology};

/// The full pipeline with a *networked* broker: producer unit → TCP STOMP
/// broker → jailed transform unit → storage into a DocStore → replication
/// → HTTP frontend, ending with the label check against two users.
#[test]
fn networked_pipeline_end_to_end() {
    let policy: Policy = "
        unit importer {
            privileged
        }
        unit enricher {
            clearance label:conf:e/*
        }
        unit storage {
            privileged
            clearance label:conf:e/*
        }
    "
    .parse()
    .unwrap();

    let server = BrokerServer::bind("127.0.0.1:0", Broker::new(), policy.clone()).unwrap();
    let addr = server.addr().to_string();

    // Intranet side: storage DB + DMZ replica.
    let app_db = DocStore::new("intranet");
    app_db.create_view("by_mid", "mdt_id");
    let dmz = DocStore::new("dmz");
    dmz.create_view("by_mid", "mdt_id");
    dmz.set_read_only(true);

    // Engine connects to the broker over TCP (remote bus), like the
    // paper's deployment where the engine and broker are separate
    // processes.
    let bus = RemoteBus::connect(&addr, "enricher").unwrap();
    let mut engine = Engine::new(Arc::new(bus), policy.clone());
    engine
        .add_unit(
            UnitSpec::new("enricher").subscribe("/raw", None, |jail, event| {
                let upper = event.attr("name").unwrap_or("").to_uppercase();
                jail.publish(
                    Event::new("/enriched")
                        .map_err(|e| UnitError::BadEvent(e.to_string()))?
                        .with_attr("mdt_id", event.attr("mdt_id").unwrap_or("?"))
                        .with_attr("name", &upper)
                        .with_payload(format!(
                            "{{\"mdt_id\":\"{}\",\"name\":\"{}\"}}",
                            event.attr("mdt_id").unwrap_or("?"),
                            upper
                        )),
                    Relabel::keep(),
                )
            }),
        )
        .unwrap();
    let storage_bus = RemoteBus::connect(&addr, "storage").unwrap();
    let storage_db = app_db.clone();
    let mut storage_engine = Engine::new(Arc::new(storage_bus), policy.clone());
    storage_engine
        .add_unit(
            UnitSpec::new("storage").subscribe("/enriched", None, move |jail, event| {
                let _io = jail.io()?;
                let body = safeweb::json::Value::parse(event.payload().unwrap_or("{}"))
                    .map_err(|e| UnitError::BadEvent(e.to_string()))?;
                storage_db
                    .put(
                        &format!("rec-{}", event.attr("name").unwrap_or("x")),
                        body,
                        *jail.labels(),
                        None,
                    )
                    .map_err(|e| UnitError::Application(e.to_string()))?;
                Ok(())
            }),
        )
        .unwrap();
    let h1 = engine.start().unwrap();
    let h2 = storage_engine.start().unwrap();
    std::thread::sleep(Duration::from_millis(200)); // subscriptions settle

    // The importer publishes one labelled record over TCP.
    let importer = RemoteBus::connect(&addr, "importer").unwrap();
    use safeweb::engine::EventBus;
    importer
        .publish(
            &Event::new("/raw")
                .unwrap()
                .with_attr("mdt_id", "a")
                .with_attr("name", "ann")
                .with_labels([Label::conf("e", "mdt/a")]),
        )
        .unwrap();

    // Wait for the doc to land, then replicate to the DMZ.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while app_db.is_empty() {
        assert!(std::time::Instant::now() < deadline, "pipeline stalled");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut replicator = Replicator::new(app_db.clone(), dmz.clone());
    replicator.run_once();
    let doc = dmz.get("rec-ANN").expect("replicated");
    assert!(doc.labels().contains(&Label::conf("e", "mdt/a")));

    // Frontend over the DMZ replica.
    let users = UserStore::new(
        safeweb::relstore::Database::new("web"),
        AuthConfig {
            hash_iterations: 500,
        },
    );
    let mut cleared = PrivilegeSet::new();
    cleared.grant(Privilege::clearance(Label::conf("e", "mdt/a")));
    users.create_user("member", "pw", &cleared, false).unwrap();
    users
        .create_user("outsider", "pw", &PrivilegeSet::new(), false)
        .unwrap();

    let mut app = SafeWebApp::new(users, dmz.clone());
    app.get("/records/:mid", |ctx: &Ctx<'_>| {
        let docs = ctx.records_by("by_mid", ctx.param_raw("mid").unwrap_or(""));
        let parts: Vec<SStr> = docs.iter().map(|d| d.to_json_sstr()).collect();
        SResponse::json(SStr::join(parts.iter(), ","))
    });
    let http =
        safeweb::http::HttpServer::bind("127.0.0.1:0", Arc::new(app).into_handler()).unwrap();
    let http_addr = http.addr().to_string();

    let ok = client::send(
        &http_addr,
        Request::new(Method::Get, "/records/a").with_basic_auth("member", "pw"),
    )
    .unwrap();
    assert_eq!(ok.status(), 200);
    assert!(ok.body_str().unwrap().contains("ANN"));

    let denied = client::send(
        &http_addr,
        Request::new(Method::Get, "/records/a").with_basic_auth("outsider", "pw"),
    )
    .unwrap();
    assert_eq!(denied.status(), 403);
    assert!(!denied.body_str().unwrap().contains("ANN"));

    assert!(h1.violations().is_empty());
    assert!(h2.violations().is_empty());
    h1.stop();
    h2.stop();
}

/// S1: the deployment's data paths are one-way. The DMZ replica rejects
/// writes, replication never flows backwards, and the firewall matrix
/// forbids DMZ→Intranet and External→Intranet.
#[test]
fn s1_unidirectional_data_flow() {
    let fw = ZoneTopology::ecric();
    assert!(fw.check(Zone::Dmz, Zone::Intranet).is_err());
    assert!(fw.check(Zone::External, Zone::Intranet).is_err());
    assert!(fw.check(Zone::Intranet, Zone::Dmz).is_ok());

    let intranet = DocStore::new("intranet");
    let dmz = DocStore::new("dmz");
    dmz.set_read_only(true);

    // Frontend-style write to the replica: refused.
    assert!(dmz
        .put("x", safeweb::json::Value::object(), LabelSet::new(), None)
        .is_err());

    // Pollute the DMZ via the internal path, then replicate forward: the
    // Intranet instance must never receive it.
    intranet
        .put(
            "legit",
            safeweb::json::Value::object(),
            LabelSet::new(),
            None,
        )
        .unwrap();
    let mut rep = Replicator::new(intranet.clone(), dmz.clone());
    rep.run_once();
    assert!(dmz.get("legit").is_some());
    assert!(intranet.get("legit").is_some());
    assert_eq!(intranet.ids(), vec!["legit".to_string()]);
}

/// S2 at the unit level: a buggy unit that tries to exfiltrate labelled
/// data to a public topic is stopped by the jail, and the violation is
/// observable.
#[test]
fn s2_buggy_unit_cannot_leak() {
    let policy: Policy = "unit logger {\n clearance label:conf:e/*\n}"
        .parse()
        .unwrap();
    let broker = Broker::new();
    let mut engine = Engine::new(Arc::new(broker.clone()), policy);
    engine
        .add_unit(
            UnitSpec::new("logger").subscribe("/sensitive", None, |jail, event| {
                // The §3.1 example: a logging function that would write
                // confidential records to an externally readable log topic.
                jail.publish(
                    Event::new("/public_log")
                        .map_err(|e| UnitError::BadEvent(e.to_string()))?
                        .with_attr("line", event.attr("data").unwrap_or("")),
                    Relabel::keep().remove_all(), // bug: strips labels
                )
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();
    let log_reader = broker.subscribe("log", "1", "/public_log", None, PrivilegeSet::new());

    broker.publish(
        &Event::new("/sensitive")
            .unwrap()
            .with_attr("data", "patient record")
            .with_labels([Label::conf("e", "patient/1")]),
    );

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.violations().is_empty() {
        assert!(
            std::time::Instant::now() < deadline,
            "violation never recorded"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(log_reader.try_recv().is_err(), "leak reached the log");
    handle.stop();
}
