//! Failure-injection tests: malformed protocol input, dropped
//! connections, interrupted replication and broken policy files must
//! degrade safely (fail closed), never disclose data, and never wedge the
//! system.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use safeweb::broker::{Broker, BrokerServer, EventClient};
use safeweb::docstore::{DocStore, Replicator};
use safeweb::events::Event;
use safeweb::labels::{LabelSet, Policy};

fn policy() -> Policy {
    "unit producer {\n clearance label:conf:e/*\n}"
        .parse()
        .unwrap()
}

#[test]
fn broker_survives_garbage_bytes() {
    let server = BrokerServer::bind("127.0.0.1:0", Broker::new(), policy()).unwrap();
    let addr = server.addr();

    // Blast raw garbage at the broker.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"\x00\xff\x13GARBAGE\n\n\x00more trash")
            .unwrap();
        let _ = s.read(&mut [0u8; 128]);
    }
    // Send a frame with an unknown command after CONNECT.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"CONNECT\nlogin:producer\n\n\x00").unwrap();
        std::thread::sleep(Duration::from_millis(50));
        s.write_all(b"TELEPORT\n\n\x00").unwrap();
        let mut buf = vec![0u8; 1024];
        let _ = s.read(&mut buf);
    }

    // The broker still serves well-formed clients.
    let mut consumer = EventClient::connect(&addr.to_string(), "producer").unwrap();
    consumer.subscribe("/t", None).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let mut producer = EventClient::connect(&addr.to_string(), "producer").unwrap();
    producer
        .publish(&Event::new("/t").unwrap().with_labels([]))
        .unwrap();
    assert!(consumer.next_delivery().is_ok());
}

#[test]
fn broker_cleans_up_after_abrupt_disconnect() {
    let server = BrokerServer::bind("127.0.0.1:0", Broker::new(), policy()).unwrap();
    let addr = server.addr().to_string();
    {
        let mut c = EventClient::connect(&addr, "producer").unwrap();
        c.subscribe("/t", None).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(server.broker().subscription_count(), 1);
        // Drop without DISCONNECT.
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.broker().subscription_count() != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "subscriptions not cleaned up after abrupt disconnect"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn http_server_survives_malformed_requests() {
    use std::sync::Arc;
    let server = safeweb::http::HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(|_req| safeweb::http::Response::text("ok")),
    )
    .unwrap();
    let addr = server.addr();

    for garbage in [
        b"NONSENSE\r\n\r\n".as_slice(),
        b"GET\r\n\r\n".as_slice(),
        b"GET / HTTP/9.9\r\n\r\n".as_slice(),
        b"GET / HTTP/1.1\r\nbroken header\r\n\r\n".as_slice(),
        b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n".as_slice(),
    ] {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(garbage).unwrap();
        let mut buf = String::new();
        let _ = s.read_to_string(&mut buf);
        assert!(
            buf.starts_with("HTTP/1.1 4"),
            "expected 4xx for {garbage:?}, got {buf:?}"
        );
    }

    // Still healthy afterwards.
    let resp = safeweb::http::client::get(&addr.to_string(), "/").unwrap();
    assert_eq!(resp.status(), 200);
}

#[test]
fn replication_resumes_after_interruption() {
    let src = DocStore::new("src");
    let dst = DocStore::new("dst");
    for i in 0..5 {
        src.put(
            &format!("d{i}"),
            safeweb::json::Value::object(),
            LabelSet::new(),
            None,
        )
        .unwrap();
    }
    let mut rep = Replicator::new(src.clone(), dst.clone());
    rep.run_once();
    assert_eq!(dst.len(), 5);

    // "Crash": drop the replicator (losing nothing durable), write more,
    // then resume with a fresh replicator from scratch — convergence must
    // still hold because replication is idempotent.
    drop(rep);
    for i in 5..8 {
        src.put(
            &format!("d{i}"),
            safeweb::json::Value::object(),
            LabelSet::new(),
            None,
        )
        .unwrap();
    }
    let mut rep2 = Replicator::new(src.clone(), dst.clone());
    rep2.run_once();
    assert_eq!(dst.len(), 8);
    assert_eq!(src.ids(), dst.ids());
}

#[test]
fn malformed_policy_files_are_rejected_not_misread() {
    // Fail closed: a policy that does not parse must never be half-loaded.
    for bad in [
        "unit x {",                               // unterminated
        "user u {\n privileged \n}",              // users cannot be privileged
        "unit x {\n teleport label:conf:a/b \n}", // unknown privilege
        "unit x {\n clearance garbage \n}",       // bad label
        "unit x {\n}\nunit x {\n}",               // duplicate
    ] {
        assert!(
            bad.parse::<Policy>().is_err(),
            "accepted bad policy: {bad:?}"
        );
    }
}

#[test]
fn unknown_login_gets_no_privileges_not_an_error() {
    // A unit login absent from the policy connects fine but holds no
    // clearance: fail-closed semantics over the network.
    let server = BrokerServer::bind("127.0.0.1:0", Broker::new(), policy()).unwrap();
    let addr = server.addr().to_string();
    let mut ghost = EventClient::connect(&addr, "ghost").unwrap();
    ghost.subscribe("/t", None).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    producer
        .publish(
            &Event::new("/t")
                .unwrap()
                .with_labels([safeweb::labels::Label::conf("e", "secret")]),
        )
        .unwrap();
    // Labelled event: not delivered to the ghost.
    assert!(ghost
        .next_delivery_timeout(Duration::from_millis(200))
        .unwrap()
        .is_none());
    // Public event: delivered.
    producer
        .publish(&Event::new("/t").unwrap().with_labels([]))
        .unwrap();
    assert!(ghost.next_delivery().is_ok());
}
