//! The documented examples must keep working: `quickstart` and
//! `event_pipeline` (the two cheap, deterministic ones) are run to
//! completion as part of tier-1. The heavier examples (`mdt_portal`,
//! `vulnerability_injection`, `federation`) are exercised indirectly by
//! the integration suites and CI's `cargo build --examples` step.

use std::process::Command;

fn run_example(name: &str, expect: &str) {
    let output = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "example {name} failed ({}):\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        output.status
    );
    assert!(
        stdout.contains(expect),
        "example {name} did not print {expect:?}:\n{stdout}"
    );
}

/// One test, two examples, run sequentially: nested cargo invocations
/// contend on the target-dir lock, so parallel test fns would only
/// serialise anyway.
#[test]
fn quickstart_and_event_pipeline_run_to_completion() {
    run_example("quickstart", "quickstart OK");
    run_example("event_pipeline", "event_pipeline OK");
}
