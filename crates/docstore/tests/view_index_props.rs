//! Property tests: the incrementally maintained view indexes and the
//! id-prefix range query always agree with a linear-scan oracle — under
//! any interleaving of puts, field-changing updates, deletes, replication
//! runs and changes-feed compaction, on both the source store and the
//! replicated target.

use proptest::prelude::*;
use safeweb_docstore::{DocStore, Document, Replicator};
use safeweb_json::{jobject, Value};
use safeweb_labels::{Label, LabelSet};

#[derive(Debug, Clone)]
enum Op {
    /// Put or update document `doc-{0}` with indexed key `k{1}` and
    /// payload `{2}`.
    Put(u8, u8, i64),
    /// Remove the indexed field from `doc-{0}` (if it exists).
    DropField(u8),
    Delete(u8),
    Replicate,
    /// Compact the source's changes feed, retaining `{0}` recent entries.
    Compact(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..4, any::<i64>()).prop_map(|(id, k, v)| Op::Put(id, k, v)),
        (0u8..6).prop_map(Op::DropField),
        (0u8..6).prop_map(Op::Delete),
        Just(Op::Replicate),
        (0u8..8).prop_map(Op::Compact),
    ]
}

/// The linear-scan oracle the seed's `query_view` implemented: filter all
/// documents on body field equality.
fn oracle_view(store: &DocStore, field: &str, key: &Value) -> Vec<Document> {
    store.scan(|d| d.body().get(field) == Some(key))
}

fn oracle_prefix(store: &DocStore, prefix: &str) -> Vec<Document> {
    store.scan(|d| d.id().starts_with(prefix))
}

fn assert_indexes_match_oracle(store: &DocStore) -> Result<(), TestCaseError> {
    for k in 0u8..4 {
        let key = Value::Str(format!("k{k}"));
        let indexed = store.query_view("by_key", &key).unwrap();
        let scanned = oracle_view(store, "key", &key);
        prop_assert_eq!(&indexed, &scanned, "view mismatch on {:?}", key);
    }
    for prefix in ["doc-", "doc-1", "other-"] {
        let ranged = store.scan_prefix(prefix);
        let scanned = oracle_prefix(store, prefix);
        prop_assert_eq!(&ranged, &scanned, "prefix mismatch on {:?}", prefix);
        prop_assert_eq!(store.count_prefix(prefix), scanned.len());
    }
    Ok(())
}

proptest! {
    #[test]
    fn indexed_views_match_linear_scan_oracle(
        ops in proptest::collection::vec(arb_op(), 0..60),
    ) {
        let src = DocStore::new("src");
        let dst = DocStore::new("dst");
        src.create_view("by_key", "key");
        dst.create_view("by_key", "key");
        let mut rep = Replicator::new(src.clone(), dst.clone());

        for op in ops {
            match op {
                Op::Put(id, k, v) => {
                    let id = format!("doc-{id}");
                    let key = format!("k{k}");
                    let labels = LabelSet::singleton(Label::conf("e", &key));
                    let body = jobject!{"key" => key.as_str(), "v" => v};
                    let rev = src.get(&id).map(|d| d.rev().clone());
                    src.put(&id, body, labels, rev.as_ref()).unwrap();
                }
                Op::DropField(id) => {
                    let id = format!("doc-{id}");
                    if let Some(doc) = src.get(&id) {
                        let rev = doc.rev().clone();
                        src.put(&id, jobject!{"v" => 0}, doc.labels().clone(), Some(&rev))
                            .unwrap();
                    }
                }
                Op::Delete(id) => {
                    let id = format!("doc-{id}");
                    if let Some(doc) = src.get(&id) {
                        let rev = doc.rev().clone();
                        src.delete(&id, &rev).unwrap();
                    }
                }
                Op::Replicate => { rep.run_once(); }
                Op::Compact(retain) => { src.compact_changes(retain as usize); }
            }
            assert_indexes_match_oracle(&src)?;
        }

        // After a final replication the target's indexes (maintained
        // through the apply_replicated path) match its own oracle, and the
        // stores converge even if compaction forced a full resync.
        rep.run_once();
        assert_indexes_match_oracle(&src)?;
        assert_indexes_match_oracle(&dst)?;
        prop_assert_eq!(src.ids(), dst.ids());
        for k in 0u8..4 {
            let key = Value::Str(format!("k{k}"));
            prop_assert_eq!(
                src.query_view("by_key", &key).unwrap(),
                dst.query_view("by_key", &key).unwrap()
            );
        }
    }

    /// Auto-compaction never lets the feed grow past one entry per live
    /// document plus twice the retention window, and replication through
    /// repeated compaction still converges.
    #[test]
    fn bounded_feed_replication_converges(
        retention in 4usize..32,
        writes in 1usize..300,
    ) {
        let src = DocStore::new("src");
        let dst = DocStore::new("dst");
        src.set_changes_retention(retention);
        let mut rep = Replicator::new(src.clone(), dst.clone());
        for i in 0..writes {
            let id = format!("doc-{}", i % 7);
            let rev = src.get(&id).map(|d| d.rev().clone());
            src.put(&id, jobject!{"i" => i}, LabelSet::new(), rev.as_ref()).unwrap();
            if i % 13 == 0 {
                rep.run_once();
            }
            prop_assert!(src.changes_len() <= src.len() + 2 * retention);
        }
        rep.run_once();
        prop_assert_eq!(src.ids(), dst.ids());
        for id in src.ids() {
            let (s, d) = (src.get(&id).unwrap(), dst.get(&id).unwrap());
            prop_assert_eq!(s.rev(), d.rev());
        }
    }
}
