//! Property tests: the incrementally maintained view indexes and the
//! id-prefix range query always agree with a linear-scan oracle — under
//! any interleaving of puts, field-changing updates, deletes, replication
//! runs and changes-feed compaction, on both the source store and the
//! replicated target.

use proptest::prelude::*;
use safeweb_docstore::{DocStore, Document, Replicator};
use safeweb_json::{jobject, Value};
use safeweb_labels::{Label, LabelSet};

#[derive(Debug, Clone)]
enum Op {
    /// Put or update document `doc-{0}` with indexed key `k{1}` and
    /// payload `{2}`.
    Put(u8, u8, i64),
    /// Remove the indexed field from `doc-{0}` (if it exists).
    DropField(u8),
    Delete(u8),
    Replicate,
    /// Compact the source's changes feed, retaining `{0}` recent entries.
    Compact(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..4, any::<i64>()).prop_map(|(id, k, v)| Op::Put(id, k, v)),
        (0u8..6).prop_map(Op::DropField),
        (0u8..6).prop_map(Op::Delete),
        Just(Op::Replicate),
        (0u8..8).prop_map(Op::Compact),
    ]
}

/// The linear-scan oracle the seed's `query_view` implemented: filter all
/// documents on body field equality.
fn oracle_view(store: &DocStore, field: &str, key: &Value) -> Vec<Document> {
    store.scan(|d| d.body().get(field) == Some(key))
}

fn oracle_prefix(store: &DocStore, prefix: &str) -> Vec<Document> {
    store.scan(|d| d.id().starts_with(prefix))
}

fn assert_indexes_match_oracle(store: &DocStore) -> Result<(), TestCaseError> {
    for k in 0u8..4 {
        let key = Value::Str(format!("k{k}"));
        let indexed = store.query_view("by_key", &key).unwrap();
        let scanned = oracle_view(store, "key", &key);
        prop_assert_eq!(&indexed, &scanned, "view mismatch on {:?}", key);
    }
    for prefix in ["doc-", "doc-1", "other-"] {
        let ranged = store.scan_prefix(prefix);
        let scanned = oracle_prefix(store, prefix);
        prop_assert_eq!(&ranged, &scanned, "prefix mismatch on {:?}", prefix);
        prop_assert_eq!(store.count_prefix(prefix), scanned.len());
    }
    Ok(())
}

proptest! {
    #[test]
    fn indexed_views_match_linear_scan_oracle(
        ops in proptest::collection::vec(arb_op(), 0..60),
    ) {
        let src = DocStore::new("src");
        let dst = DocStore::new("dst");
        src.create_view("by_key", "key");
        dst.create_view("by_key", "key");
        let mut rep = Replicator::new(src.clone(), dst.clone());

        for op in ops {
            match op {
                Op::Put(id, k, v) => {
                    let id = format!("doc-{id}");
                    let key = format!("k{k}");
                    let labels = LabelSet::singleton(Label::conf("e", &key));
                    let body = jobject!{"key" => key.as_str(), "v" => v};
                    let rev = src.get(&id).map(|d| d.rev().clone());
                    src.put(&id, body, labels, rev.as_ref()).unwrap();
                }
                Op::DropField(id) => {
                    let id = format!("doc-{id}");
                    if let Some(doc) = src.get(&id) {
                        let rev = doc.rev().clone();
                        src.put(&id, jobject!{"v" => 0}, *doc.labels(), Some(&rev))
                            .unwrap();
                    }
                }
                Op::Delete(id) => {
                    let id = format!("doc-{id}");
                    if let Some(doc) = src.get(&id) {
                        let rev = doc.rev().clone();
                        src.delete(&id, &rev).unwrap();
                    }
                }
                Op::Replicate => { rep.run_once(); }
                Op::Compact(retain) => { src.compact_changes(retain as usize); }
            }
            assert_indexes_match_oracle(&src)?;
        }

        // After a final replication the target's indexes (maintained
        // through the apply_replicated path) match its own oracle, and the
        // stores converge even if compaction forced a full resync.
        rep.run_once();
        assert_indexes_match_oracle(&src)?;
        assert_indexes_match_oracle(&dst)?;
        prop_assert_eq!(src.ids(), dst.ids());
        for k in 0u8..4 {
            let key = Value::Str(format!("k{k}"));
            prop_assert_eq!(
                src.query_view("by_key", &key).unwrap(),
                dst.query_view("by_key", &key).unwrap()
            );
        }
    }

    /// Range queries over integer view keys agree with a linear-scan
    /// oracle — numerically ordered results, correct inclusive/exclusive
    /// bound handling, and no bleed-through from non-integer keys sharing
    /// the view — under arbitrary keys including `i64` extremes.
    #[test]
    fn int_range_queries_match_linear_scan_oracle(
        docs in proptest::collection::vec((0u8..24, any::<i64>()), 0..30),
        a in any::<i64>(),
        b in any::<i64>(),
        include_lo in any::<bool>(),
        include_hi in any::<bool>(),
    ) {
        use std::ops::Bound;
        let store = DocStore::new("s");
        store.create_view("by_k", "k");
        for (id, k) in &docs {
            let id = format!("doc-{id}");
            let rev = store.get(&id).map(|d| d.rev().clone());
            store
                .put(&id, jobject! {"k" => *k}, LabelSet::new(), rev.as_ref())
                .unwrap();
        }
        // Decoys of other types: a typed range must never return these.
        store.put("s-doc", jobject!{"k" => "10"}, LabelSet::new(), None).unwrap();
        store.put("f-doc", jobject!{"k" => 10.5}, LabelSet::new(), None).unwrap();
        store.put("n-doc", jobject!{"k" => Value::Null}, LabelSet::new(), None).unwrap();

        let (lo, hi) = (a.min(b), a.max(b));
        let lo_bound = if include_lo { Bound::Included(Value::from(lo)) } else { Bound::Excluded(Value::from(lo)) };
        let hi_bound = if include_hi { Bound::Included(Value::from(hi)) } else { Bound::Excluded(Value::from(hi)) };
        let got = store.query_view_range("by_k", (lo_bound, hi_bound)).unwrap();

        let mut expected: Vec<(i64, Document)> = store
            .scan(|d| {
                d.body().get("k").and_then(Value::as_i64).is_some_and(|v| {
                    matches!(d.body().get("k"), Some(Value::Int(_)))
                        && (if include_lo { v >= lo } else { v > lo })
                        && (if include_hi { v <= hi } else { v < hi })
                })
            })
            .into_iter()
            .map(|d| (d.body().get("k").and_then(Value::as_i64).unwrap(), d))
            .collect();
        // The spec order: ascending key, then id (scan returns id order).
        expected.sort_by(|(ka, da), (kb, db)| ka.cmp(kb).then_with(|| da.id().cmp(db.id())));
        let expected: Vec<Document> = expected.into_iter().map(|(_, d)| d).collect();
        prop_assert_eq!(&got, &expected);

        // An inverted range is empty, never a panic.
        prop_assert!(store
            .query_view_range("by_k", Value::from(hi.max(1))..Value::from(lo.min(0)))
            .unwrap()
            .is_empty() || lo.min(0) > hi.max(1));
    }

    /// Same spec for string keys: byte-lexicographic order, against the
    /// linear-scan oracle.
    #[test]
    fn string_range_queries_match_linear_scan_oracle(
        docs in proptest::collection::vec((0u8..24, "[a-e]{0,3}"), 0..30),
        a in "[a-e]{0,3}",
        b in "[a-e]{0,3}",
    ) {
        let store = DocStore::new("s");
        store.create_view("by_k", "k");
        for (id, k) in &docs {
            let id = format!("doc-{id}");
            let rev = store.get(&id).map(|d| d.rev().clone());
            store
                .put(&id, jobject! {"k" => k.as_str()}, LabelSet::new(), rev.as_ref())
                .unwrap();
        }
        store.put("i-doc", jobject!{"k" => 3}, LabelSet::new(), None).unwrap();

        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let got = store
            .query_view_range("by_k", Value::from(lo.as_str())..Value::from(hi.as_str()))
            .unwrap();
        let mut expected: Vec<Document> = store.scan(|d| {
            matches!(d.body().get("k"), Some(Value::Str(s)) if *s >= lo && *s < hi)
        });
        expected.sort_by(|da, db| {
            let key = |d: &Document| match d.body().get("k") {
                Some(Value::Str(s)) => s.clone(),
                _ => unreachable!("oracle filtered to strings"),
            };
            key(da).cmp(&key(db)).then_with(|| da.id().cmp(db.id()))
        });
        prop_assert_eq!(&got, &expected);
    }

    /// Auto-compaction never lets the feed grow past one entry per live
    /// document plus twice the retention window, and replication through
    /// repeated compaction still converges.
    #[test]
    fn bounded_feed_replication_converges(
        retention in 4usize..32,
        writes in 1usize..300,
    ) {
        let src = DocStore::new("src");
        let dst = DocStore::new("dst");
        src.set_changes_retention(retention);
        let mut rep = Replicator::new(src.clone(), dst.clone());
        for i in 0..writes {
            let id = format!("doc-{}", i % 7);
            let rev = src.get(&id).map(|d| d.rev().clone());
            src.put(&id, jobject!{"i" => i}, LabelSet::new(), rev.as_ref()).unwrap();
            if i % 13 == 0 {
                rep.run_once();
            }
            prop_assert!(src.changes_len() <= src.len() + 2 * retention);
        }
        rep.run_once();
        prop_assert_eq!(src.ids(), dst.ids());
        for id in src.ids() {
            let (s, d) = (src.get(&id).unwrap(), dst.get(&id).unwrap());
            prop_assert_eq!(s.rev(), d.rev());
        }
    }
}
