//! Fan-out replication: **two** DMZ replicas fed from one Intranet
//! source's changes feed, each persisting its *own* checkpoint through
//! its write-ahead log (per-replica durable checkpoints are what the WAL
//! work unblocked — before it, a second replica had nowhere to record
//! how far it had read).
//!
//! The scenario exercised: the replicas deliberately fall out of step
//! (one is stopped early), everything — source included — is shut down
//! and reopened from disk, and each replica then resumes **from its own
//! recovered checkpoint**: the laggard incrementally catches up on the
//! feed entries it missed, the current one transfers only the new
//! writes, and both converge to the restarted source without a full
//! re-transfer.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use safeweb_docstore::{DocStore, ReplicationHandle, Replicator};
use safeweb_json::jobject;
use safeweb_labels::LabelSet;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("safeweb-fanout-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn converged(src: &DocStore, replica: &DocStore) -> bool {
    src.ids() == replica.ids()
        && src.ids().iter().all(|id| {
            src.get(id).map(|d| d.rev().clone()) == replica.get(id).map(|d| d.rev().clone())
        })
}

#[test]
fn two_replicas_keep_independent_checkpoints_across_a_source_restart() {
    let src_dir = scratch("src");
    let a_dir = scratch("dmz-a");
    let b_dir = scratch("dmz-b");

    // ---- life 1: one feed, two durable replicas, one falls behind ----
    let first_batch = 5u32;
    let second_batch = 4u32;
    {
        let src = DocStore::open(&src_dir).expect("open source");
        let dmz_a = DocStore::open(&a_dir).expect("open replica a");
        let dmz_b = DocStore::open(&b_dir).expect("open replica b");
        dmz_a.set_read_only(true);
        dmz_b.set_read_only(true);

        for i in 0..first_batch {
            src.put(
                &format!("doc-{i}"),
                jobject! {"v" => i},
                LabelSet::new(),
                None,
            )
            .unwrap();
        }

        let rep_a =
            ReplicationHandle::start_durable(src.clone(), dmz_a.clone(), Duration::from_millis(5));
        let rep_b =
            ReplicationHandle::start_durable(src.clone(), dmz_b.clone(), Duration::from_millis(5));
        wait_until(
            || converged(&src, &dmz_a) && converged(&src, &dmz_b),
            "first fan-out",
        );

        // Replica B drops out; A keeps following the feed.
        rep_b.stop();
        for i in 0..second_batch {
            src.put(
                &format!("late-{i}"),
                jobject! {"v" => i},
                LabelSet::new(),
                None,
            )
            .unwrap();
        }
        let doomed = src.get("doc-0").unwrap().rev().clone();
        src.delete("doc-0", &doomed).unwrap();
        wait_until(|| converged(&src, &dmz_a), "replica A catching up");
        // A's checkpoint must durably cover the whole feed...
        wait_until(
            || dmz_a.replication_checkpoint_persisted() == Some(src.seq()),
            "replica A checkpoint persistence",
        );
        rep_a.stop();

        // ...while B's stayed where B stopped: same feed, two positions.
        let cp_a = dmz_a
            .replication_checkpoint_persisted()
            .expect("A persisted");
        let cp_b = dmz_b
            .replication_checkpoint_persisted()
            .expect("B persisted");
        assert_eq!(cp_a, src.seq());
        assert_eq!(
            cp_b,
            u64::from(first_batch),
            "B stopped after the first batch"
        );
        assert!(cp_b < cp_a, "checkpoints must be independent");
        assert_eq!(dmz_b.len(), first_batch as usize);
    } // everything drops: WAL locks release, "process exits"

    // ---- life 2: reopen all three, each replica resumes from its own ----
    let src = DocStore::open(&src_dir).expect("reopen source");
    assert_eq!(
        src.len(),
        (first_batch + second_batch) as usize - 1,
        "source recovered its documents"
    );
    src.put("fresh", jobject! {"v" => 99}, LabelSet::new(), None)
        .unwrap();

    let dmz_a = DocStore::open(&a_dir).expect("reopen replica a");
    let dmz_b = DocStore::open(&b_dir).expect("reopen replica b");
    dmz_a.set_read_only(true);
    dmz_b.set_read_only(true);
    let cp_a = dmz_a
        .replication_checkpoint_persisted()
        .expect("A recovered");
    let cp_b = dmz_b
        .replication_checkpoint_persisted()
        .expect("B recovered");
    assert!(cp_b < cp_a);

    // Drive the resumed runs directly so the reports are checkable.
    let mut rep_a = Replicator::with_checkpoint(src.clone(), dmz_a.clone(), cp_a);
    let report = rep_a.run_once();
    assert!(!report.resynced, "A's checkpoint is current: incremental");
    assert_eq!(report.docs_written, 1, "A transfers only the new write");
    assert_eq!(report.docs_deleted, 0);

    let mut rep_b = Replicator::with_checkpoint(src.clone(), dmz_b.clone(), cp_b);
    let report = rep_b.run_once();
    assert!(
        !report.resynced,
        "the reopened feed still covers B's older checkpoint"
    );
    assert_eq!(
        report.docs_written,
        u64::from(second_batch) + 1,
        "B catches up on the missed batch plus the new write"
    );
    assert_eq!(report.docs_deleted, 1, "B applies the missed deletion");

    assert!(converged(&src, &dmz_a), "replica A diverged");
    assert!(converged(&src, &dmz_b), "replica B diverged");

    for dir in [src_dir, a_dir, b_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
