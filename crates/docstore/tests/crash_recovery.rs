//! Crash-recovery kill-loop: the CI `persistence-crash` job's harness.
//!
//! The parent test spawns this same test binary as a **writer child**
//! (filtered to [`crash_writer_child`] with `SAFEWEB_CRASH_DIR` set),
//! lets it append to a durable store for a random number of
//! milliseconds, `SIGKILL`s it at whatever offset that lands on, reopens
//! the store, and checks the recovery invariants against a survivor
//! oracle — then hands the *same* directory to the next round, so each
//! recovery chains onto the last. Rounds default to 4 locally; CI sets
//! `SAFEWEB_KILL_ROUNDS=25`.
//!
//! The writer's op sequence is a pure function of the op index `n`:
//! op `n` puts `doc-(n % SLOTS)` with body `{"n": n}` (an MVCC update
//! when the slot exists), then durably records replication checkpoint
//! `n + 1`, then *acknowledges* `n` by appending a line to `acks.log`.
//! Because acknowledgement strictly follows durability, after a kill:
//!
//! * every acknowledged op must be recovered (`N_rec >= acked`),
//! * at most one unacknowledged op may additionally survive
//!   (`N_rec <= acked + 1`),
//! * the recovered store must equal the oracle replaying exactly `N_rec`
//!   ops — same ids, bodies, MVCC revisions and sequence number,
//! * the recovered replication checkpoint sits in `[acked, N_rec]`.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use safeweb_docstore::{DocStore, Replicator};
use safeweb_json::{jobject, Value};
use safeweb_labels::{Label, LabelSet};

/// Distinct document ids the writer cycles through.
const SLOTS: u64 = 16;

fn op_id(n: u64) -> String {
    format!("doc-{:02}", n % SLOTS)
}

fn op_labels(n: u64) -> LabelSet {
    LabelSet::singleton(Label::conf("e", &format!("mdt/{}", n % 3)))
}

/// Applies ops `0..n_ops` to `store` through the same public API the
/// writer child uses.
fn apply_ops(store: &DocStore, start: u64, n_ops: u64) {
    for n in start..n_ops {
        let id = op_id(n);
        let rev = store.get(&id).map(|d| d.rev().clone());
        store
            .put(&id, jobject! {"n" => n as i64}, op_labels(n), rev.as_ref())
            .expect("writer put");
        if store.is_durable() {
            store
                .persist_replication_checkpoint(n + 1)
                .expect("writer checkpoint");
        }
    }
}

/// The number of ops a recovered (or oracle) store reflects: op indexes
/// are written into bodies, so the maximum `n` among live docs + 1 is the
/// applied-op count (slots only ever move forward).
fn applied_ops(store: &DocStore) -> u64 {
    store
        .scan(|_| true)
        .iter()
        .filter_map(|d| d.body().get("n").and_then(Value::as_i64))
        .map(|n| n as u64 + 1)
        .max()
        .unwrap_or(0)
}

/// **Child mode** — runs only when the parent sets `SAFEWEB_CRASH_DIR`:
/// opens the durable store in that directory, derives its resume point
/// from the recovered state, and writes until killed.
#[test]
fn crash_writer_child() {
    let Ok(dir) = std::env::var("SAFEWEB_CRASH_DIR") else {
        return;
    };
    let store = DocStore::open(&dir).expect("child reopens the store");
    // A small snapshot window so kills also land inside the
    // snapshot-write / WAL-truncate cycle, not just between appends.
    store.set_snapshot_every(97);
    let mut n = applied_ops(&store);
    let mut acks = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(Path::new(&dir).join("acks.log"))
        .expect("open acks log");
    loop {
        apply_ops(&store, n, n + 1);
        // The ack only exists once the op (and its checkpoint) returned
        // from the durable store.
        writeln!(acks, "{n}").expect("ack");
        n += 1;
    }
}

/// Last fully written ack line + 1 = the number of acknowledged ops.
/// The final line may itself be torn by the kill; only `\n`-terminated
/// lines count (exactly the contract the writer's ack provides).
fn acked_ops(dir: &Path) -> u64 {
    let Ok(raw) = std::fs::read_to_string(dir.join("acks.log")) else {
        return 0;
    };
    let complete = &raw[..raw.rfind('\n').map_or(0, |i| i + 1)];
    complete
        .lines()
        .last()
        .and_then(|l| l.parse::<u64>().ok())
        .map_or(0, |n| n + 1)
}

struct KilledChild {
    acked: u64,
}

/// Spawns test `child_test` of this binary against `dir` (with any extra
/// `envs`), waits until `progressed` reports the child demonstrably did
/// work, lets it run `run_for` longer so the kill lands at an arbitrary
/// offset, then SIGKILLs and reaps it.
fn spawn_and_kill(
    dir: &Path,
    child_test: &str,
    envs: &[(&str, &str)],
    run_for: Duration,
    progressed: &dyn Fn() -> bool,
) {
    let exe = std::env::current_exe().expect("current test binary");
    let mut command = std::process::Command::new(exe);
    command
        .args([child_test, "--exact", "--nocapture"])
        .env("SAFEWEB_CRASH_DIR", dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    for (k, v) in envs {
        command.env(k, v);
    }
    let mut child = command.spawn().expect("spawn writer child");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !progressed() {
        assert!(
            std::time::Instant::now() < deadline,
            "writer child made no progress within 30s"
        );
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "writer child died before making progress"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(run_for);
    // The child must still be running when we kill it: an early exit
    // means the writer itself crashed (a real bug, not a simulated one).
    assert!(
        child.try_wait().expect("try_wait").is_none(),
        "writer child died on its own before the kill"
    );
    child.kill().expect("SIGKILL the writer");
    child.wait().expect("reap the writer");
}

/// Spawns the sequential writer child, kills it once past `prev_acked`,
/// and returns the acknowledgement count at the moment of death.
fn run_and_kill(dir: &Path, prev_acked: u64, run_for: Duration) -> KilledChild {
    spawn_and_kill(dir, "crash_writer_child", &[], run_for, &|| {
        acked_ops(dir) > prev_acked
    });
    KilledChild {
        acked: acked_ops(dir),
    }
}

/// A cheap deterministic PRNG so kill offsets vary between rounds and
/// runs without needing a `rand` dependency.
fn jitter(seed: &mut u64, lo: u64, hi: u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    lo + (*seed >> 33) % (hi - lo)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("safeweb-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// **The kill-loop.** N rounds of spawn → SIGKILL at a random offset →
/// reopen → compare against the survivor oracle, chaining the same store
/// directory through every round.
#[test]
fn kill_loop_recovers_acknowledged_writes() {
    if std::env::var("SAFEWEB_CRASH_DIR").is_ok() {
        return; // never recurse inside a writer child
    }
    let rounds: u64 = std::env::var("SAFEWEB_KILL_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let dir = temp_dir("kill-loop");
    let mut seed = 0x5afe_3eb0_0000_0001u64
        ^ std::time::UNIX_EPOCH
            .elapsed()
            .map_or(0, |d| d.as_nanos() as u64);
    let mut total_ops = 0u64;

    for round in 0..rounds {
        let run_for = Duration::from_millis(jitter(&mut seed, 5, 100));
        let killed = run_and_kill(&dir, total_ops, run_for);

        let store = DocStore::open(&dir).expect("recovery open");
        let recovered = applied_ops(&store);
        assert!(
            recovered >= killed.acked,
            "round {round}: lost acknowledged writes ({recovered} < {})",
            killed.acked
        );
        assert!(
            recovered <= killed.acked + 1,
            "round {round}: {} ops recovered but only {} acked — \
             acknowledgement ran ahead of durability",
            recovered,
            killed.acked
        );

        // Survivor oracle: an in-memory store fed exactly `recovered`
        // ops must match the recovered store bit for bit.
        let oracle = DocStore::new("oracle");
        apply_ops(&oracle, 0, recovered);
        assert_eq!(store.ids(), oracle.ids(), "round {round}: id set diverged");
        for id in oracle.ids() {
            let (got, want) = (store.get(&id).unwrap(), oracle.get(&id).unwrap());
            assert_eq!(got.rev(), want.rev(), "round {round}: rev of {id}");
            assert_eq!(got.body(), want.body(), "round {round}: body of {id}");
            assert_eq!(got.labels(), want.labels(), "round {round}: labels of {id}");
        }
        assert_eq!(store.seq(), recovered, "round {round}: sequence number");

        // The replication checkpoint persists through the same WAL:
        // recovered between the last acknowledged value and the op count.
        let ckpt = store
            .replication_checkpoint_persisted()
            .expect("durable store has a checkpoint");
        assert!(
            killed.acked <= ckpt && ckpt <= recovered,
            "round {round}: checkpoint {ckpt} outside [{}, {recovered}]",
            killed.acked
        );

        total_ops = recovered;
        drop(store); // release before the next child opens the directory
    }
    assert!(total_ops > 0, "kill-loop never observed a single write");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- group commit under WalSync::Always -------------------------------
//
// The second kill-loop re-runs the crash discipline with every screw
// tightened: `WalSync::Always` (acks require a completed fdatasync, so
// recovery must never hold FEWER ops than were acked), four concurrent
// writer threads sharing the group-commit leader, and a deliberately
// tiny WAL segment bound so kills land around rotation boundaries
// (seal-fsync → rename → fresh active segment → dir fsync).

/// Writer threads in the group-commit child.
const WRITERS: u64 = 4;
/// Tiny segment bound: a seal every handful of records, so every round
/// crosses rotation boundaries.
const TINY_SEGMENT: u64 = 1024;

fn writer_doc_id(writer: u64, n: u64) -> String {
    format!("w{writer}-{:02}", n % SLOTS)
}

/// Ops writer `writer` has applied, derived from recovered state: its
/// docs are its own namespace, written sequentially, so max body `n` + 1
/// is its op count.
fn writer_applied_ops(store: &DocStore, writer: u64) -> u64 {
    let prefix = format!("w{writer}-");
    store
        .scan(|_| true)
        .iter()
        .filter(|d| d.id().starts_with(&prefix))
        .filter_map(|d| d.body().get("n").and_then(Value::as_i64))
        .map(|n| n as u64 + 1)
        .max()
        .unwrap_or(0)
}

fn writer_acks_path(dir: &Path, writer: u64) -> PathBuf {
    dir.join(format!("acks-w{writer}.log"))
}

/// Acked op count of one writer thread (same torn-last-line contract as
/// [`acked_ops`]).
fn writer_acked_ops(dir: &Path, writer: u64) -> u64 {
    let Ok(raw) = std::fs::read_to_string(writer_acks_path(dir, writer)) else {
        return 0;
    };
    let complete = &raw[..raw.rfind('\n').map_or(0, |i| i + 1)];
    complete
        .lines()
        .last()
        .and_then(|l| l.parse::<u64>().ok())
        .map_or(0, |n| n + 1)
}

/// **Child mode** — concurrent writers under `WalSync::Always`: four
/// threads put into disjoint doc namespaces, each acknowledging an op
/// only after its put returned (i.e. after the group-commit fsync
/// covering it completed), until killed.
#[test]
fn crash_group_writer_child() {
    let Ok(dir) = std::env::var("SAFEWEB_CRASH_DIR") else {
        return;
    };
    if std::env::var("SAFEWEB_CRASH_GROUP").is_err() {
        return; // the sequential kill-loop's children skip this mode
    }
    let store = DocStore::open(&dir).expect("child reopens the store");
    store.set_wal_sync(safeweb_docstore::WalSync::Always);
    store.set_wal_segment_bytes(TINY_SEGMENT);
    // Snapshots prune sealed segments while writers append, so kills
    // also land inside rotation + prune cycles.
    store.set_snapshot_every(257);
    let dir = PathBuf::from(dir);
    let threads: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = store.clone();
            let mut acks = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(writer_acks_path(&dir, w))
                .expect("open writer acks log");
            std::thread::spawn(move || {
                let mut n = writer_applied_ops(&store, w);
                loop {
                    let id = writer_doc_id(w, n);
                    let rev = store.get(&id).map(|d| d.rev().clone());
                    store
                        .put(
                            &id,
                            jobject! {"n" => n as i64, "w" => w as i64},
                            op_labels(n),
                            rev.as_ref(),
                        )
                        .expect("group writer put");
                    writeln!(acks, "{n}").expect("ack");
                    n += 1;
                }
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }
}

/// **The group-commit kill-loop.** Same chained-directory discipline as
/// [`kill_loop_recovers_acknowledged_writes`], but with `WalSync::Always`
/// acks the invariant sharpens to *zero acked-write loss even against
/// power-loss semantics*: every thread's acked prefix must be recovered
/// bit-for-bit, at most one in-flight op per thread may additionally
/// survive, and the recovered store must be internally consistent
/// (sequence number = total ops) across rotation-boundary kills.
#[test]
fn kill_loop_group_commit_concurrent_writers() {
    if std::env::var("SAFEWEB_CRASH_DIR").is_ok() {
        return; // never recurse inside a writer child
    }
    let rounds: u64 = std::env::var("SAFEWEB_KILL_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let dir = temp_dir("kill-group");
    let mut seed = 0x5afe_3eb0_0000_0002u64
        ^ std::time::UNIX_EPOCH
            .elapsed()
            .map_or(0, |d| d.as_nanos() as u64);
    let mut prev_applied = vec![0u64; WRITERS as usize];
    let mut max_segments_seen = 0usize;

    for round in 0..rounds {
        let run_for = Duration::from_millis(jitter(&mut seed, 10, 120));
        let prev = prev_applied.clone();
        spawn_and_kill(
            &dir,
            "crash_group_writer_child",
            &[("SAFEWEB_CRASH_GROUP", "1")],
            run_for,
            // Every thread must have committed (and fsynced) at least one
            // new op, so each round exercises a populated commit group.
            &|| (0..WRITERS).all(|w| writer_acked_ops(&dir, w) > prev[w as usize]),
        );

        let store = DocStore::open(&dir).expect("recovery open");
        assert_eq!(
            store.persistence_error(),
            None,
            "round {round}: recovery surfaced a persistence failure"
        );
        max_segments_seen = max_segments_seen.max(store.wal_segments().unwrap_or(0));

        let mut total = 0u64;
        for w in 0..WRITERS {
            let acked = writer_acked_ops(&dir, w);
            let applied = writer_applied_ops(&store, w);
            assert!(
                applied >= acked,
                "round {round}: writer {w} lost acked (fsynced!) writes \
                 ({applied} < {acked})"
            );
            assert!(
                applied <= acked + 1,
                "round {round}: writer {w} has {applied} ops but only {acked} \
                 acked — acks ran ahead of the group-commit sync"
            );
            // Per-writer oracle: its namespace is a pure function of its
            // op count (slots only move forward).
            for slot in 0..SLOTS {
                let id = writer_doc_id(w, slot);
                match store.get(&id) {
                    Some(doc) if applied > slot => {
                        let last = slot + (applied - 1 - slot) / SLOTS * SLOTS;
                        assert_eq!(
                            doc.body().get("n").and_then(Value::as_i64),
                            Some(last as i64),
                            "round {round}: writer {w} slot {slot} body"
                        );
                    }
                    None if applied <= slot => {}
                    state => panic!(
                        "round {round}: writer {w} slot {slot} inconsistent \
                         (applied {applied}, present: {})",
                        state.is_some()
                    ),
                }
            }
            prev_applied[w as usize] = applied;
            total += applied;
        }
        // Puts are the only sequence-consuming ops, so the recovered
        // sequence number must equal the total op count: nothing lost or
        // duplicated across the interleaved group-committed appends.
        assert_eq!(store.seq(), total, "round {round}: sequence number");
        drop(store); // release before the next child opens the directory
    }
    assert!(
        prev_applied.iter().sum::<u64>() > 0,
        "group kill-loop never observed a write"
    );
    assert!(
        max_segments_seen >= 2,
        "no round ever crossed a segment rotation boundary \
         (max segments seen: {max_segments_seen})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance criterion's replication half, deterministic: a durable
/// DMZ replica restarts and an **incremental** (non-resync) run resumes
/// from its recovered checkpoint without re-transferring history.
#[test]
fn durable_replica_resumes_incrementally_after_restart() {
    if std::env::var("SAFEWEB_CRASH_DIR").is_ok() {
        return;
    }
    let dir = temp_dir("replica-resume");
    let src = DocStore::new("intranet");
    for i in 0..5 {
        src.put(&format!("r{i}"), jobject! {"i" => i}, LabelSet::new(), None)
            .unwrap();
    }
    {
        let dst = DocStore::open(&dir).unwrap();
        dst.set_read_only(true);
        let mut rep = Replicator::new(src.clone(), dst.clone());
        let report = rep.run_once();
        assert_eq!(report.docs_written, 5);
        dst.persist_replication_checkpoint(report.checkpoint)
            .unwrap();
    } // "crash": the replica process goes away

    let dst = DocStore::open(&dir).unwrap();
    assert_eq!(dst.len(), 5, "replicated documents survive the restart");
    let ckpt = dst.replication_checkpoint_persisted().unwrap();
    assert_eq!(ckpt, src.seq(), "checkpoint survives the restart");

    src.put("later", jobject! {}, LabelSet::new(), None)
        .unwrap();
    let mut rep = Replicator::with_checkpoint(src.clone(), dst.clone(), ckpt);
    let report = rep.run_once();
    assert!(!report.resynced, "resume must be incremental, not a resync");
    assert_eq!(report.docs_written, 1, "only the new document transfers");
    assert_eq!(dst.seq(), 6, "history was re-transferred");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same, through the periodic driver: `ReplicationHandle::start_durable`
/// reads the recovered checkpoint itself and persists after every run.
#[test]
fn start_durable_resumes_from_persisted_checkpoint() {
    if std::env::var("SAFEWEB_CRASH_DIR").is_ok() {
        return;
    }
    use safeweb_docstore::ReplicationHandle;
    let dir = temp_dir("start-durable");
    let src = DocStore::new("intranet");
    src.put("a", jobject! {}, LabelSet::new(), None).unwrap();

    let wait_until = |cond: &mut dyn FnMut() -> bool, what: &str| {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(std::time::Instant::now() < deadline, "timed out: {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    {
        let dst = DocStore::open(&dir).unwrap();
        let handle =
            ReplicationHandle::start_durable(src.clone(), dst.clone(), Duration::from_millis(5));
        wait_until(
            &mut || dst.replication_checkpoint_persisted() == Some(src.seq()),
            "first checkpoint persisted",
        );
        handle.stop();
    }

    let dst = DocStore::open(&dir).unwrap();
    let seq_before = dst.seq();
    src.put("b", jobject! {}, LabelSet::new(), None).unwrap();
    let handle =
        ReplicationHandle::start_durable(src.clone(), dst.clone(), Duration::from_millis(5));
    wait_until(&mut || dst.get("b").is_some(), "resumed replication runs");
    handle.stop();
    assert_eq!(
        dst.seq(),
        seq_before + 1,
        "resume re-transferred already-replicated history"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
