//! Property tests: replication converges — after any interleaving of
//! writes, updates, deletes and changes-feed compactions followed by
//! replication, the target's live documents equal the source's (compaction
//! may force the replicator through its full-resync path; the outcome must
//! be indistinguishable).

use proptest::prelude::*;
use safeweb_docstore::{DocStore, Replicator};
use safeweb_json::{jobject, Value};
use safeweb_labels::{Label, LabelSet};

#[derive(Debug, Clone)]
enum Op {
    Put(u8, i64),
    Update(u8, i64),
    Delete(u8),
    Replicate,
    Compact(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, any::<i64>()).prop_map(|(id, v)| Op::Put(id, v)),
        (0u8..6, any::<i64>()).prop_map(|(id, v)| Op::Update(id, v)),
        (0u8..6).prop_map(Op::Delete),
        Just(Op::Replicate),
        (0u8..6).prop_map(Op::Compact),
    ]
}

proptest! {
    #[test]
    fn replication_converges(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let src = DocStore::new("src");
        let dst = DocStore::new("dst");
        let mut rep = Replicator::new(src.clone(), dst.clone());

        for op in ops {
            match op {
                Op::Put(id, v) => {
                    let id = format!("doc-{id}");
                    let labels = LabelSet::singleton(Label::conf("e", &format!("k/{v}")));
                    // Put over an existing doc conflicts; route through
                    // update semantics in that case.
                    match src.get(&id) {
                        None => { src.put(&id, jobject!{"v" => v}, labels, None).unwrap(); }
                        Some(doc) => {
                            let rev = doc.rev().clone();
                            src.put(&id, jobject!{"v" => v}, labels, Some(&rev)).unwrap();
                        }
                    }
                }
                Op::Update(id, v) => {
                    let id = format!("doc-{id}");
                    if let Some(doc) = src.get(&id) {
                        let rev = doc.rev().clone();
                        src.put(&id, jobject!{"v" => v}, *doc.labels(), Some(&rev)).unwrap();
                    }
                }
                Op::Delete(id) => {
                    let id = format!("doc-{id}");
                    if let Some(doc) = src.get(&id) {
                        let rev = doc.rev().clone();
                        src.delete(&id, &rev).unwrap();
                    }
                }
                Op::Replicate => { rep.run_once(); }
                Op::Compact(retain) => { src.compact_changes(retain as usize); }
            }
        }
        // Final replication: stores must converge exactly.
        rep.run_once();
        prop_assert_eq!(src.ids(), dst.ids());
        for id in src.ids() {
            let s = src.get(&id).unwrap();
            let d = dst.get(&id).unwrap();
            prop_assert_eq!(s.rev(), d.rev());
            prop_assert_eq!(s.body().get("v").and_then(Value::as_i64),
                            d.body().get("v").and_then(Value::as_i64));
            prop_assert_eq!(s.labels(), d.labels());
        }
    }

    /// Replication run twice in a row is a no-op the second time.
    #[test]
    fn replication_idempotent(n in 0usize..10) {
        let src = DocStore::new("src");
        let dst = DocStore::new("dst");
        for i in 0..n {
            src.put(&format!("d{i}"), jobject!{"i" => i}, LabelSet::new(), None).unwrap();
        }
        let mut rep = Replicator::new(src.clone(), dst.clone());
        let first = rep.run_once();
        prop_assert_eq!(first.docs_written as usize, n);
        let second = rep.run_once();
        prop_assert_eq!(second.docs_written, 0);
        prop_assert_eq!(second.docs_deleted, 0);
    }
}
