//! WAL recovery property tests: for a random op sequence, a crash
//! injected after **every** record boundary (and inside records — torn
//! and corrupted writes) recovers exactly the prefix of operations whose
//! records survived intact, never more, never less.
//!
//! The checksum validation is mutation-checked: one test corrupts a
//! record so that its payload stays *parseable JSON* — only the CRC can
//! tell it was damaged — and asserts the record and everything after it
//! are rejected. Removing the checksum check makes that test fail.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use safeweb_docstore::DocStore;
use safeweb_json::jobject;
use safeweb_labels::{Label, LabelSet};

#[derive(Debug, Clone)]
enum Op {
    /// Put/update `doc-{0}` with payload `{1}`.
    Put(u8, i64),
    /// Delete `doc-{0}` if it exists (a no-op — and no WAL record —
    /// otherwise).
    Delete(u8),
    /// Persist replication checkpoint `{0}`.
    Checkpoint(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5, any::<i64>()).prop_map(|(id, v)| Op::Put(id, v)),
        (0u8..5).prop_map(Op::Delete),
        (0u16..1000).prop_map(Op::Checkpoint),
    ]
}

/// Applies one op through the public API; returns whether it appended a
/// WAL record (deletes of absent docs do not).
fn apply(store: &DocStore, op: &Op, ckpt: &mut u64) -> bool {
    match op {
        Op::Put(id, v) => {
            let id = format!("doc-{id}");
            let rev = store.get(&id).map(|d| d.rev().clone());
            let labels = LabelSet::singleton(Label::conf("e", &format!("p/{v}")));
            store
                .put(&id, jobject! {"v" => *v}, labels, rev.as_ref())
                .unwrap();
            true
        }
        Op::Delete(id) => {
            let id = format!("doc-{id}");
            match store.get(&id) {
                Some(doc) => {
                    store.delete(&id, doc.rev()).unwrap();
                    true
                }
                None => false,
            }
        }
        Op::Checkpoint(v) => {
            if store.is_durable() {
                store.persist_replication_checkpoint(*v as u64).unwrap();
            }
            *ckpt = *v as u64;
            true
        }
    }
}

/// The oracle for a prefix: an in-memory store fed `ops[..k]`, plus the
/// last checkpoint value in that prefix.
fn oracle(ops: &[Op]) -> (DocStore, u64) {
    let store = DocStore::new("oracle");
    let mut ckpt = 0;
    for op in ops {
        apply(&store, op, &mut ckpt);
    }
    (store, ckpt)
}

fn assert_equals_oracle(
    recovered: &DocStore,
    ops: &[Op],
    context: &str,
) -> Result<(), TestCaseError> {
    let (want, want_ckpt) = oracle(ops);
    prop_assert_eq!(recovered.ids(), want.ids(), "{}: id set", context);
    for id in want.ids() {
        let (got, want) = (recovered.get(&id).unwrap(), want.get(&id).unwrap());
        prop_assert_eq!(got.rev(), want.rev(), "{}: rev of {}", context, &id);
        prop_assert_eq!(got.body(), want.body(), "{}: body of {}", context, &id);
        prop_assert_eq!(
            got.labels(),
            want.labels(),
            "{}: labels of {}",
            context,
            &id
        );
    }
    prop_assert_eq!(recovered.seq(), want.seq(), "{}: seq", context);
    prop_assert_eq!(
        recovered.replication_checkpoint_persisted(),
        Some(want_ckpt),
        "{}: checkpoint",
        context
    );
    Ok(())
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "safeweb-walprops-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Runs `ops` against a fresh durable store (auto-snapshot off so every
/// record stays in the log) and returns the WAL bytes plus the byte
/// offset after each op's record — the crash points.
fn record_wal(ops: &[Op]) -> (Vec<u8>, Vec<(usize, u64)>) {
    let dir = temp_dir("writer");
    let _ = std::fs::remove_dir_all(&dir);
    let store = DocStore::open(&dir).unwrap();
    store.set_snapshot_every(0);
    let mut ckpt = 0;
    // (ops applied, wal length) at each record boundary.
    let mut boundaries = vec![(0, 0u64)];
    for (i, op) in ops.iter().enumerate() {
        if apply(&store, op, &mut ckpt) {
            boundaries.push((i + 1, store.wal_len().unwrap()));
        }
    }
    let bytes = std::fs::read(dir.join("wal.log")).unwrap();
    assert_eq!(bytes.len() as u64, boundaries.last().unwrap().1);
    let _ = std::fs::remove_dir_all(&dir);
    (bytes, boundaries)
}

/// Writes `bytes` as the WAL of a fresh directory and opens it.
fn reopen_from(dir: &Path, bytes: &[u8]) -> DocStore {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("wal.log"), bytes).unwrap();
    DocStore::open(dir).unwrap()
}

proptest! {
    /// Crash **after every record**: truncating the log at each record
    /// boundary and recovering yields exactly the oracle state of the
    /// op prefix that produced those records.
    #[test]
    fn recovery_at_every_record_boundary_equals_prefix_oracle(
        ops in proptest::collection::vec(arb_op(), 1..16),
    ) {
        let (bytes, boundaries) = record_wal(&ops);
        let dir = temp_dir("boundary");
        for &(k, cut) in &boundaries {
            let store = reopen_from(&dir, &bytes[..cut as usize]);
            assert_equals_oracle(&store, &ops[..k], &format!("cut after op {k}"))?;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Crash **inside a record** (torn write): any mid-frame truncation
    /// recovers the ops before the torn record and discards the tail —
    /// and the reopened store accepts new writes on the clean boundary.
    #[test]
    fn torn_record_recovers_preceding_prefix(
        ops in proptest::collection::vec(arb_op(), 1..12),
        tear in 0u32..10_000,
    ) {
        let (bytes, boundaries) = record_wal(&ops);
        let last = *boundaries.last().unwrap();
        prop_assume!(last.1 > 0);
        // Pick a byte offset strictly inside some record's frame.
        let cut = 1 + (last.1 - 1) * tear as u64 / 10_000;
        let (k, _) = *boundaries.iter().take_while(|(_, b)| *b < cut).last().unwrap();
        prop_assume!(boundaries.iter().all(|(_, b)| *b != cut));

        let dir = temp_dir("torn");
        let store = reopen_from(&dir, &bytes[..cut as usize]);
        assert_equals_oracle(&store, &ops[..k], &format!("torn at byte {cut}"))?;
        // The torn tail is truncated; appends resume cleanly.
        store.put("fresh", jobject! {}, LabelSet::new(), None).unwrap();
        drop(store);
        let store = DocStore::open(&dir).unwrap();
        prop_assert!(store.get("fresh").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flip one byte anywhere in the log: recovery stops at the damaged
    /// record — never applies it, never resynchronises past it.
    #[test]
    fn corrupted_byte_stops_replay_at_damaged_record(
        ops in proptest::collection::vec(arb_op(), 1..12),
        pos in 0u32..10_000,
        bit in 0u8..8,
    ) {
        let (mut bytes, boundaries) = record_wal(&ops);
        prop_assume!(!bytes.is_empty());
        let at = (bytes.len() - 1) * pos as usize / 10_000;
        bytes[at] ^= 1 << bit;
        // The record whose frame contains the flipped byte.
        let (k, _) = *boundaries.iter().take_while(|(_, b)| *b <= at as u64).last().unwrap();

        let dir = temp_dir("corrupt");
        let store = reopen_from(&dir, &bytes);
        assert_equals_oracle(&store, &ops[..k], &format!("flip at byte {at}"))?;
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// **Mutation check for the checksum.** The corruption keeps the payload
/// valid JSON — same length, same structure, one digit changed — so
/// nothing but the CRC comparison can notice. If `Wal::open` stopped
/// validating checksums, the store would happily recover the altered
/// document and the two intact records after it, and this test fails.
#[test]
fn checksum_rejects_semantically_valid_corruption() {
    let dir = temp_dir("mutation");
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = DocStore::open(&dir).unwrap();
        store
            .put("a", jobject! {"v" => 11111111}, LabelSet::new(), None)
            .unwrap();
        store.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        store.put("c", jobject! {}, LabelSet::new(), None).unwrap();
    }
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let needle = b"11111111";
    let at = bytes
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("payload digits in the first record");
    bytes[at] = b'2'; // still perfectly valid JSON: 21111111
    std::fs::write(&wal, &bytes).unwrap();

    let store = DocStore::open(&dir).unwrap();
    assert!(
        store.is_empty() && store.seq() == 0,
        "checksum validation let a corrupted-but-parseable record through \
         (recovered ids {:?})",
        store.ids()
    );
    // And the log was truncated back to the last good frame, so the
    // store keeps working.
    assert_eq!(store.wal_len(), Some(0));
    store
        .put("fresh", jobject! {}, LabelSet::new(), None)
        .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
