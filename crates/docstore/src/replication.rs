//! CouchDB-style push replication (Figure 4: "The application database is
//! replicated periodically between the two instances using CouchDB push
//! replication").
//!
//! Replication is strictly one-way (source → target), preserving the
//! unidirectional data-flow requirement S1: the Intranet instance pushes
//! into the DMZ replica; nothing ever flows back.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::store::DocStore;

/// A one-way replicator with a persistent checkpoint, so repeated runs
/// only transfer new changes.
#[derive(Debug)]
pub struct Replicator {
    source: DocStore,
    target: DocStore,
    checkpoint: u64,
}

/// Summary of one replication run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicationReport {
    /// Documents written to the target.
    pub docs_written: u64,
    /// Deletions applied to the target.
    pub docs_deleted: u64,
    /// The checkpoint after the run.
    pub checkpoint: u64,
}

impl Replicator {
    /// Creates a replicator from `source` into `target`, starting from
    /// sequence 0.
    pub fn new(source: DocStore, target: DocStore) -> Replicator {
        Replicator {
            source,
            target,
            checkpoint: 0,
        }
    }

    /// The current checkpoint sequence.
    pub fn checkpoint(&self) -> u64 {
        self.checkpoint
    }

    /// Pushes all changes since the checkpoint. Interrupted runs are safe
    /// to retry: replication is idempotent (last write per id wins, and the
    /// checkpoint only advances after the batch applies).
    pub fn run_once(&mut self) -> ReplicationReport {
        let changes = self.source.changes_since(self.checkpoint);
        let mut report = ReplicationReport {
            checkpoint: self.checkpoint,
            ..ReplicationReport::default()
        };
        let mut max_seq = self.checkpoint;
        for change in changes {
            max_seq = max_seq.max(change.seq);
            match change.rev {
                Some(_) => {
                    // Fetch the *current* version; intermediate revisions
                    // may already be superseded.
                    if let Some(doc) = self.source.get(&change.id) {
                        self.target.apply_replicated(doc);
                        report.docs_written += 1;
                    }
                }
                None => {
                    self.target.apply_replicated_delete(&change.id);
                    report.docs_deleted += 1;
                }
            }
        }
        self.checkpoint = max_seq;
        report.checkpoint = max_seq;
        report
    }
}

/// Periodic replication driver ("replicated periodically", §5.1).
/// Dropping the handle stops the loop.
#[derive(Debug)]
pub struct ReplicationHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ReplicationHandle {
    /// Starts a background thread replicating `source` → `target` every
    /// `interval`.
    pub fn start(source: DocStore, target: DocStore, interval: Duration) -> ReplicationHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("safeweb-replication".to_string())
            .spawn(move || {
                let mut replicator = Replicator::new(source, target);
                while !stop2.load(Ordering::SeqCst) {
                    replicator.run_once();
                    // Sleep in short slices so stop is responsive.
                    let mut remaining = interval;
                    while !stop2.load(Ordering::SeqCst) && remaining > Duration::ZERO {
                        let slice = remaining.min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn replication thread");
        ReplicationHandle {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicationHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_json::{jobject, Value};
    use safeweb_labels::{Label, LabelSet};

    fn labelled(p: &str) -> LabelSet {
        LabelSet::singleton(Label::conf("e", p))
    }

    #[test]
    fn push_replication_copies_documents_and_labels() {
        let src = DocStore::new("intranet");
        let dst = DocStore::new("dmz");
        dst.set_read_only(true);

        src.put("r1", jobject! {"x" => 1}, labelled("mdt/a"), None)
            .unwrap();
        src.put("r2", jobject! {"x" => 2}, labelled("mdt/b"), None)
            .unwrap();

        let mut rep = Replicator::new(src.clone(), dst.clone());
        let report = rep.run_once();
        assert_eq!(report.docs_written, 2);
        assert_eq!(dst.len(), 2);
        let doc = dst.get("r1").unwrap();
        assert!(doc.labels().contains(&Label::conf("e", "mdt/a")));
        // Replication preserved the revision.
        assert_eq!(doc.rev(), src.get("r1").unwrap().rev());
    }

    #[test]
    fn checkpoint_makes_replication_incremental() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        src.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        assert_eq!(rep.run_once().docs_written, 1);
        assert_eq!(rep.run_once().docs_written, 0);
        src.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        assert_eq!(rep.run_once().docs_written, 1);
    }

    #[test]
    fn deletions_replicate() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        let rev = src.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        rep.run_once();
        assert_eq!(dst.len(), 1);
        src.delete("a", &rev).unwrap();
        let report = rep.run_once();
        assert_eq!(report.docs_deleted, 1);
        assert!(dst.get("a").is_none());
    }

    #[test]
    fn updates_converge_to_latest() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        let r1 = src
            .put("a", jobject! {"v" => 1}, LabelSet::new(), None)
            .unwrap();
        src.put("a", jobject! {"v" => 2}, LabelSet::new(), Some(&r1))
            .unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        rep.run_once();
        assert_eq!(
            dst.get("a")
                .unwrap()
                .body()
                .get("v")
                .and_then(Value::as_i64),
            Some(2)
        );
    }

    #[test]
    fn periodic_replication_runs_until_stopped() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        let handle = ReplicationHandle::start(src.clone(), dst.clone(), Duration::from_millis(10));
        src.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while dst.is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "replication never ran"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
        // After stop, no further replication happens.
        src.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(dst.get("b").is_none());
    }

    #[test]
    fn replication_is_one_way() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        // Write directly into the target; replication must never move it
        // back into the source.
        dst.put("only-dst", jobject! {}, LabelSet::new(), None)
            .unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        rep.run_once();
        assert!(src.get("only-dst").is_none());
    }
}
