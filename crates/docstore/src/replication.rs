//! CouchDB-style push replication (Figure 4: "The application database is
//! replicated periodically between the two instances using CouchDB push
//! replication").
//!
//! Replication is strictly one-way (source → target), preserving the
//! unidirectional data-flow requirement S1: the Intranet instance pushes
//! into the DMZ replica; nothing ever flows back.
//!
//! Each run is one of two modes:
//!
//! * **Incremental** — the common case: fetch the changes feed past the
//!   checkpoint, deduplicate it per document id (only the newest change
//!   per id matters; superseded revisions were already overwritten at the
//!   source), and apply one write or deletion per distinct id.
//! * **Full resync** — the fallback when the checkpoint predates the
//!   source's [compaction horizon](DocStore::compacted_seq): the feed
//!   below the horizon has dropped tombstones, so an incremental pass
//!   could silently *miss deletions*. Instead the source is snapshotted,
//!   every differing document is copied, and target documents absent from
//!   the source are swept away.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::store::DocStore;

/// A one-way replicator with a persistent checkpoint, so repeated runs
/// only transfer new changes.
#[derive(Debug)]
pub struct Replicator {
    source: DocStore,
    target: DocStore,
    checkpoint: u64,
}

/// Summary of one replication run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicationReport {
    /// Distinct documents written to the target.
    pub docs_written: u64,
    /// Distinct deletions applied to the target.
    pub docs_deleted: u64,
    /// The checkpoint after the run.
    pub checkpoint: u64,
    /// Whether this run fell back to a full resync because the checkpoint
    /// predated the source's compaction horizon.
    pub resynced: bool,
}

impl Replicator {
    /// Creates a replicator from `source` into `target`, starting from
    /// sequence 0.
    pub fn new(source: DocStore, target: DocStore) -> Replicator {
        Replicator::with_checkpoint(source, target, 0)
    }

    /// Creates a replicator resuming from a previously saved `checkpoint`
    /// (e.g. [`Replicator::checkpoint`] persisted across a restart), so a
    /// restarted replicator does not re-transfer the whole history.
    pub fn with_checkpoint(source: DocStore, target: DocStore, checkpoint: u64) -> Replicator {
        Replicator {
            source,
            target,
            checkpoint,
        }
    }

    /// The current checkpoint sequence.
    pub fn checkpoint(&self) -> u64 {
        self.checkpoint
    }

    /// Pushes all changes since the checkpoint. Interrupted runs are safe
    /// to retry: replication is idempotent (last write per id wins, and the
    /// checkpoint only advances after the batch applies).
    ///
    /// The batch is deduplicated per document id before any write: the
    /// newest change wins, so a document updated many times since the last
    /// run is fetched and written exactly once, and
    /// [`ReplicationReport::docs_written`] counts distinct documents —
    /// not feed entries. Writes whose revision already matches the target
    /// are skipped, keeping the target's sequence number from inflating.
    pub fn run_once(&mut self) -> ReplicationReport {
        if self.checkpoint > self.source.seq() {
            // The checkpoint claims history the source does not have: the
            // source store was lost and recreated (or the checkpoint
            // belongs to another source). Incremental replication would
            // sit forever on an empty feed while the stores silently
            // diverge — resync and adopt the source's real sequence.
            return self.full_resync();
        }
        if self.checkpoint < self.source.compacted_seq() {
            // Entries at or below the horizon were compacted; deletions
            // there are gone from the feed. Incremental replication would
            // silently leave ghosts on the target — resync instead.
            return self.full_resync();
        }
        let changes = self.source.changes_since(self.checkpoint);
        // Re-check after the fetch: a compaction can race in between and
        // drop tombstones out of the range just read. `compacted_seq` is
        // monotonic, so passing this second check proves the feed was
        // still intact when it was copied (later compactions cannot
        // corrupt the copy).
        if self.checkpoint < self.source.compacted_seq() {
            return self.full_resync();
        }
        let mut report = ReplicationReport {
            checkpoint: self.checkpoint,
            ..ReplicationReport::default()
        };
        let mut max_seq = self.checkpoint;
        // Dedupe the batch: only each id's newest change is applied.
        let mut latest: BTreeMap<&str, &crate::store::Change> = BTreeMap::new();
        for change in &changes {
            max_seq = max_seq.max(change.seq);
            latest.insert(change.id.as_str(), change);
        }
        for (id, change) in latest {
            match change.rev {
                Some(_) => {
                    // Fetch the *current* version; the changed revision may
                    // already be superseded (or deleted — then a later
                    // tombstone past `max_seq` covers it next run).
                    if let Some(doc) = self.source.get(id) {
                        if self.target.get(id).is_none_or(|d| d.rev() != doc.rev()) {
                            self.target.apply_replicated(doc);
                            report.docs_written += 1;
                        }
                    }
                }
                None => {
                    if self.target.apply_replicated_delete(id) {
                        report.docs_deleted += 1;
                    }
                }
            }
        }
        self.checkpoint = max_seq;
        report.checkpoint = max_seq;
        report
    }

    /// Full resync: snapshot the source, copy every document whose
    /// revision differs, and sweep target documents the source no longer
    /// holds (the "tombstone sweep" — deletions compacted out of the feed
    /// are reconstructed by absence).
    fn full_resync(&mut self) -> ReplicationReport {
        let (seq, docs) = self.source.snapshot();
        let mut report = ReplicationReport {
            checkpoint: seq,
            resynced: true,
            ..ReplicationReport::default()
        };
        let mut live = std::collections::BTreeSet::new();
        for doc in docs {
            live.insert(doc.id().to_string());
            if self
                .target
                .get(doc.id())
                .is_none_or(|d| d.rev() != doc.rev())
            {
                self.target.apply_replicated(doc);
                report.docs_written += 1;
            }
        }
        for id in self.target.ids() {
            if !live.contains(&id) && self.target.apply_replicated_delete(&id) {
                report.docs_deleted += 1;
            }
        }
        self.checkpoint = seq;
        report
    }
}

/// Periodic replication driver ("replicated periodically", §5.1).
/// Dropping the handle stops the loop.
#[derive(Debug)]
pub struct ReplicationHandle {
    stop: Arc<AtomicBool>,
    checkpoint: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl ReplicationHandle {
    /// Starts a background thread replicating `source` → `target` every
    /// `interval`, from sequence 0 (a fresh target).
    pub fn start(source: DocStore, target: DocStore, interval: Duration) -> ReplicationHandle {
        ReplicationHandle::start_from(source, target, interval, 0)
    }

    /// Starts periodic replication into a **durable** target
    /// ([`DocStore::open`]), resuming from the checkpoint the target
    /// recovered from its write-ahead log
    /// ([`DocStore::replication_checkpoint_persisted`]). After a restart
    /// this picks up exactly where the last completed run left off — no
    /// re-transfer, no manual checkpoint plumbing. Falls back to sequence
    /// 0 (a full first pass) when the target is in-memory.
    pub fn start_durable(
        source: DocStore,
        target: DocStore,
        interval: Duration,
    ) -> ReplicationHandle {
        let checkpoint = target.replication_checkpoint_persisted().unwrap_or(0);
        ReplicationHandle::start_from(source, target, interval, checkpoint)
    }

    /// Starts periodic replication resuming from `checkpoint` — the value
    /// a previous handle reported via [`ReplicationHandle::checkpoint`].
    /// Resuming skips the already-transferred history instead of pushing
    /// everything from sequence 0 again; a checkpoint that has fallen
    /// behind the source's compaction horizon degrades safely into a full
    /// resync on the first run.
    ///
    /// When the target is durable, every completed run's checkpoint is
    /// additionally persisted through the target's write-ahead log
    /// (after the run's writes, so a recovered checkpoint never claims
    /// more than what was applied); restarts can then resume via
    /// [`ReplicationHandle::start_durable`].
    pub fn start_from(
        source: DocStore,
        target: DocStore,
        interval: Duration,
        checkpoint: u64,
    ) -> ReplicationHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let shared_checkpoint = Arc::new(AtomicU64::new(checkpoint));
        let shared_checkpoint2 = Arc::clone(&shared_checkpoint);
        let thread = std::thread::Builder::new()
            .name("safeweb-replication".to_string())
            .spawn(move || {
                let persist_to = target.is_durable().then(|| target.clone());
                let mut replicator = Replicator::with_checkpoint(source, target, checkpoint);
                let mut persisted = None;
                while !stop2.load(Ordering::SeqCst) {
                    let report = replicator.run_once();
                    shared_checkpoint2.store(report.checkpoint, Ordering::SeqCst);
                    if let Some(t) = &persist_to {
                        if persisted != Some(report.checkpoint) {
                            // A failed append leaves the old (smaller)
                            // checkpoint in force: safe, re-replicates.
                            if t.persist_replication_checkpoint(report.checkpoint).is_ok() {
                                persisted = Some(report.checkpoint);
                            }
                        }
                    }
                    // Sleep in short slices so stop is responsive.
                    let mut remaining = interval;
                    while !stop2.load(Ordering::SeqCst) && remaining > Duration::ZERO {
                        let slice = remaining.min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn replication thread");
        ReplicationHandle {
            stop,
            checkpoint: shared_checkpoint,
            thread: Some(thread),
        }
    }

    /// The checkpoint after the most recent completed run. Persist this
    /// and hand it to [`ReplicationHandle::start_from`] to resume after a
    /// restart.
    pub fn checkpoint(&self) -> u64 {
        self.checkpoint.load(Ordering::SeqCst)
    }

    /// A shared handle onto the live checkpoint cell. Lets callers wire
    /// derived gauges (e.g. replication lag = source seq − checkpoint)
    /// without keeping a borrow of the handle alive.
    pub fn checkpoint_cell(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.checkpoint)
    }

    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicationHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_json::{jobject, Value};
    use safeweb_labels::{Label, LabelSet};

    fn labelled(p: &str) -> LabelSet {
        LabelSet::singleton(Label::conf("e", p))
    }

    #[test]
    fn push_replication_copies_documents_and_labels() {
        let src = DocStore::new("intranet");
        let dst = DocStore::new("dmz");
        dst.set_read_only(true);

        src.put("r1", jobject! {"x" => 1}, labelled("mdt/a"), None)
            .unwrap();
        src.put("r2", jobject! {"x" => 2}, labelled("mdt/b"), None)
            .unwrap();

        let mut rep = Replicator::new(src.clone(), dst.clone());
        let report = rep.run_once();
        assert_eq!(report.docs_written, 2);
        assert!(!report.resynced);
        assert_eq!(dst.len(), 2);
        let doc = dst.get("r1").unwrap();
        assert!(doc.labels().contains(&Label::conf("e", "mdt/a")));
        // Replication preserved the revision.
        assert_eq!(doc.rev(), src.get("r1").unwrap().rev());
    }

    #[test]
    fn checkpoint_makes_replication_incremental() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        src.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        assert_eq!(rep.run_once().docs_written, 1);
        assert_eq!(rep.run_once().docs_written, 0);
        src.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        assert_eq!(rep.run_once().docs_written, 1);
    }

    #[test]
    fn deletions_replicate() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        let rev = src.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        rep.run_once();
        assert_eq!(dst.len(), 1);
        src.delete("a", &rev).unwrap();
        let report = rep.run_once();
        assert_eq!(report.docs_deleted, 1);
        assert!(dst.get("a").is_none());
    }

    #[test]
    fn updates_converge_to_latest() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        let r1 = src
            .put("a", jobject! {"v" => 1}, LabelSet::new(), None)
            .unwrap();
        src.put("a", jobject! {"v" => 2}, LabelSet::new(), Some(&r1))
            .unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        rep.run_once();
        assert_eq!(
            dst.get("a")
                .unwrap()
                .body()
                .get("v")
                .and_then(Value::as_i64),
            Some(2)
        );
    }

    #[test]
    fn superseded_revisions_are_written_once_not_per_change() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        let mut rev = src
            .put("a", jobject! {"v" => 0}, LabelSet::new(), None)
            .unwrap();
        for v in 1..10 {
            rev = src
                .put("a", jobject! {"v" => v}, LabelSet::new(), Some(&rev))
                .unwrap();
        }
        src.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        let report = rep.run_once();
        // Ten feed entries for "a", but one fetch and one write: the
        // report counts distinct documents...
        assert_eq!(report.docs_written, 2);
        // ...and the target's own sequence number advanced once per
        // document, not once per superseded revision.
        assert_eq!(dst.seq(), 2);
        assert_eq!(
            dst.get("a")
                .unwrap()
                .body()
                .get("v")
                .and_then(Value::as_i64),
            Some(9)
        );
    }

    #[test]
    fn put_then_delete_in_one_batch_applies_only_the_delete() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        let rev = src.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        src.delete("a", &rev).unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        let report = rep.run_once();
        // The batch dedupes to the tombstone; the target never held "a",
        // so nothing is written and nothing is deleted.
        assert_eq!(report.docs_written, 0);
        assert_eq!(report.docs_deleted, 0);
        assert!(dst.get("a").is_none());
        assert_eq!(dst.seq(), 0);
    }

    #[test]
    fn replicator_resumes_from_saved_checkpoint() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        for i in 0..5 {
            src.put(&format!("d{i}"), jobject! {}, LabelSet::new(), None)
                .unwrap();
        }
        let mut rep = Replicator::new(src.clone(), dst.clone());
        let saved = rep.run_once().checkpoint;
        drop(rep);
        src.put("later", jobject! {}, LabelSet::new(), None)
            .unwrap();
        // A restarted replicator with the saved checkpoint transfers only
        // the new document.
        let mut resumed = Replicator::with_checkpoint(src.clone(), dst.clone(), saved);
        assert_eq!(resumed.checkpoint(), saved);
        let report = resumed.run_once();
        assert_eq!(report.docs_written, 1);
        assert!(!report.resynced);
        assert_eq!(src.ids(), dst.ids());
    }

    #[test]
    fn stale_checkpoint_triggers_full_resync_with_tombstone_sweep() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        let rev_a = src.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        src.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        let saved = rep.run_once().checkpoint;
        drop(rep);

        // The source deletes "a" and compacts the tombstone away.
        src.delete("a", &rev_a).unwrap();
        src.put("c", jobject! {}, LabelSet::new(), None).unwrap();
        src.compact_changes(0);
        assert!(saved < src.compacted_seq());

        let mut resumed = Replicator::with_checkpoint(src.clone(), dst.clone(), saved);
        let report = resumed.run_once();
        assert!(report.resynced, "stale checkpoint must force a resync");
        assert_eq!(report.docs_deleted, 1, "the swept ghost of \"a\"");
        assert_eq!(report.docs_written, 1, "the new document \"c\"");
        assert_eq!(src.ids(), dst.ids());
        assert!(dst.get("a").is_none(), "compacted delete must still apply");
    }

    /// A checkpoint *ahead of* the source's sequence means the source
    /// store was lost and recreated: an incremental pass would sit on an
    /// empty feed forever while the stores diverge. It must resync.
    #[test]
    fn checkpoint_ahead_of_source_forces_resync() {
        let src = DocStore::new("recreated");
        let dst = DocStore::new("d");
        // The target still holds state from the source's previous life.
        dst.put("stale", jobject! {}, LabelSet::new(), None)
            .unwrap();
        src.put("fresh", jobject! {}, LabelSet::new(), None)
            .unwrap();

        // Checkpoint 100 from the old source; the new one is at seq 1.
        let mut rep = Replicator::with_checkpoint(src.clone(), dst.clone(), 100);
        let report = rep.run_once();
        assert!(report.resynced, "stale-source checkpoint must resync");
        assert_eq!(report.docs_written, 1);
        assert_eq!(report.docs_deleted, 1, "the old life's ghost is swept");
        assert_eq!(src.ids(), dst.ids());
        assert_eq!(
            rep.checkpoint(),
            src.seq(),
            "checkpoint adopts the real seq"
        );
        // Subsequent runs are incremental again.
        assert!(!rep.run_once().resynced);
    }

    /// A replicated write the durable target cannot log (oversized for
    /// the WAL) is applied in memory but must wedge checkpoint
    /// persistence: were the checkpoint to advance past it, the document
    /// would silently vanish on the next restart and incremental
    /// replication would never re-send it.
    #[test]
    fn unloggable_replicated_write_blocks_checkpoint_persistence() {
        let dir = std::env::temp_dir().join(format!("safeweb-rep-oversize-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let src = DocStore::new("s");
        let dst = DocStore::open(&dir).unwrap();
        let huge = "x".repeat(64 * 1024 * 1024 + 16);
        src.put(
            "big",
            jobject! {"v" => huge.as_str()},
            LabelSet::new(),
            None,
        )
        .unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        let report = rep.run_once();
        // The replica stays correct at runtime...
        assert_eq!(report.docs_written, 1);
        assert!(dst.get("big").is_some());
        // ...but the unlogged apply is sticky: the checkpoint cannot be
        // persisted past it, so a restart re-replicates instead of
        // silently losing the document.
        assert!(dst.persistence_error().is_some());
        assert!(dst
            .persist_replication_checkpoint(report.checkpoint)
            .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn periodic_replication_runs_until_stopped() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        let handle = ReplicationHandle::start(src.clone(), dst.clone(), Duration::from_millis(10));
        src.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while dst.is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "replication never ran"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
        // After stop, no further replication happens.
        src.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(dst.get("b").is_none());
    }

    #[test]
    fn periodic_replication_resumes_from_checkpoint() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        src.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let handle = ReplicationHandle::start(src.clone(), dst.clone(), Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.checkpoint() == 0 {
            assert!(std::time::Instant::now() < deadline, "no checkpoint");
            std::thread::sleep(Duration::from_millis(5));
        }
        let saved = handle.checkpoint();
        handle.stop();

        // "Restart": resume from the persisted checkpoint; the target's
        // sequence number shows the old history was not re-pushed.
        let seq_before = dst.seq();
        src.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        let resumed = ReplicationHandle::start_from(
            src.clone(),
            dst.clone(),
            Duration::from_millis(5),
            saved,
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while dst.get("b").is_none() {
            assert!(std::time::Instant::now() < deadline, "resume never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
        resumed.stop();
        assert_eq!(dst.seq(), seq_before + 1, "history was re-transferred");
    }

    /// Stress the compaction/replication race: a writer churns documents
    /// (puts and deletes) with an aggressive retention while a replicator
    /// runs concurrently. If `run_once` trusted a feed that a concurrent
    /// compaction had already punched tombstones out of, deleted documents
    /// would survive as ghosts on the target.
    #[test]
    fn concurrent_compaction_and_replication_converge() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        src.set_changes_retention(4);
        let writer_src = src.clone();
        let writer = std::thread::spawn(move || {
            for round in 0..200u32 {
                for id in 0..6u32 {
                    let id = format!("doc-{id}");
                    let rev = writer_src.get(&id).map(|d| d.rev().clone());
                    writer_src
                        .put(
                            &id,
                            jobject! {"round" => round},
                            LabelSet::new(),
                            rev.as_ref(),
                        )
                        .unwrap();
                }
                // Delete a rotating victim so tombstones keep entering
                // (and being compacted out of) the feed.
                let victim = format!("doc-{}", round % 6);
                if let Some(doc) = writer_src.get(&victim) {
                    writer_src.delete(&victim, doc.rev()).unwrap();
                }
            }
        });
        let mut rep = Replicator::new(src.clone(), dst.clone());
        while !writer.is_finished() {
            rep.run_once();
        }
        writer.join().unwrap();
        rep.run_once();
        assert_eq!(src.ids(), dst.ids(), "ghost documents on the target");
        for id in src.ids() {
            assert_eq!(src.get(&id).unwrap().rev(), dst.get(&id).unwrap().rev());
        }
    }

    #[test]
    fn replication_is_one_way() {
        let src = DocStore::new("s");
        let dst = DocStore::new("d");
        // Write directly into the target; replication must never move it
        // back into the source.
        dst.put("only-dst", jobject! {}, LabelSet::new(), None)
            .unwrap();
        let mut rep = Replicator::new(src.clone(), dst.clone());
        rep.run_once();
        assert!(src.get("only-dst").is_none());
    }
}
