//! Snapshot files: the compaction partner of the [WAL](crate::wal).
//!
//! A snapshot captures the whole store — sequence number, replication
//! checkpoint, every live document — in the same length-prefixed,
//! checksummed framing as the WAL: one meta frame
//! `{"snapshot":1,"seq":…,"rep":…,"docs":…}` followed by one frame per
//! document. Only *state* is serialised: views, prefix ranges and the
//! compacted changes feed are rebuilt from the documents on open.
//!
//! Writes are crash-atomic: the bytes go to `snapshot.tmp`, are fsynced,
//! and the file is renamed over `snapshot.dat` (with a directory fsync)
//! before the WAL is truncated. A crash at any point leaves either the
//! old snapshot + full WAL or the new snapshot + (possibly still
//! untruncated) WAL; replay skips WAL records at or below the snapshot's
//! sequence, so both recover to the same state.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use safeweb_json::Value;

use crate::document::Document;
use crate::wal::{decode_frame, doc_from_value, doc_to_value, encode_frame, WalError};

/// File names inside a durable store's directory (the WAL's own segment
/// names live in [`crate::wal`]).
pub(crate) const SNAPSHOT_FILE: &str = "snapshot.dat";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// A decoded snapshot.
#[derive(Debug)]
pub(crate) struct Snapshot {
    /// The store sequence number at capture time.
    pub seq: u64,
    /// The replication checkpoint at capture time.
    pub rep_checkpoint: u64,
    /// Every live document.
    pub docs: Vec<Document>,
}

/// Writes a crash-atomic snapshot of `docs` into `dir`.
pub(crate) fn write(
    dir: &Path,
    seq: u64,
    rep_checkpoint: u64,
    docs: &BTreeMap<String, Document>,
) -> std::io::Result<()> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let mut file = File::create(&tmp)?;
    let mut meta = Value::object();
    meta.set("snapshot", 1);
    meta.set("seq", seq as i64);
    meta.set("rep", rep_checkpoint as i64);
    meta.set("docs", docs.len() as i64);
    let mut out = encode_frame(&meta.to_json());
    for doc in docs.values() {
        out.extend_from_slice(&encode_frame(&doc_to_value(doc).to_json()));
    }
    file.write_all(&out)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    // Make the rename itself durable.
    if let Ok(d) = OpenOptions::new().read(true).open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads the snapshot in `dir`, or `None` if none has been written yet.
///
/// # Errors
///
/// Unlike the WAL's torn tail, any validation failure here is
/// [`WalError::Corrupt`]: the atomic rename means a snapshot on disk must
/// be complete, so damage implies lost documents and is surfaced rather
/// than silently recovered around.
pub(crate) fn read(dir: &Path) -> Result<Option<Snapshot>, WalError> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut buf = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f.read_to_end(&mut buf)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |offset: usize, reason: String| WalError::Corrupt {
        path: path.clone(),
        offset: offset as u64,
        reason,
    };
    let mut offset = 0usize;
    let next = |offset: &mut usize| -> Result<Value, WalError> {
        match decode_frame(&buf, *offset) {
            Ok(Some((payload, end))) => {
                let v = Value::parse(payload)
                    .map_err(|e| corrupt(*offset, format!("bad JSON: {e}")))?;
                *offset = end;
                Ok(v)
            }
            Ok(None) => Err(corrupt(*offset, "unexpected end of snapshot".to_string())),
            Err(reason) => Err(corrupt(*offset, reason)),
        }
    };

    let meta = next(&mut offset)?;
    let field = |name: &str| -> Result<u64, WalError> {
        meta.get(name)
            .and_then(Value::as_i64)
            .map(|v| v as u64)
            .ok_or_else(|| corrupt(0, format!("meta frame missing {name:?}")))
    };
    let (seq, rep_checkpoint, count) = (field("seq")?, field("rep")?, field("docs")?);
    let mut docs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let at = offset;
        let v = next(&mut offset)?;
        docs.push(doc_from_value(&v).ok_or_else(|| corrupt(at, "malformed document".to_string()))?);
    }
    Ok(Some(Snapshot {
        seq,
        rep_checkpoint,
        docs,
    }))
}
