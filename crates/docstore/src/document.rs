//! Documents: JSON bodies with id, MVCC revision and security labels.

use safeweb_json::Value;
use safeweb_labels::LabelSet;

/// A revision identifier: `generation-hash`, CouchDB style. The generation
/// counts writes; the hash is a deterministic digest of the body so that
/// identical content produces identical revisions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Revision {
    generation: u64,
    digest: u64,
}

impl Revision {
    pub(crate) fn first(body: &Value) -> Revision {
        Revision {
            generation: 1,
            digest: fnv1a(body.to_json().as_bytes()),
        }
    }

    pub(crate) fn next(&self, body: &Value) -> Revision {
        Revision {
            generation: self.generation + 1,
            digest: fnv1a(body.to_json().as_bytes()),
        }
    }

    /// The write generation (1 for a fresh document).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Parses the `generation-hash` form.
    pub fn parse(s: &str) -> Option<Revision> {
        let (g, d) = s.split_once('-')?;
        Some(Revision {
            generation: g.parse().ok()?,
            digest: u64::from_str_radix(d, 16).ok()?,
        })
    }
}

impl std::fmt::Display for Revision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{:016x}", self.generation, self.digest)
    }
}

/// FNV-1a: a small, deterministic digest. Revisions need *collision
/// resistance against accidents*, not cryptographic strength (the paper's
/// CouchDB uses MD5 for the same purpose).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A stored document: body plus middleware metadata (labels live *next to*
/// the body, not inside it, so application code cannot silently strip
/// them).
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    id: String,
    rev: Revision,
    labels: LabelSet,
    body: Value,
}

impl Document {
    pub(crate) fn new(id: String, rev: Revision, labels: LabelSet, body: Value) -> Document {
        Document {
            id,
            rev,
            labels,
            body,
        }
    }

    /// The document id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The current revision.
    pub fn rev(&self) -> &Revision {
        &self.rev
    }

    /// The security labels the storage unit attached.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// The JSON body.
    pub fn body(&self) -> &Value {
        &self.body
    }

    /// Consumes into `(id, rev, labels, body)`.
    pub fn into_parts(self) -> (String, Revision, LabelSet, Value) {
        (self.id, self.rev, self.labels, self.body)
    }

    /// Full wire form (used by replication): the body wrapped with `_id`,
    /// `_rev` and `_labels` fields.
    pub fn to_wire_json(&self) -> Value {
        let mut v = self.body.clone();
        if v.as_object().is_none() {
            let mut wrapper = Value::object();
            wrapper.set("_body", v);
            v = wrapper;
        }
        v.set("_id", self.id.as_str());
        v.set("_rev", self.rev.to_string());
        v.set("_labels", self.labels.to_wire());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_json::jobject;

    #[test]
    fn revision_is_deterministic_in_content() {
        let a = Revision::first(&jobject! {"x" => 1});
        let b = Revision::first(&jobject! {"x" => 1});
        let c = Revision::first(&jobject! {"x" => 2});
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn revision_generation_increments() {
        let body = jobject! {"x" => 1};
        let r1 = Revision::first(&body);
        let r2 = r1.next(&jobject! {"x" => 2});
        assert_eq!(r1.generation(), 1);
        assert_eq!(r2.generation(), 2);
    }

    #[test]
    fn revision_string_roundtrip() {
        let r = Revision::first(&jobject! {"x" => 1});
        assert_eq!(Revision::parse(&r.to_string()), Some(r));
        assert_eq!(Revision::parse("junk"), None);
    }
}
