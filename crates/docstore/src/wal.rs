//! The append-only write-ahead log under a durable [`DocStore`].
//!
//! Every acknowledged write appends exactly one record *before* the
//! in-memory indexes change, so the log is always at least as new as the
//! state a client was told about. Records are framed as
//!
//! ```text
//! ┌────────────┬─────────────┬──────────────────┐
//! │ len: u32 LE│ crc32: u32LE│ payload (len B)  │
//! └────────────┴─────────────┴──────────────────┘
//! ```
//!
//! where the CRC-32 (IEEE polynomial) covers the payload bytes and the
//! payload is the deterministic JSON encoding of one [`Record`]. On
//! [`Wal::open`] the log is scanned front to back; the first truncated,
//! over-long, checksum-mismatched or undecodable frame ends the replay
//! *cleanly* — everything before it is recovered, the torn tail is
//! discarded by truncating back to the last good frame, and appends
//! resume from there. A torn tail is the expected outcome of a crash
//! mid-`write`; it is not an error.
//!
//! ## Segments
//!
//! The log is split into **bounded segment files**: appends go to the
//! active segment (`wal.log`); once it crosses the configured size bound
//! it is fsynced and renamed aside as `wal-<n>.sealed` and a fresh
//! active segment starts. Every byte of a sealed segment is durable (the
//! seal fsync precedes the rename), which keeps two operations cheap:
//! a group-commit leader only ever needs to fsync the *active* file, and
//! a snapshot rotates the active segment and later deletes the sealed
//! files it covered instead of truncating one ever-growing log under the
//! store lock. Recovery replays sealed segments in order, then the
//! active file.
//!
//! ## Durability grades and group commit
//!
//! Records reach the kernel page cache on every append (one `write(2)`,
//! no user-space buffering), which survives `SIGKILL` / process crashes.
//! [`WalSync::Always`] adds power-loss durability: an acknowledged write
//! must be covered by an `fdatasync(2)` before its ack. Rather than one
//! sync per record, concurrent appenders batch behind a **leader** (see
//! [`GroupCommit`]): each append takes a monotone ticket, the first
//! waiter syncs the active file once for every ticket appended so far,
//! and followers whose tickets that sync covered are released without
//! ever touching the disk. Acks still never outrun the sync — a waiter
//! returns only once `synced >= its ticket` — so the guarantee is
//! unchanged while the fsync cost is shared across the batch.
//!
//! [`DocStore`]: crate::DocStore

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

use safeweb_json::Value;
use safeweb_labels::LabelSet;
use safeweb_obs::Histogram;

use crate::document::{Document, Revision};

/// Upper bound on one record's payload; a corrupt length header cannot
/// ask the replayer to allocate gigabytes.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Bytes of framing before each payload (length + checksum).
pub(crate) const FRAME_HEADER: usize = 8;

/// How eagerly WAL appends are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// One `write(2)` per record (default): data reaches the kernel page
    /// cache immediately, surviving process death (`SIGKILL`, panics,
    /// OOM-kills) but not a host power loss.
    #[default]
    OsBuffered,
    /// `fdatasync(2)` after every record: power-loss durable, at the cost
    /// of a disk round-trip per acknowledged write.
    Always,
}

/// Errors opening or recovering a durable store.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure (open, read, write, rename, sync).
    Io(std::io::Error),
    /// A *snapshot* failed validation. Snapshots are written to a
    /// temporary file and atomically renamed, so — unlike a torn WAL
    /// tail, which recovery discards silently — a corrupt snapshot means
    /// real data loss and is surfaced instead of masked.
    Corrupt {
        /// The file that failed validation.
        path: PathBuf,
        /// Byte offset of the offending frame.
        offset: u64,
        /// What went wrong with it.
        reason: String,
    },
    /// Another live handle — this process or another — holds the store
    /// directory. Two writers appending to one WAL would interleave
    /// frames and corrupt it, so the second open is refused instead.
    Locked {
        /// The lock file that is held.
        path: PathBuf,
        /// The pid recorded in it, when readable.
        pid: Option<u32>,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "persistence I/O error: {e}"),
            WalError::Corrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "corrupt persistence file {} at byte {offset}: {reason}",
                path.display()
            ),
            WalError::Locked { path, pid } => match pid {
                Some(pid) => write!(
                    f,
                    "store is locked by live process {pid} ({})",
                    path.display()
                ),
                None => write!(f, "store is locked ({})", path.display()),
            },
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Record {
    /// A document write (external put or replication apply) that produced
    /// store sequence `seq`.
    Put {
        /// The store sequence number after this write.
        seq: u64,
        /// The written document.
        doc: Document,
    },
    /// A document deletion that produced store sequence `seq`.
    Delete {
        /// The store sequence number after this deletion.
        seq: u64,
        /// The deleted id.
        id: String,
    },
    /// A replication checkpoint: this replica has applied the source's
    /// changes feed through sequence `rep`. Carries no store sequence of
    /// its own.
    Checkpoint {
        /// The source sequence replicated through.
        rep: u64,
    },
}

// ---- CRC-32 (IEEE 802.3 polynomial, reflected) --------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 of `bytes` (IEEE polynomial — the same checksum gzip uses).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

// ---- record payload encoding --------------------------------------------

/// Encodes a document as a JSON object `{id, rev, labels, body}`; shared
/// by WAL put records and snapshot document frames. Bodies round-trip
/// through JSON, so non-finite floats degrade to `null` on recovery (the
/// same degradation [`Document::to_wire_json`] applies on the wire).
pub(crate) fn doc_to_value(doc: &Document) -> Value {
    let mut v = Value::object();
    v.set("id", doc.id());
    v.set("rev", doc.rev().to_string());
    v.set("labels", doc.labels().to_wire());
    v.set("body", doc.body().clone());
    v
}

/// Decodes [`doc_to_value`]'s encoding; `None` on any missing or
/// malformed field.
pub(crate) fn doc_from_value(v: &Value) -> Option<Document> {
    let id = v.get("id")?.as_str()?.to_string();
    let rev = Revision::parse(v.get("rev")?.as_str()?)?;
    let labels = LabelSet::from_wire(v.get("labels")?.as_str()?).ok()?;
    let body = v.get("body")?.clone();
    Some(Document::new(id, rev, labels, body))
}

pub(crate) fn encode_put(seq: u64, doc: &Document) -> String {
    let mut v = doc_to_value(doc);
    v.set("op", "put");
    v.set("seq", seq as i64);
    v.to_json()
}

pub(crate) fn encode_delete(seq: u64, id: &str) -> String {
    let mut v = Value::object();
    v.set("op", "del");
    v.set("seq", seq as i64);
    v.set("id", id);
    v.to_json()
}

pub(crate) fn encode_checkpoint(rep: u64) -> String {
    let mut v = Value::object();
    v.set("op", "ckpt");
    v.set("rep", rep as i64);
    v.to_json()
}

fn decode_record(payload: &str) -> Option<Record> {
    let v = Value::parse(payload).ok()?;
    let seq_of = |v: &Value| v.get("seq").and_then(Value::as_i64).map(|s| s as u64);
    match v.get("op")?.as_str()? {
        "put" => Some(Record::Put {
            seq: seq_of(&v)?,
            doc: doc_from_value(&v)?,
        }),
        "del" => Some(Record::Delete {
            seq: seq_of(&v)?,
            id: v.get("id")?.as_str()?.to_string(),
        }),
        "ckpt" => Some(Record::Checkpoint {
            rep: v.get("rep").and_then(Value::as_i64)? as u64,
        }),
        _ => None,
    }
}

/// Frames `payload` for appending: length, checksum, bytes.
pub(crate) fn encode_frame(payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut frame = Vec::with_capacity(FRAME_HEADER + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(bytes).to_le_bytes());
    frame.extend_from_slice(bytes);
    frame
}

/// One step of frame decoding: the payload at `buf[offset..]`, or the
/// reason the frame there is invalid. `Ok(None)` means a clean end of
/// input (no bytes past `offset`).
pub(crate) fn decode_frame(buf: &[u8], offset: usize) -> Result<Option<(&str, usize)>, String> {
    if offset == buf.len() {
        return Ok(None);
    }
    let rest = &buf[offset..];
    if rest.len() < FRAME_HEADER {
        return Err(format!("truncated frame header ({} bytes)", rest.len()));
    }
    let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return Err(format!("implausible record length {len}"));
    }
    let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
    let Some(payload) = rest[FRAME_HEADER..].get(..len as usize) else {
        return Err(format!(
            "truncated payload ({} of {len} bytes)",
            rest.len() - FRAME_HEADER
        ));
    };
    if crc32(payload) != crc {
        return Err("checksum mismatch".to_string());
    }
    let payload = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    Ok(Some((payload, offset + FRAME_HEADER + len as usize)))
}

/// Name of the advisory lock file inside a durable store's directory.
pub(crate) const LOCK_FILE: &str = "lock";

/// Takes the store directory's advisory lock: a `lock` file created with
/// `O_EXCL`, holding the owner's pid. A lock left behind by a process
/// that no longer exists (`SIGKILL` never runs destructors) is reclaimed
/// by checking `/proc/<pid>`; a lock held by a *live* process — including
/// this one, for a second handle onto the same directory — refuses the
/// open, because two writers interleaving appends into one WAL would
/// corrupt it. Released by the store's `Drop`.
pub(crate) fn acquire_dir_lock(dir: &Path) -> Result<(), WalError> {
    let path = dir.join(LOCK_FILE);
    // The pid is written to a private temp file first and `hard_link`ed
    // into place — link(2) fails with EEXIST if the lock exists and
    // never exposes a half-written file, so a concurrent opener can
    // never observe an empty lock and mistake a live holder for stale.
    let tmp = dir.join(format!("{LOCK_FILE}.tmp-{}", std::process::id()));
    std::fs::write(&tmp, format!("{}", std::process::id()))?;
    let claim = dir.join(format!("{LOCK_FILE}.stale-{}", std::process::id()));
    let result = (|| {
        for attempt in 0..2 {
            match std::fs::hard_link(&tmp, &path) {
                Ok(()) => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let pid = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    let holder_alive =
                        pid.is_some_and(|pid| Path::new(&format!("/proc/{pid}")).exists());
                    if holder_alive || attempt > 0 {
                        return Err(WalError::Locked {
                            path: path.clone(),
                            pid,
                        });
                    }
                    // Stale: the recorded process is gone (`SIGKILL`
                    // leaves its lock behind). Claim it by *renaming* it
                    // aside — atomic, so of N racing reclaimers exactly
                    // one wins; the losers loop into the live-pid
                    // refusal above. Then re-verify what was actually
                    // claimed: if a racer's fresh lock slid under the
                    // rename between our read and our claim, hand it
                    // back via `hard_link` — atomic and non-clobbering,
                    // so a third opener that acquired in the gap keeps
                    // its lock rather than being silently overwritten.
                    // (A triple race within that microsecond window can
                    // still leave the wronged racer without its lock
                    // file — this is an advisory guard against operator
                    // error, not a contended mutex.)
                    if std::fs::rename(&path, &claim).is_ok() {
                        let claimed = std::fs::read_to_string(&claim)
                            .ok()
                            .and_then(|s| s.trim().parse::<u32>().ok());
                        if claimed != pid {
                            let _ = std::fs::hard_link(&claim, &path);
                            let _ = std::fs::remove_file(&claim);
                            return Err(WalError::Locked {
                                path: path.clone(),
                                pid: claimed,
                            });
                        }
                        let _ = std::fs::remove_file(&claim);
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(WalError::Locked {
            path: path.clone(),
            pid: None,
        })
    })();
    let _ = std::fs::remove_file(&tmp);
    result
}

/// File name of the active WAL segment inside the store directory.
pub(crate) const ACTIVE_SEGMENT: &str = "wal.log";

/// Default bound on the active segment before it is sealed (8 MiB).
pub(crate) const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// File name of the sealed segment with rotation index `index`.
fn sealed_name(index: u64) -> String {
    format!("wal-{index:08}.sealed")
}

/// Parses a [`sealed_name`] back to its index; `None` for other files.
fn sealed_index(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".sealed")?;
    if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Leader/follower group commit for [`WalSync::Always`] appenders.
///
/// Appends (serialized by the store's write lock) take monotone tickets;
/// [`GroupCommit::wait_durable`] releases a ticket only once a sync that
/// *started after* the ticket's append has completed. The first waiter
/// to arrive while no sync is running becomes the **leader**: it
/// captures the highest appended ticket and the active segment's file
/// handle, fsyncs outside every lock, then publishes the new `synced`
/// watermark and wakes the followers the sync covered. Tickets that
/// arrive mid-sync simply elect the next leader when it finishes, so no
/// ack ever rides a sync that began before its append.
///
/// A sync failure is sticky: every current and future waiter gets the
/// error, mirroring the store's sticky persistence failure — after an
/// ambiguous fsync the WAL's durable prefix is unknown, so no further
/// write may be acknowledged.
#[derive(Debug)]
pub(crate) struct GroupCommit {
    state: Mutex<GroupState>,
    cv: Condvar,
}

#[derive(Debug)]
struct GroupState {
    /// Highest ticket whose frame is in the active segment.
    appended: u64,
    /// Highest ticket covered by a completed `fdatasync`.
    synced: u64,
    /// The active segment holding `appended`'s frame. An `Arc` clone so
    /// the leader can sync it after a rotation swapped the `Wal`'s own
    /// handle (sealing already fsynced every earlier segment).
    file: Option<Arc<File>>,
    /// A leader's sync is in flight; later arrivals wait instead of
    /// issuing a second concurrent fsync.
    leading: bool,
    failed: Option<String>,
    /// Leader `fdatasync` latency. Detached until
    /// [`crate::DocStore::attach_metrics`] swaps in registry-backed
    /// handles; observing a detached histogram is still valid, just
    /// invisible to any ops surface.
    fsync_ns: Histogram,
    /// Tickets released per leader sync — the group-commit batch size.
    batch: Histogram,
}

impl GroupCommit {
    fn new() -> GroupCommit {
        GroupCommit {
            state: Mutex::new(GroupState {
                appended: 0,
                synced: 0,
                file: None,
                leading: false,
                failed: None,
                fsync_ns: Histogram::new(),
                batch: Histogram::with_bounds(Histogram::size_bounds()),
            }),
            cv: Condvar::new(),
        }
    }

    /// Swaps in registry-backed histograms for fsync latency and batch
    /// size (see [`crate::DocStore::attach_metrics`]).
    pub(crate) fn set_metrics(&self, fsync_ns: Histogram, batch: Histogram) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.fsync_ns = fsync_ns;
        st.batch = batch;
    }

    /// Records that `ticket`'s frame reached the active segment `file`.
    /// Called with the store's write lock held, so tickets are published
    /// in order.
    fn record_append(&self, ticket: u64, file: Arc<File>) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.appended = ticket;
        st.file = Some(file);
    }

    /// Blocks until every append up to `ticket` is on stable storage,
    /// electing this thread as the sync leader when none is running.
    /// Called *without* the store lock, so appenders batch up behind the
    /// in-flight sync instead of serializing on it.
    pub(crate) fn wait_durable(&self, ticket: u64) -> Result<(), String> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(why) = &st.failed {
                return Err(why.clone());
            }
            if st.synced >= ticket {
                return Ok(());
            }
            if st.leading {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.leading = true;
            let target = st.appended;
            let covered = target.saturating_sub(st.synced);
            let file = st.file.clone();
            let (fsync_ns, batch) = (st.fsync_ns.clone(), st.batch.clone());
            drop(st);
            // `target >= ticket`: our append published its ticket before
            // this wait began, so the sync we lead always covers us.
            let started = std::time::Instant::now();
            let result = match &file {
                Some(f) => f.sync_data(),
                None => Ok(()),
            };
            fsync_ns.observe_ns(started.elapsed());
            batch.observe(covered);
            st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.leading = false;
            match result {
                Ok(()) => st.synced = st.synced.max(target),
                Err(e) => st.failed = Some(e.to_string()),
            }
            self.cv.notify_all();
        }
    }
}

/// The open write-ahead log of one durable store: sealed segments plus
/// the active `wal.log`.
#[derive(Debug)]
pub(crate) struct Wal {
    dir: PathBuf,
    /// The active segment. Shared (`Arc`) with the group-commit leader,
    /// which syncs it outside the store lock.
    file: Arc<File>,
    /// Append offset into the active segment: bytes of validated frames.
    len: u64,
    /// Sealed segments still on disk, ascending `(index, bytes)`.
    sealed: Vec<(u64, u64)>,
    /// Rotation index the next seal will use.
    next_seal: u64,
    /// Active-segment size bound that triggers rotation; 0 disables.
    segment_bytes: u64,
    sync: WalSync,
    /// Monotone append counter — the group-commit ticket source.
    appends: u64,
    group: Arc<GroupCommit>,
}

/// Replays frames from `buf` into `records`, returning the byte offset
/// of the first invalid frame (== `buf.len()` for a clean log). An
/// intact frame holding garbage stops replay exactly like a torn frame.
fn replay_into(buf: &[u8], records: &mut Vec<Record>) -> usize {
    let mut offset = 0usize;
    loop {
        match decode_frame(buf, offset) {
            Ok(None) => break,
            Ok(Some((payload, next))) => match decode_record(payload) {
                Some(record) => {
                    records.push(record);
                    offset = next;
                }
                None => break,
            },
            Err(_) => break,
        }
    }
    offset
}

impl Wal {
    /// Opens (creating if absent) the log inside `dir`, replaying every
    /// valid record: sealed segments in rotation order, then the active
    /// `wal.log`. The first invalid frame anywhere ends the replay — a
    /// torn tail, the expected residue of a crash mid-append, is
    /// truncated away and every *later* segment (necessarily written
    /// after the tear) is deleted, so the next append starts on a frame
    /// boundary of a log whose every byte was replayed.
    pub(crate) fn open(dir: &Path) -> Result<(Wal, Vec<Record>), WalError> {
        let mut sealed_files: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(index) = entry.file_name().to_str().and_then(sealed_index) {
                sealed_files.push((index, entry.path()));
            }
        }
        sealed_files.sort();

        let mut records = Vec::new();
        let mut sealed = Vec::new();
        let mut torn = false;
        for (index, path) in &sealed_files {
            if torn {
                // Newer than a tear: its records would replay out of
                // order past a hole, resurrecting a suffix the store
                // never acknowledged as following the lost records.
                std::fs::remove_file(path)?;
                continue;
            }
            let buf = std::fs::read(path)?;
            let consumed = replay_into(&buf, &mut records);
            if consumed < buf.len() {
                let f = OpenOptions::new().write(true).open(path)?;
                f.set_len(consumed as u64)?;
                torn = true;
            }
            sealed.push((*index, consumed as u64));
        }

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(ACTIVE_SEGMENT))?;
        let mut offset = 0usize;
        if torn {
            file.set_len(0)?;
        } else {
            let mut buf = Vec::new();
            file.read_to_end(&mut buf)?;
            offset = replay_into(&buf, &mut records);
            if (offset as u64) < buf.len() as u64 {
                file.set_len(offset as u64)?;
            }
        }
        file.seek(SeekFrom::Start(offset as u64))?;

        let next_seal = sealed.last().map_or(1, |(i, _)| i + 1);
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                file: Arc::new(file),
                len: offset as u64,
                sealed,
                next_seal,
                segment_bytes: DEFAULT_SEGMENT_BYTES,
                sync: WalSync::default(),
                appends: 0,
                group: Arc::new(GroupCommit::new()),
            },
            records,
        ))
    }

    pub(crate) fn set_sync(&mut self, sync: WalSync) {
        self.sync = sync;
    }

    pub(crate) fn sync_mode(&self) -> WalSync {
        self.sync
    }

    pub(crate) fn set_segment_bytes(&mut self, bytes: u64) {
        self.segment_bytes = bytes;
    }

    pub(crate) fn group(&self) -> &Arc<GroupCommit> {
        &self.group
    }

    /// Appends one framed payload; the record is kernel-durable when this
    /// returns. Under [`WalSync::Always`] the returned ticket must be
    /// passed to [`GroupCommit::wait_durable`] (after releasing the store
    /// lock) before the write is acknowledged — the fsync itself is
    /// deferred to the group-commit leader.
    ///
    /// Mirrors the replay-side limits: a payload over `MAX_RECORD_LEN`
    /// is refused *here* — were it written, recovery would reject its
    /// frame as corrupt and truncate it (and everything after it) away,
    /// turning an acknowledged write into silent data loss. And on a
    /// write failure the active segment is rolled back to the pre-append
    /// offset, so a write reported as failed cannot leave a complete
    /// frame behind to resurrect on recovery.
    pub(crate) fn append(&mut self, payload: &str) -> std::io::Result<Option<u64>> {
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "record of {} bytes exceeds the WAL limit of {MAX_RECORD_LEN}",
                    payload.len()
                ),
            ));
        }
        if self.segment_bytes > 0 && self.len >= self.segment_bytes {
            self.rotate()?;
        }
        let frame = encode_frame(payload);
        if let Err(e) = (&*self.file).write_all(&frame) {
            // Best effort: discard the partial frame so the reported
            // failure and the on-disk state agree. If even this fails,
            // the store's sticky failure flag stops further writes,
            // bounding the damage to this one ambiguous record.
            let _ = self.file.set_len(self.len);
            let _ = (&*self.file).seek(SeekFrom::Start(self.len));
            return Err(e);
        }
        self.len += frame.len() as u64;
        self.appends += 1;
        if self.sync == WalSync::Always {
            self.group
                .record_append(self.appends, Arc::clone(&self.file));
            Ok(Some(self.appends))
        } else {
            Ok(None)
        }
    }

    /// Seals the active segment and starts a fresh one, returning the
    /// sealed index (or the last one, when the active segment was empty
    /// and there was nothing to seal). The outgoing segment is fsynced
    /// *before* the rename regardless of sync policy — that invariant is
    /// what lets the group-commit leader sync only the active file and
    /// [`Wal::sync`] ignore sealed segments entirely.
    pub(crate) fn rotate(&mut self) -> std::io::Result<u64> {
        if self.len == 0 {
            return Ok(self.next_seal - 1);
        }
        self.file.sync_data()?;
        let index = self.next_seal;
        std::fs::rename(
            self.dir.join(ACTIVE_SEGMENT),
            self.dir.join(sealed_name(index)),
        )?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(self.dir.join(ACTIVE_SEGMENT))?;
        // Persist the rename + create before mutating in-memory state, so
        // a crash right here recovers the sealed file under its new name.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.sealed.push((index, self.len));
        self.next_seal = index + 1;
        self.file = Arc::new(file);
        self.len = 0;
        Ok(index)
    }

    /// Deletes sealed segments with index ≤ `boundary` (their records are
    /// covered by a written snapshot).
    pub(crate) fn drop_sealed_through(&mut self, boundary: u64) -> std::io::Result<()> {
        let mut failed: Option<std::io::Error> = None;
        let dir = &self.dir;
        self.sealed.retain(|(index, _)| {
            if *index > boundary || failed.is_some() {
                return true;
            }
            match std::fs::remove_file(dir.join(sealed_name(*index))) {
                Ok(()) => false,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
                Err(e) => {
                    failed = Some(e);
                    true
                }
            }
        });
        match failed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Total log length in bytes across every segment (diagnostics and
    /// crash-point tests).
    pub(crate) fn len(&self) -> u64 {
        self.len + self.sealed.iter().map(|(_, bytes)| bytes).sum::<u64>()
    }

    /// Number of on-disk segment files (sealed + active).
    pub(crate) fn segments(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Empties the log after a snapshot has made its records redundant:
    /// sealed segments are deleted, the active one truncated in place.
    pub(crate) fn reset(&mut self) -> std::io::Result<()> {
        self.drop_sealed_through(u64::MAX)?;
        self.file.set_len(0)?;
        (&*self.file).seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.len = 0;
        Ok(())
    }

    /// Forces everything appended so far to stable storage. Only the
    /// active segment needs syncing — sealed segments were fsynced as
    /// part of sealing.
    pub(crate) fn sync(&self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_torn_tail() {
        let a = encode_frame("{\"op\":\"ckpt\",\"rep\":1}");
        let b = encode_frame("{\"op\":\"ckpt\",\"rep\":2}");
        let mut buf = a.clone();
        buf.extend_from_slice(&b);

        let (p1, next) = decode_frame(&buf, 0).unwrap().unwrap();
        assert_eq!(p1, "{\"op\":\"ckpt\",\"rep\":1}");
        let (p2, end) = decode_frame(&buf, next).unwrap().unwrap();
        assert_eq!(p2, "{\"op\":\"ckpt\",\"rep\":2}");
        assert_eq!(end, buf.len());
        assert!(decode_frame(&buf, end).unwrap().is_none());

        // Every possible torn tail of the second frame fails cleanly.
        for cut in next + 1..buf.len() {
            assert!(decode_frame(&buf[..cut], next).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let frame = encode_frame("{\"op\":\"ckpt\",\"rep\":11111111}");
        for i in FRAME_HEADER..frame.len() {
            let mut buf = frame.clone();
            buf[i] ^= 0x04;
            assert!(
                decode_frame(&buf, 0).is_err(),
                "flip at byte {i} undetected"
            );
        }
    }

    #[test]
    fn implausible_length_is_rejected() {
        let mut buf = vec![0xffu8; 32];
        buf[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_frame(&buf, 0).is_err());
    }

    /// Appends must refuse what replay would reject: an oversized record
    /// written today is an acknowledged write silently truncated away on
    /// the next recovery.
    #[test]
    fn oversized_record_refused_at_append_not_lost_at_replay() {
        let dir = std::env::temp_dir().join(format!("safeweb-wal-big-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (mut wal, _) = Wal::open(&dir).unwrap();
        let huge = " ".repeat(MAX_RECORD_LEN as usize + 1);
        assert!(wal.append(&huge).is_err());
        // Nothing reached the log; it stays fully usable.
        assert_eq!(wal.len(), 0);
        wal.append("{\"op\":\"ckpt\",\"rep\":1}").unwrap();
        drop(wal);
        let (wal, records) = Wal::open(&dir).unwrap();
        assert_eq!(records, vec![Record::Checkpoint { rep: 1 }]);
        assert!(wal.len() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_replay_spans_them() {
        let dir = std::env::temp_dir().join(format!("safeweb-wal-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.set_segment_bytes(1); // every append lands in a fresh segment
        for rep in 1..=5u64 {
            wal.append(&format!("{{\"op\":\"ckpt\",\"rep\":{rep}}}"))
                .unwrap();
        }
        assert_eq!(wal.segments(), 5); // 4 sealed + active
        let total = wal.len();
        drop(wal);

        let (mut wal, records) = Wal::open(&dir).unwrap();
        let reps: Vec<u64> = records
            .iter()
            .map(|r| match r {
                Record::Checkpoint { rep } => *rep,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(reps, vec![1, 2, 3, 4, 5]);
        assert_eq!(wal.len(), total);

        // A snapshot boundary prunes everything it covers…
        let boundary = wal.rotate().unwrap();
        wal.drop_sealed_through(boundary).unwrap();
        assert_eq!(wal.segments(), 1);
        assert_eq!(wal.len(), 0);
        // …and reset clears whatever is left.
        wal.append("{\"op\":\"ckpt\",\"rep\":6}").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.len(), 0);
        let (_, records) = Wal::open(&dir).unwrap();
        assert!(records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A torn frame in a sealed segment (crash inside the seal fsync
    /// window, or byte rot) must end replay there: the tail of that
    /// segment is truncated and every later segment — written after the
    /// tear — is deleted, never replayed past the hole.
    #[test]
    fn torn_sealed_segment_discards_later_segments() {
        let dir = std::env::temp_dir().join(format!("safeweb-wal-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.set_segment_bytes(1);
        for rep in 1..=4u64 {
            wal.append(&format!("{{\"op\":\"ckpt\",\"rep\":{rep}}}"))
                .unwrap();
        }
        drop(wal);

        // Tear the tail of the second sealed segment.
        let victim = dir.join(sealed_name(2));
        let bytes = std::fs::read(&victim).unwrap();
        let f = OpenOptions::new().write(true).open(&victim).unwrap();
        f.set_len(bytes.len() as u64 - 3).unwrap();
        drop(f);

        let (wal, records) = Wal::open(&dir).unwrap();
        assert_eq!(records, vec![Record::Checkpoint { rep: 1 }]);
        assert_eq!(wal.segments(), 3); // segments 1, 2 (emptied) + active
        assert!(!dir.join(sealed_name(3)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_acks_never_outrun_the_sync() {
        let dir = std::env::temp_dir().join(format!("safeweb-wal-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.set_sync(WalSync::Always);
        let t1 = wal.append("{\"op\":\"ckpt\",\"rep\":1}").unwrap().unwrap();
        let t2 = wal.append("{\"op\":\"ckpt\",\"rep\":2}").unwrap().unwrap();
        assert!(t2 > t1);
        let group = Arc::clone(wal.group());
        // Waiting on the later ticket first still covers the earlier one:
        // the leader syncs up to the highest appended ticket.
        group.wait_durable(t2).unwrap();
        group.wait_durable(t1).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
