//! # safeweb-docstore
//!
//! A CouchDB-like document database: the *application database* of the
//! SafeWeb architecture (Figure 1). The backend's privileged storage unit
//! writes processed, labelled result documents here; the web frontend
//! reads them (labels included) to serve requests.
//!
//! Reproduces the CouchDB features the paper's deployment relies on:
//!
//! * JSON documents with `_id`/`_rev` MVCC conflict detection,
//! * by-field views (CouchRest's `Records.by_mid` in Listing 2),
//!   **incrementally indexed** so queries are lookups rather than scans,
//! * id-prefix range queries over the ordered id space
//!   ([`DocStore::scan_prefix`]),
//! * a **compacting changes feed** (bounded at one latest entry per live
//!   document plus a recent tail) and **one-way push replication** with
//!   resumable checkpoints, per-batch deduplication, and a full-resync
//!   fallback once a checkpoint predates the compaction horizon,
//! * a **read-only mode** for the DMZ replica, enforcing requirement S1,
//! * an optional **durable mode** ([`DocStore::open`]): an append-only,
//!   checksummed write-ahead log plus periodic snapshots with log
//!   truncation, recovering documents *and* the replication checkpoint
//!   after a crash (views and the changes feed are rebuilt, not
//!   serialised). The record format is documented in `wal.rs` and in the
//!   repository's `ARCHITECTURE.md`.
//!
//! Security labels are first-class document metadata (not body fields), so
//! application code cannot accidentally strip them.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod document;
mod replication;
mod snapshot;
mod store;
mod wal;

pub use document::{Document, Revision};
pub use replication::{ReplicationHandle, ReplicationReport, Replicator};
pub use store::{Change, DocStore, StoreError, DEFAULT_CHANGES_RETENTION, DEFAULT_SNAPSHOT_EVERY};
pub use wal::{WalError, WalSync};
