//! The document store: MVCC puts, incrementally indexed views, a
//! compacting changes feed, a read-only mode for DMZ replicas (§5.1:
//! "The DMZ instance is read-only in order to prevent modifications by the
//! web frontend, thus satisfying requirement S1"), and an optional durable
//! mode ([`DocStore::open`]) backed by a write-ahead log plus periodic
//! snapshots.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use parking_lot::RwLock;

use safeweb_json::Value;
use safeweb_labels::LabelSet;
use safeweb_obs::{Histogram, MetricsRegistry};

use crate::document::{Document, Revision};
use crate::snapshot;
use crate::wal::{self, GroupCommit, Record, Wal, WalError, WalSync};

/// Default bound on the verbatim tail of the changes feed: once more than
/// twice this many entries pile up beyond one per live document, the feed
/// is compacted down to the latest entry per id plus this many recent
/// entries. See [`DocStore::set_changes_retention`].
pub const DEFAULT_CHANGES_RETENTION: usize = 1024;

/// Default number of WAL records between automatic snapshots in a durable
/// store: the recovery replay and the on-disk log stay bounded while each
/// snapshot's full-store write is amortised over thousands of appends.
/// See [`DocStore::set_snapshot_every`].
pub const DEFAULT_SNAPSHOT_EVERY: usize = 8192;

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The supplied revision does not match the current one (concurrent
    /// update).
    Conflict {
        /// The id of the conflicting document.
        id: String,
        /// The revision currently stored.
        current: Option<Revision>,
    },
    /// The store is in read-only (DMZ replica) mode.
    ReadOnly,
    /// No view registered under this name.
    UnknownView(String),
    /// The document id is empty or contains control characters.
    BadId(String),
    /// A durable store failed to append to its write-ahead log; the write
    /// was **not** applied. Carries the underlying I/O error text.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Conflict { id, current } => match current {
                Some(rev) => write!(f, "document conflict on {id:?} (current rev {rev})"),
                None => write!(f, "document conflict on {id:?} (deleted or never existed)"),
            },
            StoreError::ReadOnly => write!(f, "store is read-only"),
            StoreError::UnknownView(v) => write!(f, "unknown view {v:?}"),
            StoreError::BadId(id) => write!(f, "invalid document id {id:?}"),
            StoreError::Io(e) => write!(f, "write-ahead log failure: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One entry in the changes feed.
#[derive(Debug, Clone, PartialEq)]
pub struct Change {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The changed document id.
    pub id: String,
    /// The revision after the change (`None` = deletion).
    pub rev: Option<Revision>,
}

/// A registered view: the indexed body field plus the index itself,
/// maintained incrementally on every write. Index keys are the
/// [order-preserving encoding](index_key) of the field value, so equal
/// values always collide on the same bucket **and** the map's key order
/// is the value order — which is what `query_view_range` walks.
#[derive(Debug, Default)]
struct View {
    field: String,
    index: BTreeMap<String, BTreeSet<String>>,
}

/// Shared state of the background snapshot writer. Automatic snapshots
/// ([`Inner::maybe_snapshot`]) rotate the WAL segment and clone the
/// document map under the store lock — both cheap — and push the
/// expensive full-store file write onto a detached thread, so writers
/// never stall behind it.
#[derive(Debug)]
struct SnapshotTask {
    /// Serialises snapshot-file writers (background vs
    /// [`DocStore::snapshot_now`]) and holds the highest store sequence
    /// already written, so a slow background write can never clobber a
    /// newer snapshot with its older capture.
    write_lock: Mutex<u64>,
    /// The running (or just-finished) writer thread, joined on reuse,
    /// [`DocStore::snapshot_quiesce`], and store drop.
    handle: Mutex<Option<JoinHandle<()>>>,
    /// A writer is still running; at most one runs at a time.
    inflight: AtomicBool,
    /// `(sealed-segment boundary, result)` posted by a finished writer;
    /// reaped under the store lock to prune covered segments or record
    /// the failure.
    outcome: Mutex<Option<(u64, Result<(), String>)>>,
}

/// A pending group-commit ack: the WAL append landed in the log, but the
/// fsync covering it may not have happened yet. Callers wait on it
/// *after* releasing the store's write lock, which is what lets
/// concurrent appenders batch behind one leader fsync.
struct WriteTicket {
    group: Arc<GroupCommit>,
    ticket: u64,
}

/// The persistence state of a durable store: its open WAL, snapshot
/// cadence, and the recovered replication checkpoint.
#[derive(Debug)]
struct Durability {
    wal: Wal,
    dir: PathBuf,
    /// WAL records between automatic snapshots (0 = manual only).
    snapshot_every: usize,
    /// Records appended since the last snapshot.
    since_snapshot: usize,
    /// The replication checkpoint this store has durably applied through
    /// (see [`DocStore::persist_replication_checkpoint`]).
    rep_checkpoint: u64,
    /// Sticky WAL-append failure: once set, external writes are refused
    /// and the checkpoint stops advancing, so recovery can never claim
    /// more than what actually reached the log.
    failed: Option<String>,
    /// Last snapshot failure (non-fatal: the WAL still holds everything).
    snapshot_error: Option<String>,
    snapshots: Arc<SnapshotTask>,
}

impl Drop for Durability {
    /// Releases the directory's advisory lock. Runs when the last handle
    /// onto the store drops; a `SIGKILL` skips this, which is why
    /// acquisition treats dead holders as stale.
    fn drop(&mut self) {
        // Wait out an in-flight background snapshot first: it writes into
        // this directory, and the advisory lock is what keeps another
        // process from opening the directory mid-write.
        let handle = self
            .snapshots
            .handle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(self.dir.join(wal::LOCK_FILE));
    }
}

/// Applies a finished background snapshot's outcome (called under the
/// store's write lock): on success the sealed segments the snapshot
/// covers are deleted; on failure the error is recorded and the records
/// stay in the log for the next attempt.
fn reap_snapshot(d: &mut Durability) {
    let outcome = d
        .snapshots
        .outcome
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    let Some((boundary, result)) = outcome else {
        return;
    };
    match result {
        Ok(()) => {
            d.snapshot_error = None;
            if let Err(e) = d.wal.drop_sealed_through(boundary) {
                d.snapshot_error = Some(format!("pruning sealed WAL segments: {e}"));
            }
        }
        Err(why) => d.snapshot_error = Some(why),
    }
}

#[derive(Debug)]
struct Inner {
    docs: BTreeMap<String, Document>,
    seq: u64,
    /// Strictly seq-ascending, so lookups can binary-search.
    changes: Vec<Change>,
    /// Horizon of the last compaction: entries with `seq <=
    /// compacted_seq` have been reduced to one latest entry per live id,
    /// and delete tombstones below it are gone.
    compacted_seq: u64,
    /// Auto-compaction threshold (0 = never compact automatically).
    changes_retention: usize,
    views: BTreeMap<String, View>,
    read_only: bool,
    /// `Some` iff the store was opened with [`DocStore::open`].
    durability: Option<Durability>,
    /// End-to-end [`DocStore::put`] latency (including the group-commit
    /// durability wait). Detached until [`DocStore::attach_metrics`]
    /// swaps in a registry-backed handle.
    put_ns: Histogram,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            docs: BTreeMap::new(),
            seq: 0,
            changes: Vec::new(),
            compacted_seq: 0,
            changes_retention: DEFAULT_CHANGES_RETENTION,
            views: BTreeMap::new(),
            read_only: false,
            durability: None,
            put_ns: Histogram::new(),
        }
    }
}

/// The **order-preserving** index key for a field value, or `None` when
/// the value cannot be indexed faithfully (non-finite floats: `NaN` does
/// not even equal itself, so such values are never indexed and never
/// matched — same as the seed's equality scan).
///
/// The encoding is a type tag byte followed by a per-type payload whose
/// byte order equals the value order, which is what lets
/// [`DocStore::query_view_range`] run as one `BTreeMap::range` walk:
///
/// * `b0`/`b1` — booleans;
/// * `f` + 16 hex digits — finite floats, IEEE-754 bits sign-flipped into
///   a lexicographically sortable integer (`-0.0` canonicalised to
///   `0.0`, matching f64 equality);
/// * `i` + 16 hex digits — integers, offset-binary (`value ^ i64::MIN`);
/// * `j` + deterministic JSON — arrays/objects (equality lookups only;
///   their relative order is the encoding's, not anything semantic);
/// * `s` + the raw string — strings, byte order = `str` order;
/// * `z` — null.
///
/// The tag keeps types in disjoint key ranges, so a typed range bound can
/// never sweep in values of another type, and `Int(1)`/`Float(1.0)`
/// remain distinct buckets exactly as they were under the previous
/// JSON-encoding key. Keys live only in memory (views are rebuilt on
/// recovery), so the encoding can evolve without a WAL migration.
fn index_key(value: &Value) -> Option<String> {
    fn finite(value: &Value) -> bool {
        match value {
            Value::Float(f) => f.is_finite(),
            Value::Array(items) => items.iter().all(finite),
            Value::Object(map) => map.values().all(finite),
            _ => true,
        }
    }
    Some(match value {
        Value::Null => "z".to_string(),
        Value::Bool(false) => "b0".to_string(),
        Value::Bool(true) => "b1".to_string(),
        Value::Int(i) => format!("i{:016x}", (*i as u64) ^ (1 << 63)),
        Value::Float(f) => {
            if !f.is_finite() {
                return None;
            }
            // `-0.0` canonicalises to `0.0`: f64 comparison (and
            // `Value`'s derived equality, which the linear-scan oracle
            // uses) treats them as equal, so they must share one bucket
            // and one ordering position.
            let f = if *f == 0.0 { 0.0 } else { *f };
            let bits = f.to_bits();
            // Standard total-order transform: flip everything for
            // negatives, flip only the sign for positives.
            let ordered = if bits >> 63 == 1 {
                !bits
            } else {
                bits | (1 << 63)
            };
            format!("f{ordered:016x}")
        }
        Value::Str(s) => format!("s{s}"),
        Value::Array(_) | Value::Object(_) => {
            if !finite(value) {
                return None;
            }
            format!("j{}", value.to_json())
        }
    })
}

fn index_doc(views: &mut BTreeMap<String, View>, doc: &Document) {
    for view in views.values_mut() {
        if let Some(key) = doc.body().get(&view.field).and_then(index_key) {
            view.index
                .entry(key)
                .or_default()
                .insert(doc.id().to_string());
        }
    }
}

fn unindex_doc(views: &mut BTreeMap<String, View>, doc: &Document) {
    for view in views.values_mut() {
        if let Some(key) = doc.body().get(&view.field).and_then(index_key) {
            if let Some(ids) = view.index.get_mut(&key) {
                ids.remove(doc.id());
                if ids.is_empty() {
                    view.index.remove(&key);
                }
            }
        }
    }
}

impl Inner {
    /// Appends one WAL record *before* the in-memory mutation it
    /// describes; a no-op for in-memory stores. The payload closure only
    /// runs when the store is durable. On failure the mutation must not
    /// proceed — the caller propagates the error — and an I/O failure is
    /// sticky: later writes are refused too, so the durable state can
    /// never silently fall behind the acknowledged state. A *validation*
    /// refusal (oversized record) touches nothing and is not sticky —
    /// only that one write is rejected, the store stays healthy.
    ///
    /// Under [`WalSync::Always`] the record is not yet fsynced when this
    /// returns: the caller must wait on the returned [`WriteTicket`]
    /// (via [`DocStore::wait_durable`], after releasing the store lock)
    /// before acknowledging the write.
    fn persist(
        &mut self,
        encode: impl FnOnce() -> String,
    ) -> Result<Option<WriteTicket>, StoreError> {
        let Some(d) = self.durability.as_mut() else {
            return Ok(None);
        };
        if let Some(why) = &d.failed {
            return Err(StoreError::Io(format!("log previously failed: {why}")));
        }
        match d.wal.append(&encode()) {
            Ok(ticket) => {
                d.since_snapshot += 1;
                Ok(ticket.map(|ticket| WriteTicket {
                    group: Arc::clone(d.wal.group()),
                    ticket,
                }))
            }
            Err(e) => {
                if e.kind() != std::io::ErrorKind::InvalidInput {
                    d.failed = Some(e.to_string());
                }
                Err(StoreError::Io(e.to_string()))
            }
        }
    }

    /// [`Inner::persist`] for the replication-apply path: the apply
    /// proceeds regardless, so *every* failure — including the non-sticky
    /// validation refusal — must set the sticky flag. The flag is what
    /// blocks [`DocStore::persist_replication_checkpoint`]; without it an
    /// unlogged replicated write would be checkpointed past and silently
    /// lost on the next recovery.
    ///
    /// No group-commit wait here: replicated writes are acknowledged to
    /// the *source* only by the durable checkpoint that follows them in
    /// the same WAL, and that checkpoint's own sync covers them.
    fn apply_persist(&mut self, encode: impl FnOnce() -> String) {
        match self.persist(encode) {
            Ok(_) => {}
            Err(StoreError::Io(why)) => {
                if let Some(d) = self.durability.as_mut() {
                    if d.failed.is_none() {
                        d.failed = Some(why);
                    }
                }
            }
            Err(_) => {}
        }
    }

    /// Writes a snapshot *synchronously* and truncates the WAL — the
    /// [`DocStore::snapshot_now`] path; automatic snapshots go through
    /// [`Inner::maybe_snapshot`] instead. Failures are recorded but
    /// non-fatal: every record is still in the log, so recovery is
    /// unaffected — the snapshot is retried after the next
    /// `snapshot_every` appends.
    fn snapshot_locked(&mut self) -> Result<(), StoreError> {
        let Some(d) = self.durability.as_mut() else {
            return Err(StoreError::Io("store is not durable".to_string()));
        };
        reap_snapshot(d);
        let result = {
            // Excludes a still-running background writer; `snapshot::write`
            // itself is atomic (tmp + rename) but the two captures would
            // race on which rename lands last, and the background one may
            // be older.
            let mut last = d
                .snapshots
                .write_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            snapshot::write(&d.dir, self.seq, d.rep_checkpoint, &self.docs)
                .map(|()| *last = (*last).max(self.seq))
        };
        match result {
            Ok(()) => {
                d.snapshot_error = None;
                // The snapshot now covers every logged record; a crash
                // between the rename above and this truncation is safe
                // because replay skips records at or below the snapshot
                // sequence.
                if let Err(e) = d.wal.reset() {
                    d.failed = Some(e.to_string());
                    return Err(StoreError::Io(e.to_string()));
                }
                d.since_snapshot = 0;
                Ok(())
            }
            Err(e) => {
                d.snapshot_error = Some(e.to_string());
                d.since_snapshot = 0; // retry after another full window
                Err(StoreError::Io(e.to_string()))
            }
        }
    }

    /// Automatic snapshotting, restructured so writers never wait for the
    /// full-store file write: under the store lock it only reaps the
    /// previous outcome, **rotates** the WAL segment (every record the
    /// snapshot will cover is now in sealed segments ≤ the boundary) and
    /// clones the document map; the write itself runs on a background
    /// thread, and the covered segments are deleted when its outcome is
    /// reaped. A crash before the write completes loses nothing — the
    /// sealed segments still hold every record.
    fn maybe_snapshot(&mut self) {
        let due = {
            let Some(d) = self.durability.as_mut() else {
                return;
            };
            reap_snapshot(d);
            d.snapshot_every > 0 && d.since_snapshot >= d.snapshot_every
        };
        if !due {
            return;
        }
        {
            let d = self.durability.as_ref().expect("due implies durable");
            if d.snapshots.inflight.swap(true, Ordering::SeqCst) {
                return; // previous snapshot still writing; try again later
            }
        }
        let docs = self.docs.clone();
        let seq = self.seq;
        let d = self.durability.as_mut().expect("due implies durable");
        // The previous writer (if any) has finished — `inflight` was
        // false — so this join only reclaims the thread.
        let finished = d
            .snapshots
            .handle
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = finished {
            let _ = h.join();
        }
        let boundary = match d.wal.rotate() {
            Ok(boundary) => boundary,
            Err(e) => {
                // The log's shape is now ambiguous (mid-rotation): treat
                // like any WAL I/O failure — sticky, no further acks.
                d.failed = Some(e.to_string());
                d.snapshots.inflight.store(false, Ordering::SeqCst);
                return;
            }
        };
        d.since_snapshot = 0;
        let dir = d.dir.clone();
        let rep = d.rep_checkpoint;
        let shared = Arc::clone(&d.snapshots);
        let spawned = std::thread::Builder::new()
            .name("safeweb-snapshot".to_string())
            .spawn(move || {
                let result = {
                    let mut last = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
                    if seq > *last {
                        snapshot::write(&dir, seq, rep, &docs)
                            .map(|()| *last = seq)
                            .map_err(|e| e.to_string())
                    } else {
                        // A newer snapshot (snapshot_now) already landed;
                        // it covers our boundary a fortiori.
                        Ok(())
                    }
                };
                *shared.outcome.lock().unwrap_or_else(|e| e.into_inner()) =
                    Some((boundary, result));
                shared.inflight.store(false, Ordering::SeqCst);
            });
        match spawned {
            Ok(handle) => {
                *d.snapshots.handle.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
            }
            Err(e) => {
                d.snapshot_error = Some(format!("spawning snapshot writer: {e}"));
                d.snapshots.inflight.store(false, Ordering::SeqCst);
            }
        }
    }

    /// Replaces (or inserts) `doc`, keeping every view index in sync —
    /// including re-indexing when the indexed field's value changed.
    fn store_doc(&mut self, doc: Document) {
        if let Some(old) = self.docs.get(doc.id()) {
            unindex_doc(&mut self.views, old);
        }
        index_doc(&mut self.views, &doc);
        self.docs.insert(doc.id().to_string(), doc);
    }

    fn remove_doc(&mut self, id: &str) -> Option<Document> {
        let doc = self.docs.remove(id)?;
        unindex_doc(&mut self.views, &doc);
        Some(doc)
    }

    fn record_change(&mut self, id: String, rev: Option<Revision>) {
        self.seq += 1;
        self.changes.push(Change {
            seq: self.seq,
            id,
            rev,
        });
        self.maybe_compact();
    }

    /// Auto-compaction: amortised so the feed stays at `O(live docs +
    /// retention)` entries while each write pays `O(live/retention)`.
    fn maybe_compact(&mut self) {
        let retention = self.changes_retention;
        if retention == 0 || self.changes.len() < self.docs.len() + 2 * retention {
            return;
        }
        let horizon = self.changes[self.changes.len() - retention - 1].seq;
        self.compact_to(horizon);
    }

    /// Compacts every entry with `seq <= horizon` down to the latest entry
    /// per still-live id. Tombstones and superseded revisions below the
    /// horizon are dropped; a replication checkpoint below `compacted_seq`
    /// can therefore no longer be served incrementally and must full-resync
    /// ([`crate::Replicator`] does this automatically).
    fn compact_to(&mut self, horizon: u64) {
        let cut = self.changes.partition_point(|c| c.seq <= horizon);
        self.compacted_seq = self.compacted_seq.max(horizon);
        if cut == 0 {
            return;
        }
        let suffix = self.changes.split_off(cut);
        let prefix = std::mem::take(&mut self.changes);
        // An id "seen" at a higher seq supersedes every earlier entry.
        let mut seen: HashSet<String> = suffix.iter().map(|c| c.id.clone()).collect();
        let mut kept: Vec<Change> = Vec::new();
        for change in prefix.into_iter().rev() {
            let newest = seen.insert(change.id.clone());
            if newest && change.rev.is_some() && self.docs.contains_key(&change.id) {
                kept.push(change);
            }
        }
        kept.reverse();
        self.changes = kept;
        self.changes.extend(suffix);
    }
}

/// A CouchDB-style document database. Cheap to clone (shared state).
///
/// Views are *incrementally indexed*: [`DocStore::create_view`] builds a
/// `field value → document ids` index which every subsequent write keeps
/// current, so [`DocStore::query_view`] is a lookup, not a scan. Id-prefix
/// families (`record-*`) are served by [`DocStore::scan_prefix`] /
/// [`DocStore::count_prefix`] as ordered-map range queries.
///
/// ```
/// use safeweb_docstore::DocStore;
/// use safeweb_json::jobject;
/// use safeweb_labels::{Label, LabelSet};
///
/// let store = DocStore::new("app");
/// let labels = LabelSet::singleton(Label::conf("ecric.org.uk", "mdt/a"));
/// let rev = store.put("rec-1", jobject!{"mdt" => "a"}, labels, None)?;
/// let doc = store.get("rec-1").expect("stored");
/// assert_eq!(doc.rev(), &rev);
/// # Ok::<(), safeweb_docstore::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DocStore {
    name: String,
    inner: Arc<RwLock<Inner>>,
}

impl DocStore {
    /// Creates an empty store named `name` (names appear in replication
    /// diagnostics).
    pub fn new(name: &str) -> DocStore {
        DocStore {
            name: name.to_string(),
            inner: Arc::new(RwLock::new(Inner::default())),
        }
    }

    /// Opens (or creates) a **durable** store rooted at directory `path`.
    ///
    /// Recovery is snapshot-then-WAL: the snapshot (if any) restores the
    /// documents, sequence number and replication checkpoint in one step,
    /// then every WAL record past the snapshot's sequence is replayed in
    /// order. Replay stops cleanly at the first torn or corrupt record —
    /// the expected residue of a crash mid-append — discarding that tail.
    /// Views, prefix ranges and the changes feed are *rebuilt*, not
    /// deserialised: views re-index on [`DocStore::create_view`], prefix
    /// queries ride the ordered id map, and the feed restarts at the
    /// snapshot horizon (so [`DocStore::compacted_seq`] equals the
    /// snapshot sequence and replication checkpoints older than it full
    /// resync, exactly as after an in-memory compaction).
    ///
    /// Every subsequent [`DocStore::put`] / [`DocStore::delete`] /
    /// replication apply appends to the WAL *before* mutating memory and
    /// is durable against process death (`SIGKILL`) when it returns; see
    /// [`WalSync`] for power-loss durability. The store's name is the
    /// directory's file name.
    ///
    /// One handle graph per directory: the open takes an advisory lock
    /// (`lock` file carrying the owner pid, reclaimed automatically when
    /// that process is gone) and a second concurrent open — from this or
    /// any other process — fails with [`WalError::Locked`] rather than
    /// letting two writers interleave appends into one log. The lock is
    /// released when the last clone of the returned store drops.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on filesystem failures, [`WalError::Corrupt`] if
    /// an existing snapshot fails validation (a torn WAL tail is *not* an
    /// error), [`WalError::Locked`] if a live handle already owns the
    /// directory.
    pub fn open(path: impl AsRef<Path>) -> Result<DocStore, WalError> {
        let dir = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        wal::acquire_dir_lock(&dir)?;
        DocStore::open_locked(&dir).inspect_err(|_| {
            let _ = std::fs::remove_file(dir.join(wal::LOCK_FILE));
        })
    }

    fn open_locked(dir: &Path) -> Result<DocStore, WalError> {
        let mut inner = Inner::default();
        let mut rep_checkpoint = 0;
        if let Some(snap) = snapshot::read(dir)? {
            inner.seq = snap.seq;
            inner.compacted_seq = snap.seq;
            rep_checkpoint = snap.rep_checkpoint;
            for doc in snap.docs {
                inner.docs.insert(doc.id().to_string(), doc);
            }
        }
        let (wal, records) = Wal::open(dir)?;
        // Replayed records count toward the snapshot window: a workload
        // of short process lifetimes must still truncate its log once
        // the accumulated records cross the threshold, instead of
        // growing the WAL (and the replay time) run over run.
        let replayed = records.len();
        for record in records {
            match record {
                // Records at or below the snapshot sequence are the
                // residue of a crash between snapshot rename and WAL
                // truncation; the snapshot already covers them.
                Record::Put { seq, doc } if seq > inner.seq => {
                    let id = doc.id().to_string();
                    let rev = doc.rev().clone();
                    inner.docs.insert(id.clone(), doc);
                    inner.seq = seq;
                    inner.changes.push(Change {
                        seq,
                        id,
                        rev: Some(rev),
                    });
                }
                Record::Delete { seq, id } if seq > inner.seq => {
                    inner.docs.remove(&id);
                    inner.seq = seq;
                    inner.changes.push(Change { seq, id, rev: None });
                }
                Record::Checkpoint { rep } => rep_checkpoint = rep,
                Record::Put { .. } | Record::Delete { .. } => {}
            }
        }
        inner.maybe_compact();
        inner.durability = Some(Durability {
            wal,
            dir: dir.to_path_buf(),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            since_snapshot: replayed,
            rep_checkpoint,
            failed: None,
            snapshot_error: None,
            snapshots: Arc::new(SnapshotTask {
                write_lock: Mutex::new(0),
                handle: Mutex::new(None),
                inflight: AtomicBool::new(false),
                outcome: Mutex::new(None),
            }),
        });
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "durable".to_string());
        Ok(DocStore {
            name,
            inner: Arc::new(RwLock::new(inner)),
        })
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Wires this store's telemetry into `registry` under `prefix`
    /// (e.g. `"docstore.app"`), so a deployment can attach several
    /// stores to one registry without name collisions:
    ///
    /// * `<prefix>.put_ns` — end-to-end [`DocStore::put`] latency;
    /// * `<prefix>.wal_fsync_ns` — group-commit leader `fdatasync` cost
    ///   (durable stores under [`WalSync::Always`] only);
    /// * `<prefix>.commit_batch_size` — appends released per leader sync;
    /// * `<prefix>.seq` / `<prefix>.docs` / `<prefix>.wal_bytes` —
    ///   derived gauges over the live store.
    ///
    /// Safe to call on any clone; handles are shared, so every clone's
    /// writes land in the registry afterwards. Metric values are counts,
    /// durations and sequence numbers — no document data.
    pub fn attach_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        let put_ns = registry.histogram(&format!("{prefix}.put_ns"));
        let fsync_ns = registry.histogram(&format!("{prefix}.wal_fsync_ns"));
        let batch = registry.histogram_with(
            &format!("{prefix}.commit_batch_size"),
            Histogram::size_bounds(),
        );
        let mut inner = self.inner.write();
        inner.put_ns = put_ns;
        if let Some(d) = inner.durability.as_ref() {
            d.wal.group().set_metrics(fsync_ns, batch);
        }
        drop(inner);
        let store = self.clone();
        registry.register_derived(&format!("{prefix}.seq"), move || store.seq() as f64);
        let store = self.clone();
        registry.register_derived(&format!("{prefix}.docs"), move || store.len() as f64);
        let store = self.clone();
        registry.register_derived(&format!("{prefix}.wal_bytes"), move || {
            store.wal_len().unwrap_or(0) as f64
        });
    }

    /// The WAL flush policy of a durable store, or `None` for an
    /// in-memory store; health endpoints report it as the sync state.
    pub fn wal_sync(&self) -> Option<WalSync> {
        self.inner
            .read()
            .durability
            .as_ref()
            .map(|d| d.wal.sync_mode())
    }

    /// Whether this store persists through a write-ahead log
    /// ([`DocStore::open`]) rather than living purely in memory.
    pub fn is_durable(&self) -> bool {
        self.inner.read().durability.is_some()
    }

    /// The durable store's directory, or `None` for an in-memory store.
    pub fn path(&self) -> Option<PathBuf> {
        self.inner.read().durability.as_ref().map(|d| d.dir.clone())
    }

    /// Sets how many WAL records may accumulate before an automatic
    /// snapshot + log truncation (default [`DEFAULT_SNAPSHOT_EVERY`];
    /// 0 = only [`DocStore::snapshot_now`] snapshots). No-op for
    /// in-memory stores.
    pub fn set_snapshot_every(&self, records: usize) {
        if let Some(d) = self.inner.write().durability.as_mut() {
            d.snapshot_every = records;
        }
    }

    /// Sets the WAL flush policy (default [`WalSync::OsBuffered`]:
    /// `SIGKILL`-durable; [`WalSync::Always`] makes every acknowledged
    /// write power-loss durable — concurrent writers share one
    /// group-commit `fdatasync` rather than paying one each). No-op for
    /// in-memory stores.
    pub fn set_wal_sync(&self, sync: WalSync) {
        if let Some(d) = self.inner.write().durability.as_mut() {
            d.wal.set_sync(sync);
        }
    }

    /// Sets the WAL segment size bound: once the active segment crosses
    /// it, the segment is sealed (fsynced + renamed aside) and a fresh
    /// one starts. Snapshots delete the sealed segments they cover.
    /// Default 8 MiB; 0 disables rotation. No-op for in-memory stores.
    pub fn set_wal_segment_bytes(&self, bytes: u64) {
        if let Some(d) = self.inner.write().durability.as_mut() {
            d.wal.set_segment_bytes(bytes);
        }
    }

    /// Number of on-disk WAL segment files (sealed + active), or `None`
    /// for in-memory stores; diagnostics and rotation tests.
    pub fn wal_segments(&self) -> Option<usize> {
        self.inner
            .read()
            .durability
            .as_ref()
            .map(|d| d.wal.segments())
    }

    /// Waits for any in-flight background snapshot to finish and applies
    /// its outcome (sealed-segment pruning, or the recorded error).
    /// Automatic snapshots write on a background thread, so `wal_len`
    /// only reflects a just-triggered snapshot after this returns.
    pub fn snapshot_quiesce(&self) {
        let handle = {
            let inner = self.inner.read();
            inner.durability.as_ref().and_then(|d| {
                d.snapshots
                    .handle
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
            })
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
        if let Some(d) = self.inner.write().durability.as_mut() {
            reap_snapshot(d);
        }
    }

    /// Blocks until the group-commit sync covering `ticket` has
    /// completed; called after the store lock is released so concurrent
    /// writers batch behind one leader fsync. A sync failure is promoted
    /// to the sticky store failure — after an ambiguous fsync no further
    /// write may be acknowledged.
    fn wait_durable(&self, ticket: Option<WriteTicket>) -> Result<(), StoreError> {
        let Some(t) = ticket else {
            return Ok(());
        };
        if let Err(why) = t.group.wait_durable(t.ticket) {
            if let Some(d) = self.inner.write().durability.as_mut() {
                if d.failed.is_none() {
                    d.failed = Some(why.clone());
                }
            }
            return Err(StoreError::Io(why));
        }
        Ok(())
    }

    /// Writes a snapshot of the whole store now and truncates the WAL.
    /// Writers are blocked for the duration.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the store is in-memory or the write fails
    /// (the WAL is left intact in that case — nothing is lost).
    pub fn snapshot_now(&self) -> Result<(), StoreError> {
        self.inner.write().snapshot_locked()
    }

    /// Current WAL length in bytes (`None` for in-memory stores);
    /// diagnostics and crash-point tests.
    pub fn wal_len(&self) -> Option<u64> {
        self.inner.read().durability.as_ref().map(|d| d.wal.len())
    }

    /// The first unrecovered persistence failure, if any: a failed WAL
    /// append (fatal for writes) or the last failed snapshot (non-fatal).
    pub fn persistence_error(&self) -> Option<String> {
        let inner = self.inner.read();
        let d = inner.durability.as_ref()?;
        d.failed.clone().or_else(|| d.snapshot_error.clone())
    }

    /// Forces everything appended so far to stable storage (power-loss
    /// durability on demand, without paying [`WalSync::Always`] on every
    /// write). No-op for in-memory stores.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the sync fails.
    pub fn sync_wal(&self) -> Result<(), StoreError> {
        match self.inner.read().durability.as_ref() {
            Some(d) => d.wal.sync().map_err(|e| StoreError::Io(e.to_string())),
            None => Ok(()),
        }
    }

    /// Durably records that this replica has applied the replication
    /// stream through source sequence `checkpoint`; recovered by
    /// [`DocStore::replication_checkpoint_persisted`] after a restart.
    /// The record lands in the same WAL as the replicated writes it
    /// follows, so a recovered checkpoint never claims more than what was
    /// actually applied.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the store is in-memory or the log is
    /// unavailable (including a previous append failure — the checkpoint
    /// must not outrun lost writes).
    pub fn persist_replication_checkpoint(&self, checkpoint: u64) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        if inner.durability.is_none() {
            return Err(StoreError::Io("store is not durable".to_string()));
        }
        let ticket = inner.persist(|| wal::encode_checkpoint(checkpoint))?;
        if let Some(d) = inner.durability.as_mut() {
            d.rep_checkpoint = checkpoint;
        }
        inner.maybe_snapshot();
        drop(inner);
        // This sync also covers the replicated writes the checkpoint
        // follows in the WAL, which is why `apply_replicated` itself
        // never waits.
        self.wait_durable(ticket)
    }

    /// The durably recorded replication checkpoint (0 until one is
    /// persisted), or `None` for an in-memory store. Hand this to
    /// [`crate::ReplicationHandle::start_from`] — or just use
    /// [`crate::ReplicationHandle::start_durable`] — to resume
    /// replication after a restart without re-transferring history.
    pub fn replication_checkpoint_persisted(&self) -> Option<u64> {
        self.inner
            .read()
            .durability
            .as_ref()
            .map(|d| d.rep_checkpoint)
    }

    /// Switches read-only mode (the DMZ replica runs with `true`).
    pub fn set_read_only(&self, read_only: bool) {
        self.inner.write().read_only = read_only;
    }

    /// Whether the store rejects writes.
    pub fn is_read_only(&self) -> bool {
        self.inner.read().read_only
    }

    /// Creates or updates a document.
    ///
    /// `expected_rev` must be `None` for a fresh id and the current
    /// revision for an update (MVCC).
    ///
    /// # Errors
    ///
    /// [`StoreError::Conflict`] on revision mismatch, [`StoreError::ReadOnly`]
    /// in replica mode, [`StoreError::BadId`] for malformed ids.
    pub fn put(
        &self,
        id: &str,
        body: Value,
        labels: LabelSet,
        expected_rev: Option<&Revision>,
    ) -> Result<Revision, StoreError> {
        validate_id(id)?;
        let span_start = safeweb_obs::now_ns();
        let trace = safeweb_obs::current_trace();
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(StoreError::ReadOnly);
        }
        let put_ns = inner.put_ns.clone();
        let new_rev = match (inner.docs.get(id), expected_rev) {
            (None, None) => Revision::first(&body),
            (Some(current), Some(expected)) if current.rev() == expected => {
                current.rev().next(&body)
            }
            (current, _) => {
                return Err(StoreError::Conflict {
                    id: id.to_string(),
                    current: current.map(|d| d.rev().clone()),
                })
            }
        };
        let doc = Document::new(id.to_string(), new_rev.clone(), labels, body);
        let next_seq = inner.seq + 1;
        let ticket = inner.persist(|| wal::encode_put(next_seq, &doc))?;
        let labels_id = doc.labels().id().as_u32();
        inner.store_doc(doc);
        inner.record_change(id.to_string(), Some(new_rev.clone()));
        inner.maybe_snapshot();
        drop(inner);
        self.wait_durable(ticket)?;
        // The span carries only structure: the store's name, the interned
        // label-set id, and timing — never the document id or body.
        put_ns.observe(safeweb_obs::now_ns().saturating_sub(span_start));
        safeweb_obs::record_span("docstore", &self.name, trace, span_start, Some(labels_id));
        Ok(new_rev)
    }

    /// Deletes a document (MVCC-checked).
    ///
    /// # Errors
    ///
    /// [`StoreError::Conflict`] if the revision does not match,
    /// [`StoreError::ReadOnly`] in replica mode.
    pub fn delete(&self, id: &str, expected_rev: &Revision) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(StoreError::ReadOnly);
        }
        match inner.docs.get(id) {
            Some(doc) if doc.rev() == expected_rev => {
                let next_seq = inner.seq + 1;
                let ticket = inner.persist(|| wal::encode_delete(next_seq, id))?;
                inner.remove_doc(id);
                inner.record_change(id.to_string(), None);
                inner.maybe_snapshot();
                drop(inner);
                self.wait_durable(ticket)
            }
            other => Err(StoreError::Conflict {
                id: id.to_string(),
                current: other.map(|d| d.rev().clone()),
            }),
        }
    }

    /// Fetches a document by id.
    pub fn get(&self, id: &str) -> Option<Document> {
        self.inner.read().docs.get(id).cloned()
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.inner.read().docs.is_empty()
    }

    /// All document ids in order.
    pub fn ids(&self) -> Vec<String> {
        self.inner.read().docs.keys().cloned().collect()
    }

    /// Registers a view indexing `field` of document bodies, CouchRest's
    /// `by_<field>` idiom (the paper's Listing 2 uses `Records.by_mid`).
    ///
    /// The index over the documents already stored is built immediately;
    /// every later [`DocStore::put`] / [`DocStore::delete`] / replication
    /// write maintains it incrementally (including moving a document
    /// between buckets when the indexed field's value changes).
    pub fn create_view(&self, view: &str, field: &str) {
        let mut inner = self.inner.write();
        let mut v = View {
            field: field.to_string(),
            index: BTreeMap::new(),
        };
        for doc in inner.docs.values() {
            if let Some(key) = doc.body().get(field).and_then(index_key) {
                v.index.entry(key).or_default().insert(doc.id().to_string());
            }
        }
        inner.views.insert(view.to_string(), v);
    }

    /// Queries a view: documents whose indexed field equals `key`, in id
    /// order. An index lookup — `O(log buckets + matches)`, independent of
    /// store size.
    ///
    /// Keys containing non-finite floats never match anything (JSON
    /// cannot represent them, and `NaN` does not equal itself).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownView`] if the view was never created.
    pub fn query_view(&self, view: &str, key: &Value) -> Result<Vec<Document>, StoreError> {
        let inner = self.inner.read();
        let view = inner
            .views
            .get(view)
            .ok_or_else(|| StoreError::UnknownView(view.to_string()))?;
        let Some(ids) = index_key(key).and_then(|k| view.index.get(&k)) else {
            return Ok(Vec::new());
        };
        Ok(ids
            .iter()
            .map(|id| inner.docs.get(id).expect("view index in sync").clone())
            .collect())
    }

    /// Queries a view for documents whose indexed field falls in
    /// `range` — a walk over the ordered key index
    /// (`O(log buckets + matches)`), so `by_age.range(18..65)`-style
    /// lookups never scan the store. Results come back in ascending key
    /// order, id order within one key.
    ///
    /// Bounds compare in the index's order-preserving key encoding:
    /// numerically within `Int` keys and within
    /// finite `Float` keys, byte-lexicographically within `Str` keys.
    /// The two numeric types occupy disjoint tag ranges (as they are
    /// distinct buckets under equality too), so range ends should be the
    /// same scalar type as the indexed values. A bound that cannot be
    /// indexed (non-finite float) matches nothing, and an inverted range
    /// is empty.
    ///
    /// ```
    /// use safeweb_docstore::DocStore;
    /// use safeweb_json::{jobject, Value};
    /// use safeweb_labels::LabelSet;
    ///
    /// let store = DocStore::new("t");
    /// store.create_view("by_age", "age");
    /// for (id, age) in [("a", 17), ("b", 30), ("c", 64), ("d", 65)] {
    ///     store.put(id, jobject! {"age" => age}, LabelSet::new(), None).unwrap();
    /// }
    /// let adults = store
    ///     .query_view_range("by_age", Value::from(18)..Value::from(65))
    ///     .unwrap();
    /// let ids: Vec<&str> = adults.iter().map(|d| d.id()).collect();
    /// assert_eq!(ids, ["b", "c"]);
    /// ```
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownView`] if the view was never created.
    pub fn query_view_range<R>(&self, view: &str, range: R) -> Result<Vec<Document>, StoreError>
    where
        R: std::ops::RangeBounds<Value>,
    {
        use std::ops::Bound;
        let inner = self.inner.read();
        let view = inner
            .views
            .get(view)
            .ok_or_else(|| StoreError::UnknownView(view.to_string()))?;
        let encode = |bound: Bound<&Value>| -> Option<Bound<String>> {
            match bound {
                Bound::Unbounded => Some(Bound::Unbounded),
                Bound::Included(value) => index_key(value).map(Bound::Included),
                Bound::Excluded(value) => index_key(value).map(Bound::Excluded),
            }
        };
        let (Some(lo), Some(hi)) = (encode(range.start_bound()), encode(range.end_bound())) else {
            // A non-indexable bound (non-finite float) can match nothing.
            return Ok(Vec::new());
        };
        // `BTreeMap::range` panics on inverted ranges; they are simply
        // empty here.
        if let (
            Bound::Included(start) | Bound::Excluded(start),
            Bound::Included(end) | Bound::Excluded(end),
        ) = (&lo, &hi)
        {
            let both_excluded = matches!((&lo, &hi), (Bound::Excluded(_), Bound::Excluded(_)));
            if start > end || (start == end && both_excluded) {
                return Ok(Vec::new());
            }
        }
        let mut docs = Vec::new();
        for ids in view.index.range((lo, hi)).map(|(_, ids)| ids) {
            docs.extend(
                ids.iter()
                    .map(|id| inner.docs.get(id).expect("view index in sync").clone()),
            );
        }
        Ok(docs)
    }

    /// [`DocStore::query_view`] with a secure-by-construction view name:
    /// a compile-time literal, taint-checked string or audited declassify
    /// (see [`safeweb_safeq::TrustedLiteral`]). The key stays plain data —
    /// it is matched structurally against the index, so user input is safe
    /// there; only the *view name* selects query structure.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownView`] if the view was never created.
    pub fn query_view_trusted(
        &self,
        view: impl Into<safeweb_safeq::TrustedLiteral>,
        key: &Value,
    ) -> Result<Vec<Document>, StoreError> {
        self.query_view(view.into().as_str(), key)
    }

    /// [`DocStore::query_view_range`] with a secure-by-construction view
    /// name (see [`DocStore::query_view_trusted`]). Range bounds are data
    /// and need no trust.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownView`] if the view was never created.
    pub fn query_view_range_trusted<R>(
        &self,
        view: impl Into<safeweb_safeq::TrustedLiteral>,
        range: R,
    ) -> Result<Vec<Document>, StoreError>
    where
        R: std::ops::RangeBounds<Value>,
    {
        self.query_view_range(view.into().as_str(), range)
    }

    /// Scans all documents with a predicate over bodies. `O(n)` — prefer
    /// [`DocStore::query_view`] or [`DocStore::scan_prefix`] on hot paths.
    pub fn scan(&self, mut predicate: impl FnMut(&Document) -> bool) -> Vec<Document> {
        self.inner
            .read()
            .docs
            .values()
            .filter(|d| predicate(d))
            .cloned()
            .collect()
    }

    /// All documents whose id starts with `prefix`, in id order: a range
    /// query over the ordered id map (`O(log n + matches)`), serving id
    /// families like `record-*` without walking the whole store.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<Document> {
        self.inner
            .read()
            .docs
            .range(prefix.to_string()..)
            .take_while(|(id, _)| id.starts_with(prefix))
            .map(|(_, d)| d.clone())
            .collect()
    }

    /// Counts documents whose id starts with `prefix` without cloning them.
    pub fn count_prefix(&self, prefix: &str) -> usize {
        self.inner
            .read()
            .docs
            .range(prefix.to_string()..)
            .take_while(|(id, _)| id.starts_with(prefix))
            .count()
    }

    /// The current sequence number (grows with every write).
    pub fn seq(&self) -> u64 {
        self.inner.read().seq
    }

    /// Changes with `seq > since`, for replication. A binary search into
    /// the seq-sorted feed plus a copy of the tail.
    ///
    /// When `since` predates [`DocStore::compacted_seq`], the result is
    /// *incomplete*: compaction has dropped tombstones and superseded
    /// entries below the horizon, so callers must fall back to a full
    /// resync instead (as [`crate::Replicator::run_once`] does).
    pub fn changes_since(&self, since: u64) -> Vec<Change> {
        let inner = self.inner.read();
        let start = inner.changes.partition_point(|c| c.seq <= since);
        inner.changes[start..].to_vec()
    }

    /// The compaction horizon: change entries at or below this sequence
    /// number may have been compacted away (deletions silently so). A
    /// replication checkpoint below the horizon cannot be served
    /// incrementally.
    pub fn compacted_seq(&self) -> u64 {
        self.inner.read().compacted_seq
    }

    /// Number of entries currently held by the changes feed (diagnostics:
    /// bounded at `O(live docs + retention)` when auto-compaction is on).
    pub fn changes_len(&self) -> usize {
        self.inner.read().changes.len()
    }

    /// Sets the auto-compaction retention (default
    /// [`DEFAULT_CHANGES_RETENTION`]): the feed keeps at least this many
    /// most-recent entries verbatim and compacts everything older once the
    /// feed exceeds `live docs + 2 × retention` entries. `0` disables
    /// auto-compaction (the seed's unbounded behaviour).
    pub fn set_changes_retention(&self, retention: usize) {
        self.inner.write().changes_retention = retention;
    }

    /// Compacts the changes feed now, keeping the most recent
    /// `retain_recent` entries verbatim and one latest entry per live id
    /// below that horizon. Tombstones below the horizon are dropped —
    /// replication checkpoints older than the horizon then require a full
    /// resync.
    pub fn compact_changes(&self, retain_recent: usize) {
        let mut inner = self.inner.write();
        if inner.changes.len() <= retain_recent {
            return;
        }
        let horizon = inner.changes[inner.changes.len() - retain_recent - 1].seq;
        inner.compact_to(horizon);
    }

    /// An atomic snapshot of the store: the sequence number and every live
    /// document, taken under one read lock. Full replication resyncs use
    /// this so the checkpoint they install is consistent with the
    /// documents they copied.
    pub fn snapshot(&self) -> (u64, Vec<Document>) {
        let inner = self.inner.read();
        (inner.seq, inner.docs.values().cloned().collect())
    }

    /// Applies a replicated document directly, bypassing MVCC and the
    /// read-only switch: replication is a *trusted, internal* data path —
    /// the DMZ replica refuses writes from the web frontend but accepts
    /// pushes from the Intranet instance (Figure 4).
    pub(crate) fn apply_replicated(&self, doc: Document) {
        let mut inner = self.inner.write();
        let id = doc.id().to_string();
        let rev = doc.rev().clone();
        // A WAL failure here does not abort the apply — the replica stays
        // correct at runtime — but it MUST block the checkpoint: recovery
        // then resumes from a checkpoint predating the unlogged writes
        // and re-replicates them. `persist` only makes I/O errors sticky,
        // so force stickiness for validation refusals (oversized record)
        // too; otherwise the checkpoint would advance past a write that
        // never reached the log and the document would silently vanish on
        // restart.
        let next_seq = inner.seq + 1;
        inner.apply_persist(|| wal::encode_put(next_seq, &doc));
        inner.store_doc(doc);
        inner.record_change(id, Some(rev));
        inner.maybe_snapshot();
    }

    /// Applies a replicated deletion; returns whether a document was
    /// actually removed (so replication reports count real deletions).
    pub(crate) fn apply_replicated_delete(&self, id: &str) -> bool {
        let mut inner = self.inner.write();
        if !inner.docs.contains_key(id) {
            return false;
        }
        let next_seq = inner.seq + 1;
        inner.apply_persist(|| wal::encode_delete(next_seq, id));
        inner.remove_doc(id);
        inner.record_change(id.to_string(), None);
        inner.maybe_snapshot();
        true
    }
}

fn validate_id(id: &str) -> Result<(), StoreError> {
    if id.is_empty() || id.chars().any(|c| c.is_control()) {
        return Err(StoreError::BadId(id.to_string()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_json::jobject;
    use safeweb_labels::Label;

    fn labels(p: &str) -> LabelSet {
        LabelSet::singleton(Label::conf("e", p))
    }

    #[test]
    fn put_get_roundtrip() {
        let store = DocStore::new("t");
        let rev = store
            .put("a", jobject! {"x" => 1}, labels("p/1"), None)
            .unwrap();
        let doc = store.get("a").unwrap();
        assert_eq!(doc.rev(), &rev);
        assert_eq!(doc.body().get("x").and_then(Value::as_i64), Some(1));
        assert!(doc.labels().contains(&Label::conf("e", "p/1")));
    }

    #[test]
    fn update_requires_current_rev() {
        let store = DocStore::new("t");
        let rev1 = store
            .put("a", jobject! {"x" => 1}, LabelSet::new(), None)
            .unwrap();
        // Fresh put on existing id: conflict.
        assert!(matches!(
            store.put("a", jobject! {"x" => 2}, LabelSet::new(), None),
            Err(StoreError::Conflict { .. })
        ));
        let rev2 = store
            .put("a", jobject! {"x" => 2}, LabelSet::new(), Some(&rev1))
            .unwrap();
        assert_eq!(rev2.generation(), 2);
        // Stale rev: conflict.
        assert!(matches!(
            store.put("a", jobject! {"x" => 3}, LabelSet::new(), Some(&rev1)),
            Err(StoreError::Conflict { .. })
        ));
    }

    #[test]
    fn delete_is_mvcc_checked() {
        let store = DocStore::new("t");
        let rev = store.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let stale = Revision::first(&jobject! {"other" => 1});
        assert!(store.delete("a", &stale).is_err());
        store.delete("a", &rev).unwrap();
        assert!(store.get("a").is_none());
        assert!(store.delete("a", &rev).is_err());
    }

    #[test]
    fn read_only_blocks_external_writes() {
        let store = DocStore::new("dmz");
        store.set_read_only(true);
        assert_eq!(
            store.put("a", jobject! {}, LabelSet::new(), None),
            Err(StoreError::ReadOnly)
        );
        // Internal replication path still works.
        let doc = Document::new(
            "a".to_string(),
            Revision::first(&jobject! {}),
            LabelSet::new(),
            jobject! {},
        );
        store.apply_replicated(doc);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn views_index_body_fields() {
        let store = DocStore::new("t");
        store.create_view("by_mid", "mdt_id");
        store
            .put(
                "r1",
                jobject! {"mdt_id" => "a", "n" => 1},
                LabelSet::new(),
                None,
            )
            .unwrap();
        store
            .put(
                "r2",
                jobject! {"mdt_id" => "b", "n" => 2},
                LabelSet::new(),
                None,
            )
            .unwrap();
        store
            .put(
                "r3",
                jobject! {"mdt_id" => "a", "n" => 3},
                LabelSet::new(),
                None,
            )
            .unwrap();
        let hits = store.query_view("by_mid", &Value::from("a")).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(store.query_view("nonexistent", &Value::from("a")).is_err());
    }

    #[test]
    fn view_created_after_puts_indexes_existing_docs() {
        let store = DocStore::new("t");
        store
            .put("r1", jobject! {"kind" => "m"}, LabelSet::new(), None)
            .unwrap();
        store
            .put("r2", jobject! {"kind" => "r"}, LabelSet::new(), None)
            .unwrap();
        store.create_view("by_kind", "kind");
        let hits = store.query_view("by_kind", &Value::from("m")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id(), "r1");
    }

    #[test]
    fn view_index_follows_field_changes_and_deletes() {
        let store = DocStore::new("t");
        store.create_view("by_mid", "mdt_id");
        let rev = store
            .put("r1", jobject! {"mdt_id" => "a"}, LabelSet::new(), None)
            .unwrap();
        // Update moves the doc to another bucket.
        let rev = store
            .put(
                "r1",
                jobject! {"mdt_id" => "b"},
                LabelSet::new(),
                Some(&rev),
            )
            .unwrap();
        assert!(store
            .query_view("by_mid", &Value::from("a"))
            .unwrap()
            .is_empty());
        assert_eq!(
            store.query_view("by_mid", &Value::from("b")).unwrap().len(),
            1
        );
        // Dropping the field removes it from the index entirely.
        let rev = store
            .put("r1", jobject! {"other" => 1}, LabelSet::new(), Some(&rev))
            .unwrap();
        assert!(store
            .query_view("by_mid", &Value::from("b"))
            .unwrap()
            .is_empty());
        // Restore and delete: bucket empties again.
        let rev = store
            .put(
                "r1",
                jobject! {"mdt_id" => "b"},
                LabelSet::new(),
                Some(&rev),
            )
            .unwrap();
        store.delete("r1", &rev).unwrap();
        assert!(store
            .query_view("by_mid", &Value::from("b"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn non_finite_floats_never_match_views() {
        let store = DocStore::new("t");
        store.create_view("by_v", "v");
        store
            .put("nan", jobject! {"v" => f64::NAN}, LabelSet::new(), None)
            .unwrap();
        store
            .put(
                "inf",
                jobject! {"v" => f64::INFINITY},
                LabelSet::new(),
                None,
            )
            .unwrap();
        store
            .put("null", jobject! {"v" => Value::Null}, LabelSet::new(), None)
            .unwrap();
        // Non-finite floats serialise to JSON null; they must NOT collide
        // with each other or with a real null bucket.
        let nulls = store.query_view("by_v", &Value::Null).unwrap();
        assert_eq!(nulls.len(), 1);
        assert_eq!(nulls[0].id(), "null");
        assert!(store
            .query_view("by_v", &Value::Float(f64::NAN))
            .unwrap()
            .is_empty());
        assert!(store
            .query_view("by_v", &Value::Float(f64::INFINITY))
            .unwrap()
            .is_empty());
        // Updating a non-finite doc must not corrupt the index either.
        let rev = store.get("inf").unwrap().rev().clone();
        store
            .put("inf", jobject! {"v" => 1}, LabelSet::new(), Some(&rev))
            .unwrap();
        assert_eq!(store.query_view("by_v", &Value::from(1)).unwrap().len(), 1);
    }

    /// The order-preserving key encoding: float range results come back
    /// in numeric order across signs (with `-0.0` sharing `0.0`'s
    /// bucket, as f64 equality demands), int ranges across the `i64`
    /// extremes, and neither type's range sweeps in the other's buckets.
    #[test]
    fn range_queries_order_numerically() {
        let store = DocStore::new("t");
        store.create_view("by_v", "v");
        let floats = [-1.5e300, -2.0, -0.5, -0.0, 0.0, 0.25, 3.5, 2.5e300];
        for (i, f) in floats.iter().enumerate() {
            store
                .put(
                    &format!("f{i}"),
                    jobject! {"v" => *f},
                    LabelSet::new(),
                    None,
                )
                .unwrap();
        }
        for (id, v) in [
            ("imin", i64::MIN),
            ("ineg", -7),
            ("izero", 0),
            ("imax", i64::MAX),
        ] {
            store
                .put(id, jobject! {"v" => v}, LabelSet::new(), None)
                .unwrap();
        }

        let all_floats = store
            .query_view_range(
                "by_v",
                Value::Float(f64::NEG_INFINITY.next_up())..=Value::Float(f64::INFINITY.next_down()),
            )
            .unwrap();
        let got: Vec<f64> = all_floats
            .iter()
            .map(|d| d.body().get("v").and_then(Value::as_f64).unwrap())
            .collect();
        assert_eq!(got, floats, "floats out of numeric order");

        let negative = store
            .query_view_range("by_v", Value::Float(-3.0)..Value::Float(0.0))
            .unwrap();
        let ids: Vec<&str> = negative.iter().map(Document::id).collect();
        assert_eq!(
            ids,
            ["f1", "f2"],
            "v < 0.0 must exclude -0.0 (f64 says -0.0 == 0.0)"
        );
        let zeros = store.query_view("by_v", &Value::Float(-0.0)).unwrap();
        assert_eq!(zeros.len(), 2, "-0.0 and 0.0 share one equality bucket");

        let ints = store
            .query_view_range("by_v", Value::Int(i64::MIN)..=Value::Int(i64::MAX))
            .unwrap();
        let ids: Vec<&str> = ints.iter().map(Document::id).collect();
        assert_eq!(
            ids,
            ["imin", "ineg", "izero", "imax"],
            "ints span extremes in order"
        );
    }

    #[test]
    fn prefix_scan_is_a_range_query() {
        let store = DocStore::new("t");
        for id in ["metrics-a", "record-1", "record-2", "record-3", "zz"] {
            store.put(id, jobject! {}, LabelSet::new(), None).unwrap();
        }
        let records = store.scan_prefix("record-");
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|d| d.id().starts_with("record-")));
        assert_eq!(store.count_prefix("record-"), 3);
        assert_eq!(store.count_prefix("metrics-"), 1);
        assert_eq!(store.count_prefix("nothing-"), 0);
        // Prefix results arrive in id order.
        let ids: Vec<&str> = records.iter().map(Document::id).collect();
        assert_eq!(ids, ["record-1", "record-2", "record-3"]);
    }

    #[test]
    fn changes_feed_tracks_writes_and_deletes() {
        let store = DocStore::new("t");
        let rev = store.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        store.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        store.delete("a", &rev).unwrap();
        let all = store.changes_since(0);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].rev, None);
        let tail = store.changes_since(2);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].id, "a");
    }

    #[test]
    fn changes_since_matches_linear_filter() {
        let store = DocStore::new("t");
        for i in 0..20 {
            store
                .put(&format!("d{i}"), jobject! {}, LabelSet::new(), None)
                .unwrap();
        }
        for since in 0..=21 {
            let got = store.changes_since(since);
            let expected: Vec<Change> = store
                .changes_since(0)
                .into_iter()
                .filter(|c| c.seq > since)
                .collect();
            assert_eq!(got, expected, "since={since}");
        }
    }

    #[test]
    fn compaction_keeps_latest_entry_per_live_id() {
        let store = DocStore::new("t");
        let mut rev = store
            .put("a", jobject! {"v" => 0}, LabelSet::new(), None)
            .unwrap();
        for v in 1..10 {
            rev = store
                .put("a", jobject! {"v" => v}, LabelSet::new(), Some(&rev))
                .unwrap();
        }
        let rev_b = store.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        store.delete("b", &rev_b).unwrap();
        assert_eq!(store.changes_len(), 12);

        store.compact_changes(0);
        // One entry survives: a's latest put. b's tombstone is dropped.
        let feed = store.changes_since(0);
        assert_eq!(feed.len(), 1);
        assert_eq!(feed[0].id, "a");
        assert_eq!(feed[0].rev.as_ref(), Some(&rev));
        assert_eq!(store.compacted_seq(), 12);
        // The live data is untouched.
        assert_eq!(store.get("a").unwrap().rev(), &rev);
        assert!(store.get("b").is_none());
    }

    #[test]
    fn compaction_retains_recent_tail_verbatim() {
        let store = DocStore::new("t");
        for i in 0..10 {
            store
                .put(&format!("d{i}"), jobject! {}, LabelSet::new(), None)
                .unwrap();
        }
        store.compact_changes(4);
        assert_eq!(store.compacted_seq(), 6);
        // The last four entries are untouched; the rest keep one entry per
        // live id (all ten docs are live, so nothing is actually dropped).
        assert_eq!(store.changes_len(), 10);
        let tail = store.changes_since(6);
        assert_eq!(tail.len(), 4);
        assert_eq!(tail[0].seq, 7);
    }

    #[test]
    fn auto_compaction_bounds_feed_under_sustained_writes() {
        let store = DocStore::new("t");
        store.set_changes_retention(16);
        let mut rev = store
            .put("hot", jobject! {"v" => 0}, LabelSet::new(), None)
            .unwrap();
        for v in 1..500 {
            rev = store
                .put("hot", jobject! {"v" => v}, LabelSet::new(), Some(&rev))
                .unwrap();
        }
        // One live doc + retention 16: the feed must stay near 1 + 2*16,
        // not grow to 500.
        assert!(
            store.changes_len() <= 1 + 2 * 16,
            "feed unbounded: {} entries",
            store.changes_len()
        );
        assert_eq!(store.seq(), 500);
        // Churn through distinct ids: tombstones must not accumulate.
        for i in 0..500 {
            let id = format!("tmp-{i}");
            let r = store.put(&id, jobject! {}, LabelSet::new(), None).unwrap();
            store.delete(&id, &r).unwrap();
        }
        assert!(
            store.changes_len() <= 1 + 2 * 16,
            "tombstones accumulated: {} entries",
            store.changes_len()
        );
    }

    #[test]
    fn bad_ids_rejected() {
        let store = DocStore::new("t");
        assert!(store.put("", jobject! {}, LabelSet::new(), None).is_err());
        assert!(store
            .put("a\nb", jobject! {}, LabelSet::new(), None)
            .is_err());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "safeweb-docstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_store_survives_reopen() {
        let dir = temp_dir("reopen");
        {
            let store = DocStore::open(&dir).unwrap();
            assert!(store.is_durable());
            assert_eq!(store.path(), Some(dir.clone()));
            let rev = store
                .put("a", jobject! {"x" => 1}, labels("p/1"), None)
                .unwrap();
            store
                .put("a", jobject! {"x" => 2}, labels("p/2"), Some(&rev))
                .unwrap();
            let rev_b = store.put("b", jobject! {}, LabelSet::new(), None).unwrap();
            store.delete("b", &rev_b).unwrap();
        }
        let store = DocStore::open(&dir).unwrap();
        assert_eq!(store.name(), dir.file_name().unwrap().to_str().unwrap());
        assert_eq!(store.len(), 1);
        assert_eq!(store.seq(), 4);
        let doc = store.get("a").unwrap();
        assert_eq!(doc.body().get("x").and_then(Value::as_i64), Some(2));
        assert_eq!(doc.rev().generation(), 2);
        assert!(doc.labels().contains(&Label::conf("e", "p/2")));
        assert!(store.get("b").is_none());
        // Views are rebuilt, not deserialised.
        store.create_view("by_x", "x");
        assert_eq!(store.query_view("by_x", &Value::from(2)).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_wal_and_recovers_identically() {
        let dir = temp_dir("snapshot");
        {
            let store = DocStore::open(&dir).unwrap();
            for i in 0..10 {
                store
                    .put(&format!("d{i}"), jobject! {"i" => i}, labels("p"), None)
                    .unwrap();
            }
            assert!(store.wal_len().unwrap() > 0);
            store.snapshot_now().unwrap();
            assert_eq!(store.wal_len(), Some(0));
            // Writes after the snapshot land in the (fresh) WAL.
            store
                .put("post", jobject! {}, LabelSet::new(), None)
                .unwrap();
            assert!(store.wal_len().unwrap() > 0);
        }
        let store = DocStore::open(&dir).unwrap();
        assert_eq!(store.len(), 11);
        assert_eq!(store.seq(), 11);
        assert_eq!(
            store
                .get("d7")
                .unwrap()
                .body()
                .get("i")
                .and_then(Value::as_i64),
            Some(7)
        );
        // The feed restarts at the snapshot horizon: checkpoints below it
        // resync, checkpoints at or past it are served incrementally.
        assert_eq!(store.compacted_seq(), 10);
        assert_eq!(store.changes_since(10).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_snapshot_fires_on_record_count() {
        let dir = temp_dir("auto-snap");
        let store = DocStore::open(&dir).unwrap();
        store.set_snapshot_every(8);
        for i in 0..20 {
            store
                .put(&format!("d{i}"), jobject! {}, LabelSet::new(), None)
                .unwrap();
            // Snapshots write in the background; quiescing each write
            // keeps the snapshot points deterministic (at records 8, 16).
            store.snapshot_quiesce();
        }
        // 20 appends with a window of 8: two snapshots happened, so the
        // WAL holds well under 8 records' worth of bytes.
        assert!(store.wal_len().unwrap() < 8 * 64);
        drop(store);
        let store = DocStore::open(&dir).unwrap();
        assert_eq!(store.len(), 20);
        assert_eq!(store.seq(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replication_checkpoint_roundtrips() {
        let dir = temp_dir("ckpt");
        {
            let store = DocStore::open(&dir).unwrap();
            assert_eq!(store.replication_checkpoint_persisted(), Some(0));
            store.persist_replication_checkpoint(7).unwrap();
            store.persist_replication_checkpoint(42).unwrap();
        }
        {
            let store = DocStore::open(&dir).unwrap();
            assert_eq!(store.replication_checkpoint_persisted(), Some(42));
            // Survives a snapshot cycle too (carried in the meta frame).
            store.snapshot_now().unwrap();
        }
        let store = DocStore::open(&dir).unwrap();
        assert_eq!(store.replication_checkpoint_persisted(), Some(42));
        // In-memory stores have no checkpoint to persist.
        assert_eq!(DocStore::new("m").replication_checkpoint_persisted(), None);
        assert!(DocStore::new("m")
            .persist_replication_checkpoint(1)
            .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An oversized record is refused at append (writing it would make
    /// the *next* recovery silently truncate it and everything after it
    /// away) — and the refusal is a clean per-write error, not a sticky
    /// store failure.
    #[test]
    fn oversized_put_refused_without_wedging_the_store() {
        let dir = temp_dir("oversize");
        let store = DocStore::open(&dir).unwrap();
        let huge = "x".repeat(64 * 1024 * 1024 + 16);
        assert!(matches!(
            store.put(
                "big",
                jobject! {"v" => huge.as_str()},
                LabelSet::new(),
                None
            ),
            Err(StoreError::Io(_))
        ));
        assert!(store.get("big").is_none(), "refused write must not apply");
        // Not sticky: normal writes keep working and recovering.
        store.put("ok", jobject! {}, LabelSet::new(), None).unwrap();
        assert!(store.persistence_error().is_none());
        drop(store);
        let store = DocStore::open(&dir).unwrap();
        assert_eq!(store.ids(), vec!["ok".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A second concurrent open of the same directory must be refused —
    /// two writers interleaving appends would corrupt the WAL — while a
    /// lock left behind by a dead process (SIGKILL) is reclaimed.
    #[test]
    fn directory_lock_refuses_second_open_and_reclaims_stale() {
        let dir = temp_dir("lock");
        let store = DocStore::open(&dir).unwrap();
        assert!(matches!(
            DocStore::open(&dir),
            Err(WalError::Locked { pid: Some(_), .. })
        ));
        // A clone keeps the lock alive; only the last drop releases it.
        let clone = store.clone();
        drop(store);
        assert!(matches!(DocStore::open(&dir), Err(WalError::Locked { .. })));
        drop(clone);
        let store = DocStore::open(&dir).unwrap();
        drop(store);
        // Stale lock from a process that no longer exists: reclaimed.
        std::fs::write(dir.join("lock"), "4294967294").unwrap();
        let store = DocStore::open(&dir).unwrap();
        store.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Records replayed at open count toward the snapshot window, so a
    /// workload of short process lifetimes still truncates its log once
    /// the threshold is crossed instead of growing it run over run.
    #[test]
    fn replayed_records_count_toward_auto_snapshot() {
        let dir = temp_dir("replay-window");
        {
            let store = DocStore::open(&dir).unwrap();
            for i in 0..10 {
                store
                    .put(&format!("d{i}"), jobject! {}, LabelSet::new(), None)
                    .unwrap();
            }
        } // 10 records in the log, no snapshot yet
        let store = DocStore::open(&dir).unwrap();
        let replayed_len = store.wal_len().unwrap();
        assert!(replayed_len > 0);
        store.set_snapshot_every(8);
        // The next write sees 10 replayed + 1 ≥ 8 and snapshots, leaving
        // a WAL far smaller than the replayed backlog.
        store
            .put("next", jobject! {}, LabelSet::new(), None)
            .unwrap();
        store.snapshot_quiesce();
        assert!(
            store.wal_len().unwrap() < replayed_len,
            "WAL kept growing across restarts: {} -> {}",
            replayed_len,
            store.wal_len().unwrap()
        );
        drop(store);
        let store = DocStore::open(&dir).unwrap();
        assert_eq!(store.len(), 11);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_is_discarded_and_appends_resume() {
        let dir = temp_dir("torn");
        {
            let store = DocStore::open(&dir).unwrap();
            store.put("a", jobject! {}, LabelSet::new(), None).unwrap();
            store.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the last frame.
        let wal = dir.join(wal::ACTIVE_SEGMENT);
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
        let store = DocStore::open(&dir).unwrap();
        assert_eq!(store.ids(), vec!["a".to_string()]);
        assert_eq!(store.seq(), 1);
        // The tail was truncated away; new writes recover cleanly.
        store.put("c", jobject! {}, LabelSet::new(), None).unwrap();
        drop(store);
        let store = DocStore::open(&dir).unwrap();
        assert_eq!(store.ids(), vec!["a".to_string(), "c".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
