//! The document store: MVCC puts, incrementally indexed views, a
//! compacting changes feed, and a read-only mode for DMZ replicas (§5.1:
//! "The DMZ instance is read-only in order to prevent modifications by the
//! web frontend, thus satisfying requirement S1").

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use safeweb_json::Value;
use safeweb_labels::LabelSet;

use crate::document::{Document, Revision};

/// Default bound on the verbatim tail of the changes feed: once more than
/// twice this many entries pile up beyond one per live document, the feed
/// is compacted down to the latest entry per id plus this many recent
/// entries. See [`DocStore::set_changes_retention`].
pub const DEFAULT_CHANGES_RETENTION: usize = 1024;

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The supplied revision does not match the current one (concurrent
    /// update).
    Conflict {
        /// The id of the conflicting document.
        id: String,
        /// The revision currently stored.
        current: Option<Revision>,
    },
    /// The store is in read-only (DMZ replica) mode.
    ReadOnly,
    /// No view registered under this name.
    UnknownView(String),
    /// The document id is empty or contains control characters.
    BadId(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Conflict { id, current } => match current {
                Some(rev) => write!(f, "document conflict on {id:?} (current rev {rev})"),
                None => write!(f, "document conflict on {id:?} (deleted or never existed)"),
            },
            StoreError::ReadOnly => write!(f, "store is read-only"),
            StoreError::UnknownView(v) => write!(f, "unknown view {v:?}"),
            StoreError::BadId(id) => write!(f, "invalid document id {id:?}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One entry in the changes feed.
#[derive(Debug, Clone, PartialEq)]
pub struct Change {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The changed document id.
    pub id: String,
    /// The revision after the change (`None` = deletion).
    pub rev: Option<Revision>,
}

/// A registered view: the indexed body field plus the index itself,
/// maintained incrementally on every write. Index keys are the
/// deterministic JSON encoding of the field value (objects serialise with
/// sorted keys), so equal values always collide on the same bucket.
#[derive(Debug, Default)]
struct View {
    field: String,
    index: BTreeMap<String, BTreeSet<String>>,
}

#[derive(Debug)]
struct Inner {
    docs: BTreeMap<String, Document>,
    seq: u64,
    /// Strictly seq-ascending, so lookups can binary-search.
    changes: Vec<Change>,
    /// Horizon of the last compaction: entries with `seq <=
    /// compacted_seq` have been reduced to one latest entry per live id,
    /// and delete tombstones below it are gone.
    compacted_seq: u64,
    /// Auto-compaction threshold (0 = never compact automatically).
    changes_retention: usize,
    views: BTreeMap<String, View>,
    read_only: bool,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            docs: BTreeMap::new(),
            seq: 0,
            changes: Vec::new(),
            compacted_seq: 0,
            changes_retention: DEFAULT_CHANGES_RETENTION,
            views: BTreeMap::new(),
            read_only: false,
        }
    }
}

/// The index key for a field value, or `None` when the value cannot be
/// indexed faithfully: non-finite floats serialise to JSON `null`, so
/// keying them by [`Value::to_json`] would make `NaN`/`Infinity` collide
/// with each other and with real `null`s. Such values are simply never
/// indexed (and never matched) — `NaN` does not even equal itself, so the
/// seed's equality scan never matched it either.
fn index_key(value: &Value) -> Option<String> {
    fn finite(value: &Value) -> bool {
        match value {
            Value::Float(f) => f.is_finite(),
            Value::Array(items) => items.iter().all(finite),
            Value::Object(map) => map.values().all(finite),
            _ => true,
        }
    }
    finite(value).then(|| value.to_json())
}

fn index_doc(views: &mut BTreeMap<String, View>, doc: &Document) {
    for view in views.values_mut() {
        if let Some(key) = doc.body().get(&view.field).and_then(index_key) {
            view.index
                .entry(key)
                .or_default()
                .insert(doc.id().to_string());
        }
    }
}

fn unindex_doc(views: &mut BTreeMap<String, View>, doc: &Document) {
    for view in views.values_mut() {
        if let Some(key) = doc.body().get(&view.field).and_then(index_key) {
            if let Some(ids) = view.index.get_mut(&key) {
                ids.remove(doc.id());
                if ids.is_empty() {
                    view.index.remove(&key);
                }
            }
        }
    }
}

impl Inner {
    /// Replaces (or inserts) `doc`, keeping every view index in sync —
    /// including re-indexing when the indexed field's value changed.
    fn store_doc(&mut self, doc: Document) {
        if let Some(old) = self.docs.get(doc.id()) {
            unindex_doc(&mut self.views, old);
        }
        index_doc(&mut self.views, &doc);
        self.docs.insert(doc.id().to_string(), doc);
    }

    fn remove_doc(&mut self, id: &str) -> Option<Document> {
        let doc = self.docs.remove(id)?;
        unindex_doc(&mut self.views, &doc);
        Some(doc)
    }

    fn record_change(&mut self, id: String, rev: Option<Revision>) {
        self.seq += 1;
        self.changes.push(Change {
            seq: self.seq,
            id,
            rev,
        });
        self.maybe_compact();
    }

    /// Auto-compaction: amortised so the feed stays at `O(live docs +
    /// retention)` entries while each write pays `O(live/retention)`.
    fn maybe_compact(&mut self) {
        let retention = self.changes_retention;
        if retention == 0 || self.changes.len() < self.docs.len() + 2 * retention {
            return;
        }
        let horizon = self.changes[self.changes.len() - retention - 1].seq;
        self.compact_to(horizon);
    }

    /// Compacts every entry with `seq <= horizon` down to the latest entry
    /// per still-live id. Tombstones and superseded revisions below the
    /// horizon are dropped; a replication checkpoint below `compacted_seq`
    /// can therefore no longer be served incrementally and must full-resync
    /// ([`crate::Replicator`] does this automatically).
    fn compact_to(&mut self, horizon: u64) {
        let cut = self.changes.partition_point(|c| c.seq <= horizon);
        self.compacted_seq = self.compacted_seq.max(horizon);
        if cut == 0 {
            return;
        }
        let suffix = self.changes.split_off(cut);
        let prefix = std::mem::take(&mut self.changes);
        // An id "seen" at a higher seq supersedes every earlier entry.
        let mut seen: HashSet<String> = suffix.iter().map(|c| c.id.clone()).collect();
        let mut kept: Vec<Change> = Vec::new();
        for change in prefix.into_iter().rev() {
            let newest = seen.insert(change.id.clone());
            if newest && change.rev.is_some() && self.docs.contains_key(&change.id) {
                kept.push(change);
            }
        }
        kept.reverse();
        self.changes = kept;
        self.changes.extend(suffix);
    }
}

/// A CouchDB-style document database. Cheap to clone (shared state).
///
/// Views are *incrementally indexed*: [`DocStore::create_view`] builds a
/// `field value → document ids` index which every subsequent write keeps
/// current, so [`DocStore::query_view`] is a lookup, not a scan. Id-prefix
/// families (`record-*`) are served by [`DocStore::scan_prefix`] /
/// [`DocStore::count_prefix`] as ordered-map range queries.
///
/// ```
/// use safeweb_docstore::DocStore;
/// use safeweb_json::jobject;
/// use safeweb_labels::{Label, LabelSet};
///
/// let store = DocStore::new("app");
/// let labels = LabelSet::singleton(Label::conf("ecric.org.uk", "mdt/a"));
/// let rev = store.put("rec-1", jobject!{"mdt" => "a"}, labels, None)?;
/// let doc = store.get("rec-1").expect("stored");
/// assert_eq!(doc.rev(), &rev);
/// # Ok::<(), safeweb_docstore::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DocStore {
    name: String,
    inner: Arc<RwLock<Inner>>,
}

impl DocStore {
    /// Creates an empty store named `name` (names appear in replication
    /// diagnostics).
    pub fn new(name: &str) -> DocStore {
        DocStore {
            name: name.to_string(),
            inner: Arc::new(RwLock::new(Inner::default())),
        }
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Switches read-only mode (the DMZ replica runs with `true`).
    pub fn set_read_only(&self, read_only: bool) {
        self.inner.write().read_only = read_only;
    }

    /// Whether the store rejects writes.
    pub fn is_read_only(&self) -> bool {
        self.inner.read().read_only
    }

    /// Creates or updates a document.
    ///
    /// `expected_rev` must be `None` for a fresh id and the current
    /// revision for an update (MVCC).
    ///
    /// # Errors
    ///
    /// [`StoreError::Conflict`] on revision mismatch, [`StoreError::ReadOnly`]
    /// in replica mode, [`StoreError::BadId`] for malformed ids.
    pub fn put(
        &self,
        id: &str,
        body: Value,
        labels: LabelSet,
        expected_rev: Option<&Revision>,
    ) -> Result<Revision, StoreError> {
        validate_id(id)?;
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(StoreError::ReadOnly);
        }
        let new_rev = match (inner.docs.get(id), expected_rev) {
            (None, None) => Revision::first(&body),
            (Some(current), Some(expected)) if current.rev() == expected => {
                current.rev().next(&body)
            }
            (current, _) => {
                return Err(StoreError::Conflict {
                    id: id.to_string(),
                    current: current.map(|d| d.rev().clone()),
                })
            }
        };
        let doc = Document::new(id.to_string(), new_rev.clone(), labels, body);
        inner.store_doc(doc);
        inner.record_change(id.to_string(), Some(new_rev.clone()));
        Ok(new_rev)
    }

    /// Deletes a document (MVCC-checked).
    ///
    /// # Errors
    ///
    /// [`StoreError::Conflict`] if the revision does not match,
    /// [`StoreError::ReadOnly`] in replica mode.
    pub fn delete(&self, id: &str, expected_rev: &Revision) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(StoreError::ReadOnly);
        }
        match inner.docs.get(id) {
            Some(doc) if doc.rev() == expected_rev => {
                inner.remove_doc(id);
                inner.record_change(id.to_string(), None);
                Ok(())
            }
            other => Err(StoreError::Conflict {
                id: id.to_string(),
                current: other.map(|d| d.rev().clone()),
            }),
        }
    }

    /// Fetches a document by id.
    pub fn get(&self, id: &str) -> Option<Document> {
        self.inner.read().docs.get(id).cloned()
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.inner.read().docs.is_empty()
    }

    /// All document ids in order.
    pub fn ids(&self) -> Vec<String> {
        self.inner.read().docs.keys().cloned().collect()
    }

    /// Registers a view indexing `field` of document bodies, CouchRest's
    /// `by_<field>` idiom (the paper's Listing 2 uses `Records.by_mid`).
    ///
    /// The index over the documents already stored is built immediately;
    /// every later [`DocStore::put`] / [`DocStore::delete`] / replication
    /// write maintains it incrementally (including moving a document
    /// between buckets when the indexed field's value changes).
    pub fn create_view(&self, view: &str, field: &str) {
        let mut inner = self.inner.write();
        let mut v = View {
            field: field.to_string(),
            index: BTreeMap::new(),
        };
        for doc in inner.docs.values() {
            if let Some(key) = doc.body().get(field).and_then(index_key) {
                v.index.entry(key).or_default().insert(doc.id().to_string());
            }
        }
        inner.views.insert(view.to_string(), v);
    }

    /// Queries a view: documents whose indexed field equals `key`, in id
    /// order. An index lookup — `O(log buckets + matches)`, independent of
    /// store size.
    ///
    /// Keys containing non-finite floats never match anything (JSON
    /// cannot represent them, and `NaN` does not equal itself).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownView`] if the view was never created.
    pub fn query_view(&self, view: &str, key: &Value) -> Result<Vec<Document>, StoreError> {
        let inner = self.inner.read();
        let view = inner
            .views
            .get(view)
            .ok_or_else(|| StoreError::UnknownView(view.to_string()))?;
        let Some(ids) = index_key(key).and_then(|k| view.index.get(&k)) else {
            return Ok(Vec::new());
        };
        Ok(ids
            .iter()
            .map(|id| inner.docs.get(id).expect("view index in sync").clone())
            .collect())
    }

    /// Scans all documents with a predicate over bodies. `O(n)` — prefer
    /// [`DocStore::query_view`] or [`DocStore::scan_prefix`] on hot paths.
    pub fn scan(&self, mut predicate: impl FnMut(&Document) -> bool) -> Vec<Document> {
        self.inner
            .read()
            .docs
            .values()
            .filter(|d| predicate(d))
            .cloned()
            .collect()
    }

    /// All documents whose id starts with `prefix`, in id order: a range
    /// query over the ordered id map (`O(log n + matches)`), serving id
    /// families like `record-*` without walking the whole store.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<Document> {
        self.inner
            .read()
            .docs
            .range(prefix.to_string()..)
            .take_while(|(id, _)| id.starts_with(prefix))
            .map(|(_, d)| d.clone())
            .collect()
    }

    /// Counts documents whose id starts with `prefix` without cloning them.
    pub fn count_prefix(&self, prefix: &str) -> usize {
        self.inner
            .read()
            .docs
            .range(prefix.to_string()..)
            .take_while(|(id, _)| id.starts_with(prefix))
            .count()
    }

    /// The current sequence number (grows with every write).
    pub fn seq(&self) -> u64 {
        self.inner.read().seq
    }

    /// Changes with `seq > since`, for replication. A binary search into
    /// the seq-sorted feed plus a copy of the tail.
    ///
    /// When `since` predates [`DocStore::compacted_seq`], the result is
    /// *incomplete*: compaction has dropped tombstones and superseded
    /// entries below the horizon, so callers must fall back to a full
    /// resync instead (as [`crate::Replicator::run_once`] does).
    pub fn changes_since(&self, since: u64) -> Vec<Change> {
        let inner = self.inner.read();
        let start = inner.changes.partition_point(|c| c.seq <= since);
        inner.changes[start..].to_vec()
    }

    /// The compaction horizon: change entries at or below this sequence
    /// number may have been compacted away (deletions silently so). A
    /// replication checkpoint below the horizon cannot be served
    /// incrementally.
    pub fn compacted_seq(&self) -> u64 {
        self.inner.read().compacted_seq
    }

    /// Number of entries currently held by the changes feed (diagnostics:
    /// bounded at `O(live docs + retention)` when auto-compaction is on).
    pub fn changes_len(&self) -> usize {
        self.inner.read().changes.len()
    }

    /// Sets the auto-compaction retention (default
    /// [`DEFAULT_CHANGES_RETENTION`]): the feed keeps at least this many
    /// most-recent entries verbatim and compacts everything older once the
    /// feed exceeds `live docs + 2 × retention` entries. `0` disables
    /// auto-compaction (the seed's unbounded behaviour).
    pub fn set_changes_retention(&self, retention: usize) {
        self.inner.write().changes_retention = retention;
    }

    /// Compacts the changes feed now, keeping the most recent
    /// `retain_recent` entries verbatim and one latest entry per live id
    /// below that horizon. Tombstones below the horizon are dropped —
    /// replication checkpoints older than the horizon then require a full
    /// resync.
    pub fn compact_changes(&self, retain_recent: usize) {
        let mut inner = self.inner.write();
        if inner.changes.len() <= retain_recent {
            return;
        }
        let horizon = inner.changes[inner.changes.len() - retain_recent - 1].seq;
        inner.compact_to(horizon);
    }

    /// An atomic snapshot of the store: the sequence number and every live
    /// document, taken under one read lock. Full replication resyncs use
    /// this so the checkpoint they install is consistent with the
    /// documents they copied.
    pub fn snapshot(&self) -> (u64, Vec<Document>) {
        let inner = self.inner.read();
        (inner.seq, inner.docs.values().cloned().collect())
    }

    /// Applies a replicated document directly, bypassing MVCC and the
    /// read-only switch: replication is a *trusted, internal* data path —
    /// the DMZ replica refuses writes from the web frontend but accepts
    /// pushes from the Intranet instance (Figure 4).
    pub(crate) fn apply_replicated(&self, doc: Document) {
        let mut inner = self.inner.write();
        let id = doc.id().to_string();
        let rev = doc.rev().clone();
        inner.store_doc(doc);
        inner.record_change(id, Some(rev));
    }

    /// Applies a replicated deletion; returns whether a document was
    /// actually removed (so replication reports count real deletions).
    pub(crate) fn apply_replicated_delete(&self, id: &str) -> bool {
        let mut inner = self.inner.write();
        if inner.remove_doc(id).is_some() {
            inner.record_change(id.to_string(), None);
            true
        } else {
            false
        }
    }
}

fn validate_id(id: &str) -> Result<(), StoreError> {
    if id.is_empty() || id.chars().any(|c| c.is_control()) {
        return Err(StoreError::BadId(id.to_string()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_json::jobject;
    use safeweb_labels::Label;

    fn labels(p: &str) -> LabelSet {
        LabelSet::singleton(Label::conf("e", p))
    }

    #[test]
    fn put_get_roundtrip() {
        let store = DocStore::new("t");
        let rev = store
            .put("a", jobject! {"x" => 1}, labels("p/1"), None)
            .unwrap();
        let doc = store.get("a").unwrap();
        assert_eq!(doc.rev(), &rev);
        assert_eq!(doc.body().get("x").and_then(Value::as_i64), Some(1));
        assert!(doc.labels().contains(&Label::conf("e", "p/1")));
    }

    #[test]
    fn update_requires_current_rev() {
        let store = DocStore::new("t");
        let rev1 = store
            .put("a", jobject! {"x" => 1}, LabelSet::new(), None)
            .unwrap();
        // Fresh put on existing id: conflict.
        assert!(matches!(
            store.put("a", jobject! {"x" => 2}, LabelSet::new(), None),
            Err(StoreError::Conflict { .. })
        ));
        let rev2 = store
            .put("a", jobject! {"x" => 2}, LabelSet::new(), Some(&rev1))
            .unwrap();
        assert_eq!(rev2.generation(), 2);
        // Stale rev: conflict.
        assert!(matches!(
            store.put("a", jobject! {"x" => 3}, LabelSet::new(), Some(&rev1)),
            Err(StoreError::Conflict { .. })
        ));
    }

    #[test]
    fn delete_is_mvcc_checked() {
        let store = DocStore::new("t");
        let rev = store.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let stale = Revision::first(&jobject! {"other" => 1});
        assert!(store.delete("a", &stale).is_err());
        store.delete("a", &rev).unwrap();
        assert!(store.get("a").is_none());
        assert!(store.delete("a", &rev).is_err());
    }

    #[test]
    fn read_only_blocks_external_writes() {
        let store = DocStore::new("dmz");
        store.set_read_only(true);
        assert_eq!(
            store.put("a", jobject! {}, LabelSet::new(), None),
            Err(StoreError::ReadOnly)
        );
        // Internal replication path still works.
        let doc = Document::new(
            "a".to_string(),
            Revision::first(&jobject! {}),
            LabelSet::new(),
            jobject! {},
        );
        store.apply_replicated(doc);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn views_index_body_fields() {
        let store = DocStore::new("t");
        store.create_view("by_mid", "mdt_id");
        store
            .put(
                "r1",
                jobject! {"mdt_id" => "a", "n" => 1},
                LabelSet::new(),
                None,
            )
            .unwrap();
        store
            .put(
                "r2",
                jobject! {"mdt_id" => "b", "n" => 2},
                LabelSet::new(),
                None,
            )
            .unwrap();
        store
            .put(
                "r3",
                jobject! {"mdt_id" => "a", "n" => 3},
                LabelSet::new(),
                None,
            )
            .unwrap();
        let hits = store.query_view("by_mid", &Value::from("a")).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(store.query_view("nonexistent", &Value::from("a")).is_err());
    }

    #[test]
    fn view_created_after_puts_indexes_existing_docs() {
        let store = DocStore::new("t");
        store
            .put("r1", jobject! {"kind" => "m"}, LabelSet::new(), None)
            .unwrap();
        store
            .put("r2", jobject! {"kind" => "r"}, LabelSet::new(), None)
            .unwrap();
        store.create_view("by_kind", "kind");
        let hits = store.query_view("by_kind", &Value::from("m")).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id(), "r1");
    }

    #[test]
    fn view_index_follows_field_changes_and_deletes() {
        let store = DocStore::new("t");
        store.create_view("by_mid", "mdt_id");
        let rev = store
            .put("r1", jobject! {"mdt_id" => "a"}, LabelSet::new(), None)
            .unwrap();
        // Update moves the doc to another bucket.
        let rev = store
            .put(
                "r1",
                jobject! {"mdt_id" => "b"},
                LabelSet::new(),
                Some(&rev),
            )
            .unwrap();
        assert!(store
            .query_view("by_mid", &Value::from("a"))
            .unwrap()
            .is_empty());
        assert_eq!(
            store.query_view("by_mid", &Value::from("b")).unwrap().len(),
            1
        );
        // Dropping the field removes it from the index entirely.
        let rev = store
            .put("r1", jobject! {"other" => 1}, LabelSet::new(), Some(&rev))
            .unwrap();
        assert!(store
            .query_view("by_mid", &Value::from("b"))
            .unwrap()
            .is_empty());
        // Restore and delete: bucket empties again.
        let rev = store
            .put(
                "r1",
                jobject! {"mdt_id" => "b"},
                LabelSet::new(),
                Some(&rev),
            )
            .unwrap();
        store.delete("r1", &rev).unwrap();
        assert!(store
            .query_view("by_mid", &Value::from("b"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn non_finite_floats_never_match_views() {
        let store = DocStore::new("t");
        store.create_view("by_v", "v");
        store
            .put("nan", jobject! {"v" => f64::NAN}, LabelSet::new(), None)
            .unwrap();
        store
            .put(
                "inf",
                jobject! {"v" => f64::INFINITY},
                LabelSet::new(),
                None,
            )
            .unwrap();
        store
            .put("null", jobject! {"v" => Value::Null}, LabelSet::new(), None)
            .unwrap();
        // Non-finite floats serialise to JSON null; they must NOT collide
        // with each other or with a real null bucket.
        let nulls = store.query_view("by_v", &Value::Null).unwrap();
        assert_eq!(nulls.len(), 1);
        assert_eq!(nulls[0].id(), "null");
        assert!(store
            .query_view("by_v", &Value::Float(f64::NAN))
            .unwrap()
            .is_empty());
        assert!(store
            .query_view("by_v", &Value::Float(f64::INFINITY))
            .unwrap()
            .is_empty());
        // Updating a non-finite doc must not corrupt the index either.
        let rev = store.get("inf").unwrap().rev().clone();
        store
            .put("inf", jobject! {"v" => 1}, LabelSet::new(), Some(&rev))
            .unwrap();
        assert_eq!(store.query_view("by_v", &Value::from(1)).unwrap().len(), 1);
    }

    #[test]
    fn prefix_scan_is_a_range_query() {
        let store = DocStore::new("t");
        for id in ["metrics-a", "record-1", "record-2", "record-3", "zz"] {
            store.put(id, jobject! {}, LabelSet::new(), None).unwrap();
        }
        let records = store.scan_prefix("record-");
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|d| d.id().starts_with("record-")));
        assert_eq!(store.count_prefix("record-"), 3);
        assert_eq!(store.count_prefix("metrics-"), 1);
        assert_eq!(store.count_prefix("nothing-"), 0);
        // Prefix results arrive in id order.
        let ids: Vec<&str> = records.iter().map(Document::id).collect();
        assert_eq!(ids, ["record-1", "record-2", "record-3"]);
    }

    #[test]
    fn changes_feed_tracks_writes_and_deletes() {
        let store = DocStore::new("t");
        let rev = store.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        store.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        store.delete("a", &rev).unwrap();
        let all = store.changes_since(0);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].rev, None);
        let tail = store.changes_since(2);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].id, "a");
    }

    #[test]
    fn changes_since_matches_linear_filter() {
        let store = DocStore::new("t");
        for i in 0..20 {
            store
                .put(&format!("d{i}"), jobject! {}, LabelSet::new(), None)
                .unwrap();
        }
        for since in 0..=21 {
            let got = store.changes_since(since);
            let expected: Vec<Change> = store
                .changes_since(0)
                .into_iter()
                .filter(|c| c.seq > since)
                .collect();
            assert_eq!(got, expected, "since={since}");
        }
    }

    #[test]
    fn compaction_keeps_latest_entry_per_live_id() {
        let store = DocStore::new("t");
        let mut rev = store
            .put("a", jobject! {"v" => 0}, LabelSet::new(), None)
            .unwrap();
        for v in 1..10 {
            rev = store
                .put("a", jobject! {"v" => v}, LabelSet::new(), Some(&rev))
                .unwrap();
        }
        let rev_b = store.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        store.delete("b", &rev_b).unwrap();
        assert_eq!(store.changes_len(), 12);

        store.compact_changes(0);
        // One entry survives: a's latest put. b's tombstone is dropped.
        let feed = store.changes_since(0);
        assert_eq!(feed.len(), 1);
        assert_eq!(feed[0].id, "a");
        assert_eq!(feed[0].rev.as_ref(), Some(&rev));
        assert_eq!(store.compacted_seq(), 12);
        // The live data is untouched.
        assert_eq!(store.get("a").unwrap().rev(), &rev);
        assert!(store.get("b").is_none());
    }

    #[test]
    fn compaction_retains_recent_tail_verbatim() {
        let store = DocStore::new("t");
        for i in 0..10 {
            store
                .put(&format!("d{i}"), jobject! {}, LabelSet::new(), None)
                .unwrap();
        }
        store.compact_changes(4);
        assert_eq!(store.compacted_seq(), 6);
        // The last four entries are untouched; the rest keep one entry per
        // live id (all ten docs are live, so nothing is actually dropped).
        assert_eq!(store.changes_len(), 10);
        let tail = store.changes_since(6);
        assert_eq!(tail.len(), 4);
        assert_eq!(tail[0].seq, 7);
    }

    #[test]
    fn auto_compaction_bounds_feed_under_sustained_writes() {
        let store = DocStore::new("t");
        store.set_changes_retention(16);
        let mut rev = store
            .put("hot", jobject! {"v" => 0}, LabelSet::new(), None)
            .unwrap();
        for v in 1..500 {
            rev = store
                .put("hot", jobject! {"v" => v}, LabelSet::new(), Some(&rev))
                .unwrap();
        }
        // One live doc + retention 16: the feed must stay near 1 + 2*16,
        // not grow to 500.
        assert!(
            store.changes_len() <= 1 + 2 * 16,
            "feed unbounded: {} entries",
            store.changes_len()
        );
        assert_eq!(store.seq(), 500);
        // Churn through distinct ids: tombstones must not accumulate.
        for i in 0..500 {
            let id = format!("tmp-{i}");
            let r = store.put(&id, jobject! {}, LabelSet::new(), None).unwrap();
            store.delete(&id, &r).unwrap();
        }
        assert!(
            store.changes_len() <= 1 + 2 * 16,
            "tombstones accumulated: {} entries",
            store.changes_len()
        );
    }

    #[test]
    fn bad_ids_rejected() {
        let store = DocStore::new("t");
        assert!(store.put("", jobject! {}, LabelSet::new(), None).is_err());
        assert!(store
            .put("a\nb", jobject! {}, LabelSet::new(), None)
            .is_err());
    }
}
