//! The document store: MVCC puts, by-key views, a changes feed, and a
//! read-only mode for DMZ replicas (§5.1: "The DMZ instance is read-only
//! in order to prevent modifications by the web frontend, thus satisfying
//! requirement S1").

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use safeweb_json::Value;
use safeweb_labels::LabelSet;

use crate::document::{Document, Revision};

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The supplied revision does not match the current one (concurrent
    /// update).
    Conflict {
        /// The id of the conflicting document.
        id: String,
        /// The revision currently stored.
        current: Option<Revision>,
    },
    /// The store is in read-only (DMZ replica) mode.
    ReadOnly,
    /// No view registered under this name.
    UnknownView(String),
    /// The document id is empty or contains control characters.
    BadId(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Conflict { id, current } => match current {
                Some(rev) => write!(f, "document conflict on {id:?} (current rev {rev})"),
                None => write!(f, "document conflict on {id:?} (deleted or never existed)"),
            },
            StoreError::ReadOnly => write!(f, "store is read-only"),
            StoreError::UnknownView(v) => write!(f, "unknown view {v:?}"),
            StoreError::BadId(id) => write!(f, "invalid document id {id:?}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One entry in the changes feed.
#[derive(Debug, Clone, PartialEq)]
pub struct Change {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The changed document id.
    pub id: String,
    /// The revision after the change (`None` = deletion).
    pub rev: Option<Revision>,
}

#[derive(Debug, Default)]
struct Inner {
    docs: BTreeMap<String, Document>,
    seq: u64,
    changes: Vec<Change>,
    /// view name → body field the view indexes.
    views: BTreeMap<String, String>,
    read_only: bool,
}

/// A CouchDB-style document database. Cheap to clone (shared state).
///
/// ```
/// use safeweb_docstore::DocStore;
/// use safeweb_json::jobject;
/// use safeweb_labels::{Label, LabelSet};
///
/// let store = DocStore::new("app");
/// let labels = LabelSet::singleton(Label::conf("ecric.org.uk", "mdt/a"));
/// let rev = store.put("rec-1", jobject!{"mdt" => "a"}, labels, None)?;
/// let doc = store.get("rec-1").expect("stored");
/// assert_eq!(doc.rev(), &rev);
/// # Ok::<(), safeweb_docstore::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DocStore {
    name: String,
    inner: Arc<RwLock<Inner>>,
}

impl DocStore {
    /// Creates an empty store named `name` (names appear in replication
    /// diagnostics).
    pub fn new(name: &str) -> DocStore {
        DocStore {
            name: name.to_string(),
            inner: Arc::new(RwLock::new(Inner::default())),
        }
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Switches read-only mode (the DMZ replica runs with `true`).
    pub fn set_read_only(&self, read_only: bool) {
        self.inner.write().read_only = read_only;
    }

    /// Whether the store rejects writes.
    pub fn is_read_only(&self) -> bool {
        self.inner.read().read_only
    }

    /// Creates or updates a document.
    ///
    /// `expected_rev` must be `None` for a fresh id and the current
    /// revision for an update (MVCC).
    ///
    /// # Errors
    ///
    /// [`StoreError::Conflict`] on revision mismatch, [`StoreError::ReadOnly`]
    /// in replica mode, [`StoreError::BadId`] for malformed ids.
    pub fn put(
        &self,
        id: &str,
        body: Value,
        labels: LabelSet,
        expected_rev: Option<&Revision>,
    ) -> Result<Revision, StoreError> {
        validate_id(id)?;
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(StoreError::ReadOnly);
        }
        let new_rev = match (inner.docs.get(id), expected_rev) {
            (None, None) => Revision::first(&body),
            (Some(current), Some(expected)) if current.rev() == expected => {
                current.rev().next(&body)
            }
            (current, _) => {
                return Err(StoreError::Conflict {
                    id: id.to_string(),
                    current: current.map(|d| d.rev().clone()),
                })
            }
        };
        let doc = Document::new(id.to_string(), new_rev.clone(), labels, body);
        inner.docs.insert(id.to_string(), doc);
        inner.seq += 1;
        let change = Change {
            seq: inner.seq,
            id: id.to_string(),
            rev: Some(new_rev.clone()),
        };
        inner.changes.push(change);
        Ok(new_rev)
    }

    /// Deletes a document (MVCC-checked).
    ///
    /// # Errors
    ///
    /// [`StoreError::Conflict`] if the revision does not match,
    /// [`StoreError::ReadOnly`] in replica mode.
    pub fn delete(&self, id: &str, expected_rev: &Revision) -> Result<(), StoreError> {
        let mut inner = self.inner.write();
        if inner.read_only {
            return Err(StoreError::ReadOnly);
        }
        match inner.docs.get(id) {
            Some(doc) if doc.rev() == expected_rev => {
                inner.docs.remove(id);
                inner.seq += 1;
                let change = Change {
                    seq: inner.seq,
                    id: id.to_string(),
                    rev: None,
                };
                inner.changes.push(change);
                Ok(())
            }
            other => Err(StoreError::Conflict {
                id: id.to_string(),
                current: other.map(|d| d.rev().clone()),
            }),
        }
    }

    /// Fetches a document by id.
    pub fn get(&self, id: &str) -> Option<Document> {
        self.inner.read().docs.get(id).cloned()
    }

    /// Number of live documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.inner.read().docs.is_empty()
    }

    /// All document ids in order.
    pub fn ids(&self) -> Vec<String> {
        self.inner.read().docs.keys().cloned().collect()
    }

    /// Registers a view indexing `field` of document bodies, CouchRest's
    /// `by_<field>` idiom (the paper's Listing 2 uses `Records.by_mid`).
    pub fn create_view(&self, view: &str, field: &str) {
        self.inner
            .write()
            .views
            .insert(view.to_string(), field.to_string());
    }

    /// Queries a view: documents whose indexed field equals `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownView`] if the view was never created.
    pub fn query_view(&self, view: &str, key: &Value) -> Result<Vec<Document>, StoreError> {
        let inner = self.inner.read();
        let field = inner
            .views
            .get(view)
            .ok_or_else(|| StoreError::UnknownView(view.to_string()))?;
        Ok(inner
            .docs
            .values()
            .filter(|d| d.body().get(field) == Some(key))
            .cloned()
            .collect())
    }

    /// Scans all documents with a predicate over bodies.
    pub fn scan(&self, mut predicate: impl FnMut(&Document) -> bool) -> Vec<Document> {
        self.inner
            .read()
            .docs
            .values()
            .filter(|d| predicate(d))
            .cloned()
            .collect()
    }

    /// The current sequence number (grows with every write).
    pub fn seq(&self) -> u64 {
        self.inner.read().seq
    }

    /// Changes with `seq > since`, for replication.
    pub fn changes_since(&self, since: u64) -> Vec<Change> {
        self.inner
            .read()
            .changes
            .iter()
            .filter(|c| c.seq > since)
            .cloned()
            .collect()
    }

    /// Applies a replicated document directly, bypassing MVCC and the
    /// read-only switch: replication is a *trusted, internal* data path —
    /// the DMZ replica refuses writes from the web frontend but accepts
    /// pushes from the Intranet instance (Figure 4).
    pub(crate) fn apply_replicated(&self, doc: Document) {
        let mut inner = self.inner.write();
        let id = doc.id().to_string();
        let rev = doc.rev().clone();
        inner.docs.insert(id.clone(), doc);
        inner.seq += 1;
        let change = Change {
            seq: inner.seq,
            id,
            rev: Some(rev),
        };
        inner.changes.push(change);
    }

    /// Applies a replicated deletion.
    pub(crate) fn apply_replicated_delete(&self, id: &str) {
        let mut inner = self.inner.write();
        if inner.docs.remove(id).is_some() {
            inner.seq += 1;
            let change = Change {
                seq: inner.seq,
                id: id.to_string(),
                rev: None,
            };
            inner.changes.push(change);
        }
    }
}

fn validate_id(id: &str) -> Result<(), StoreError> {
    if id.is_empty() || id.chars().any(|c| c.is_control()) {
        return Err(StoreError::BadId(id.to_string()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_json::jobject;
    use safeweb_labels::Label;

    fn labels(p: &str) -> LabelSet {
        LabelSet::singleton(Label::conf("e", p))
    }

    #[test]
    fn put_get_roundtrip() {
        let store = DocStore::new("t");
        let rev = store
            .put("a", jobject! {"x" => 1}, labels("p/1"), None)
            .unwrap();
        let doc = store.get("a").unwrap();
        assert_eq!(doc.rev(), &rev);
        assert_eq!(doc.body().get("x").and_then(Value::as_i64), Some(1));
        assert!(doc.labels().contains(&Label::conf("e", "p/1")));
    }

    #[test]
    fn update_requires_current_rev() {
        let store = DocStore::new("t");
        let rev1 = store
            .put("a", jobject! {"x" => 1}, LabelSet::new(), None)
            .unwrap();
        // Fresh put on existing id: conflict.
        assert!(matches!(
            store.put("a", jobject! {"x" => 2}, LabelSet::new(), None),
            Err(StoreError::Conflict { .. })
        ));
        let rev2 = store
            .put("a", jobject! {"x" => 2}, LabelSet::new(), Some(&rev1))
            .unwrap();
        assert_eq!(rev2.generation(), 2);
        // Stale rev: conflict.
        assert!(matches!(
            store.put("a", jobject! {"x" => 3}, LabelSet::new(), Some(&rev1)),
            Err(StoreError::Conflict { .. })
        ));
    }

    #[test]
    fn delete_is_mvcc_checked() {
        let store = DocStore::new("t");
        let rev = store.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        let stale = Revision::first(&jobject! {"other" => 1});
        assert!(store.delete("a", &stale).is_err());
        store.delete("a", &rev).unwrap();
        assert!(store.get("a").is_none());
        assert!(store.delete("a", &rev).is_err());
    }

    #[test]
    fn read_only_blocks_external_writes() {
        let store = DocStore::new("dmz");
        store.set_read_only(true);
        assert_eq!(
            store.put("a", jobject! {}, LabelSet::new(), None),
            Err(StoreError::ReadOnly)
        );
        // Internal replication path still works.
        let doc = Document::new(
            "a".to_string(),
            Revision::first(&jobject! {}),
            LabelSet::new(),
            jobject! {},
        );
        store.apply_replicated(doc);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn views_index_body_fields() {
        let store = DocStore::new("t");
        store.create_view("by_mid", "mdt_id");
        store
            .put(
                "r1",
                jobject! {"mdt_id" => "a", "n" => 1},
                LabelSet::new(),
                None,
            )
            .unwrap();
        store
            .put(
                "r2",
                jobject! {"mdt_id" => "b", "n" => 2},
                LabelSet::new(),
                None,
            )
            .unwrap();
        store
            .put(
                "r3",
                jobject! {"mdt_id" => "a", "n" => 3},
                LabelSet::new(),
                None,
            )
            .unwrap();
        let hits = store.query_view("by_mid", &Value::from("a")).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(store.query_view("nonexistent", &Value::from("a")).is_err());
    }

    #[test]
    fn changes_feed_tracks_writes_and_deletes() {
        let store = DocStore::new("t");
        let rev = store.put("a", jobject! {}, LabelSet::new(), None).unwrap();
        store.put("b", jobject! {}, LabelSet::new(), None).unwrap();
        store.delete("a", &rev).unwrap();
        let all = store.changes_since(0);
        assert_eq!(all.len(), 3);
        assert_eq!(all[2].rev, None);
        let tail = store.changes_since(2);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].id, "a");
    }

    #[test]
    fn bad_ids_rejected() {
        let store = DocStore::new("t");
        assert!(store.put("", jobject! {}, LabelSet::new(), None).is_err());
        assert!(store
            .put("a\nb", jobject! {}, LabelSet::new(), None)
            .is_err());
    }
}
