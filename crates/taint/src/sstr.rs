//! Labelled strings: the workhorse of the frontend taint-tracking library.
//!
//! The paper redefines Ruby's `String` methods (aliasing `+` to a
//! label-propagating `nconcat`, §4.4) so that every operation carries
//! labels along. Rust cannot monkey-patch `str`, so the equivalent is a
//! wrapper type whose entire method surface propagates labels; the
//! framework hands application code [`SStr`] values, and the application's
//! "non-malicious" obligation (§3.2) is simply to keep computing with them.

use std::fmt;
use std::ops::Add;

use safeweb_labels::{Label, LabelSet, PrivilegeSet};
use safeweb_regex::Regex;

/// A string carrying confidentiality/integrity labels and the Ruby-style
/// *user taint* bit (set on data that arrived from a web user and not yet
/// sanitised — the XSS/SQLI mechanism of §4.4).
///
/// ```
/// use safeweb_taint::SStr;
/// use safeweb_labels::Label;
///
/// let name = SStr::labelled("A. Patient", [Label::conf("ecric.org.uk", "patient/1")]);
/// let greeting = SStr::public("Dear ") + &name;
/// assert!(greeting.labels().contains(&Label::conf("ecric.org.uk", "patient/1")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SStr {
    value: String,
    // An interned handle: most derived strings carry exactly their parent's
    // labels, and with hash-consed sets that is a plain pointer copy;
    // unions short-circuit on identical ids, empty operands and subsets.
    // (The paper's implementation points out efficiency of label
    // propagation as a design goal, §1.)
    labels: LabelSet,
    user_tainted: bool,
}

impl SStr {
    /// A public (unlabelled) string.
    pub fn public(value: impl Into<String>) -> SStr {
        SStr {
            value: value.into(),
            labels: LabelSet::new(),
            user_tainted: false,
        }
    }

    /// A string labelled with the given labels.
    pub fn labelled(value: impl Into<String>, labels: impl IntoIterator<Item = Label>) -> SStr {
        SStr {
            value: value.into(),
            labels: labels.into_iter().collect(),
            user_tainted: false,
        }
    }

    /// A string with an existing label set (an interned handle — attaching
    /// it costs one pointer copy).
    pub fn with_label_set(value: impl Into<String>, labels: LabelSet) -> SStr {
        SStr {
            value: value.into(),
            labels,
            user_tainted: false,
        }
    }

    /// A string that arrived from a web user: marked user-tainted, like
    /// Ruby's `taint` (§4.4).
    pub fn from_user(value: impl Into<String>) -> SStr {
        SStr {
            value: value.into(),
            labels: LabelSet::new(),
            user_tainted: true,
        }
    }

    /// The raw value. This is **inspection**, not release: returning data
    /// to a client must go through [`SStr::check_release`].
    pub fn as_str(&self) -> &str {
        &self.value
    }

    /// The labels attached to this string.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Whether the string is user-tainted (unsanitised user input).
    pub fn is_user_tainted(&self) -> bool {
        self.user_tainted
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Attaches an additional label (always permitted — data may freely
    /// become more restricted).
    pub fn add_label(&mut self, label: Label) {
        self.labels.insert(label);
    }

    /// Builder-style [`SStr::add_label`].
    pub fn with_label(mut self, label: Label) -> SStr {
        self.add_label(label);
        self
    }

    fn derive(&self, value: String, others: &[&SStr]) -> SStr {
        let mut labels = self.labels;
        let mut tainted = self.user_tainted;
        for o in others {
            labels = labels.union(&o.labels);
            tainted |= o.user_tainted;
        }
        SStr {
            value,
            labels,
            user_tainted: tainted,
        }
    }

    /// Concatenation, propagating both operands' labels (the paper's
    /// `nconcat`).
    pub fn concat(&self, other: &SStr) -> SStr {
        self.derive(format!("{}{}", self.value, other.value), &[other])
    }

    /// Appends another labelled string in place.
    pub fn push_sstr(&mut self, other: &SStr) {
        self.value.push_str(&other.value);
        self.labels = self.labels.union(&other.labels);
        self.user_tainted |= other.user_tainted;
    }

    /// Appends a public literal in place.
    pub fn push_str(&mut self, literal: &str) {
        self.value.push_str(literal);
    }

    /// Concatenates many labelled pieces.
    pub fn concat_all<'a, I: IntoIterator<Item = &'a SStr>>(pieces: I) -> SStr {
        let mut out = SStr::public("");
        for p in pieces {
            out.push_sstr(p);
        }
        out
    }

    /// Joins pieces with a public separator.
    pub fn join<'a, I: IntoIterator<Item = &'a SStr>>(pieces: I, sep: &str) -> SStr {
        let mut out = SStr::public("");
        for (i, p) in pieces.into_iter().enumerate() {
            if i > 0 {
                out.push_str(sep);
            }
            out.push_sstr(p);
        }
        out
    }

    /// Byte-range substring (panics on non-boundary indices, like `str`).
    pub fn slice(&self, start: usize, end: usize) -> SStr {
        self.derive(self.value[start..end].to_string(), &[])
    }

    /// Splits on a literal separator; every piece keeps the labels.
    pub fn split(&self, sep: &str) -> Vec<SStr> {
        self.value
            .split(sep)
            .map(|p| self.derive(p.to_string(), &[]))
            .collect()
    }

    /// Replaces all occurrences of `from` with a labelled replacement,
    /// combining labels of both.
    pub fn replace(&self, from: &str, to: &SStr) -> SStr {
        self.derive(self.value.replace(from, &to.value), &[to])
    }

    /// Uppercase copy, keeping labels.
    pub fn to_uppercase(&self) -> SStr {
        self.derive(self.value.to_uppercase(), &[])
    }

    /// Lowercase copy, keeping labels.
    pub fn to_lowercase(&self) -> SStr {
        self.derive(self.value.to_lowercase(), &[])
    }

    /// Whitespace-trimmed copy, keeping labels.
    pub fn trim(&self) -> SStr {
        self.derive(self.value.trim().to_string(), &[])
    }

    /// Whether the value contains a literal substring (inspection only;
    /// the boolean itself is not tracked — see §3.2 on accepting implicit-
    /// flow false negatives for non-malicious code).
    pub fn contains(&self, needle: &str) -> bool {
        self.value.contains(needle)
    }

    /// Whether the value starts with a literal prefix.
    pub fn starts_with(&self, prefix: &str) -> bool {
        self.value.starts_with(prefix)
    }

    /// Regex match with labelled captures: the SafeWeb equivalent of
    /// Rubinius's taint-tracked `$~`/`$1` (§4.4). Every capture carries the
    /// subject's labels.
    pub fn regex_captures(&self, regex: &Regex) -> Option<SCaptures> {
        let caps = regex.captures(&self.value)?;
        let groups = caps
            .iter()
            .map(|m| m.map(|m| self.derive(m.as_str().to_string(), &[])))
            .collect();
        Some(SCaptures { groups })
    }

    /// Whether the regex matches (inspection only).
    pub fn regex_is_match(&self, regex: &Regex) -> bool {
        regex.is_match(&self.value)
    }

    /// Regex replacement with label combination: the result carries the
    /// subject's labels plus the replacement's.
    pub fn regex_replace_all(&self, regex: &Regex, replacement: &SStr) -> SStr {
        self.derive(
            regex.replace_all(&self.value, &replacement.value),
            &[replacement],
        )
    }

    /// HTML-escapes the value and clears the user-taint bit: the sanitiser
    /// that makes user input safe for HTML responses.
    pub fn sanitize_html(&self) -> SStr {
        let mut out = String::with_capacity(self.value.len());
        for c in self.value.chars() {
            match c {
                '&' => out.push_str("&amp;"),
                '<' => out.push_str("&lt;"),
                '>' => out.push_str("&gt;"),
                '"' => out.push_str("&quot;"),
                '\'' => out.push_str("&#39;"),
                other => out.push(other),
            }
        }
        SStr {
            value: out,
            labels: self.labels,
            user_tainted: false,
        }
    }

    /// SQL-escapes the value (doubling single quotes) and clears the
    /// user-taint bit: the sanitiser for SQL-ish queries.
    pub fn sanitize_sql(&self) -> SStr {
        SStr {
            value: self.value.replace('\'', "''"),
            labels: self.labels,
            user_tainted: false,
        }
    }

    /// The boundary check (§4.4 step 4): releases the raw string only if
    /// `privileges` covers every confidentiality label.
    ///
    /// # Errors
    ///
    /// Returns [`ReleaseError`] naming the blocking labels; the caller
    /// (the web frontend) turns this into an aborted response.
    pub fn check_release(&self, privileges: &PrivilegeSet) -> Result<&str, ReleaseError> {
        // Fast path: one memoised id-pair lookup, no allocation. The
        // blocking labels are only materialised to explain a denial.
        if self.labels.flows_to(privileges) {
            Ok(&self.value)
        } else {
            Err(ReleaseError {
                blocking: self.labels.blocking_labels(privileges),
            })
        }
    }

    /// Parses the value as a labelled integer, keeping labels.
    pub fn parse_snum(&self) -> Option<crate::snum::SNum> {
        let n: i64 = self.value.trim().parse().ok()?;
        Some(crate::snum::SNum::with_label_set(n, self.labels))
    }
}

/// Labelled regex captures; see [`SStr::regex_captures`].
#[derive(Debug, Clone)]
pub struct SCaptures {
    groups: Vec<Option<SStr>>,
}

impl SCaptures {
    /// The `i`-th group (0 = whole match), labelled like the subject.
    pub fn get(&self, i: usize) -> Option<&SStr> {
        self.groups.get(i)?.as_ref()
    }

    /// Number of groups including group 0.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Captures always include group 0.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Error from [`SStr::check_release`]: the response carried labels the
/// requesting user lacks clearance for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseError {
    blocking: Vec<Label>,
}

impl ReleaseError {
    /// The labels that blocked the release.
    pub fn blocking(&self) -> &[Label] {
        &self.blocking
    }
}

impl fmt::Display for ReleaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.blocking.iter().map(|l| l.to_string()).collect();
        write!(f, "release blocked by labels: {}", names.join(", "))
    }
}

impl std::error::Error for ReleaseError {}

impl Add<&SStr> for SStr {
    type Output = SStr;

    /// `a + &b` concatenates with label propagation — the paper's aliased
    /// `String#+`.
    fn add(self, rhs: &SStr) -> SStr {
        self.concat(rhs)
    }
}

impl Add<&str> for SStr {
    type Output = SStr;

    /// Concatenation with a public literal.
    fn add(mut self, rhs: &str) -> SStr {
        self.push_str(rhs);
        self
    }
}

impl From<&str> for SStr {
    fn from(s: &str) -> SStr {
        SStr::public(s)
    }
}

impl From<String> for SStr {
    fn from(s: String) -> SStr {
        SStr::public(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_labels::Privilege;

    fn patient() -> Label {
        Label::conf("e", "patient/1")
    }

    fn mdt() -> Label {
        Label::conf("e", "mdt/a")
    }

    #[test]
    fn concat_unions_labels() {
        let a = SStr::labelled("a", [patient()]);
        let b = SStr::labelled("b", [mdt()]);
        let c = a.concat(&b);
        assert_eq!(c.as_str(), "ab");
        assert!(c.labels().contains(&patient()));
        assert!(c.labels().contains(&mdt()));
    }

    #[test]
    fn operator_add_propagates() {
        let c = SStr::labelled("a", [patient()]) + &SStr::public("b") + "lit";
        assert_eq!(c.as_str(), "ablit");
        assert!(c.labels().contains(&patient()));
    }

    #[test]
    fn derived_ops_keep_labels() {
        let s = SStr::labelled("  Secret Report  ", [patient()]);
        for derived in [
            s.trim(),
            s.to_uppercase(),
            s.to_lowercase(),
            s.slice(2, 8),
            s.replace("Secret", &SStr::public("X")),
        ] {
            assert!(derived.labels().contains(&patient()), "{derived:?}");
        }
        for piece in s.split(" ") {
            assert!(piece.labels().contains(&patient()));
        }
    }

    #[test]
    fn replace_adds_replacement_labels() {
        let s = SStr::labelled("hello NAME", [patient()]);
        let name = SStr::labelled("Bob", [mdt()]);
        let out = s.replace("NAME", &name);
        assert_eq!(out.as_str(), "hello Bob");
        assert!(out.labels().contains(&patient()));
        assert!(out.labels().contains(&mdt()));
    }

    #[test]
    fn regex_captures_are_labelled() {
        let s = SStr::labelled("id=12345", [patient()]);
        let re = Regex::new(r"id=(\d+)").unwrap();
        let caps = s.regex_captures(&re).unwrap();
        let id = caps.get(1).unwrap();
        assert_eq!(id.as_str(), "12345");
        assert!(id.labels().contains(&patient()));
    }

    #[test]
    fn release_check_enforces_clearance() {
        let s = SStr::labelled("secret", [patient()]);
        assert!(s.check_release(&PrivilegeSet::new()).is_err());
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::clearance(patient()));
        assert_eq!(s.check_release(&privs).unwrap(), "secret");
    }

    #[test]
    fn release_error_names_blocking_labels() {
        let s = SStr::labelled("x", [patient(), mdt()]);
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::clearance(patient()));
        let err = s.check_release(&privs).unwrap_err();
        assert_eq!(err.blocking(), &[mdt()]);
    }

    #[test]
    fn user_taint_propagates_and_sanitizers_clear_it() {
        let user = SStr::from_user("<script>alert(1)</script>");
        assert!(user.is_user_tainted());
        let combined = SStr::public("Hello ") + &user;
        assert!(combined.is_user_tainted());
        let safe = combined.sanitize_html();
        assert!(!safe.is_user_tainted());
        assert!(safe.as_str().contains("&lt;script&gt;"));
        // Labels survive sanitisation.
        let labelled_user = SStr::from_user("x'y").with_label(patient());
        let sql = labelled_user.sanitize_sql();
        assert!(!sql.is_user_tainted());
        assert_eq!(sql.as_str(), "x''y");
        assert!(sql.labels().contains(&patient()));
    }

    #[test]
    fn join_and_concat_all() {
        let parts = [
            SStr::labelled("a", [patient()]),
            SStr::labelled("b", [mdt()]),
        ];
        let joined = SStr::join(parts.iter(), ", ");
        assert_eq!(joined.as_str(), "a, b");
        assert!(joined.labels().contains(&patient()));
        assert!(joined.labels().contains(&mdt()));
        let cat = SStr::concat_all(parts.iter());
        assert_eq!(cat.as_str(), "ab");
    }

    #[test]
    fn parse_snum_keeps_labels() {
        let s = SStr::labelled(" 42 ", [patient()]);
        let n = s.parse_snum().unwrap();
        assert_eq!(n.value(), 42);
        assert!(n.labels().contains(&patient()));
        assert!(SStr::public("abc").parse_snum().is_none());
    }
}
