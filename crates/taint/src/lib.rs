//! # safeweb-taint
//!
//! SafeWeb's variable-level taint-tracking library for the web frontend
//! (§4.4, Figure 3). In the paper this redefines Ruby's `String` and
//! `Numeric` classes so that every operation propagates security labels;
//! in Rust the same observable semantics come from wrapper types whose
//! whole method surface propagates labels:
//!
//! * [`SStr`] — labelled strings (concatenation, slicing, regex with
//!   labelled captures, sanitisers, ...),
//! * [`SNum`] — labelled integers with label-combining arithmetic,
//! * [`SValue`] — labelled JSON documents fetched from the application
//!   database, whose field accesses yield labelled scalars.
//!
//! Two independent mechanisms ride on the same types, as in the paper:
//!
//! 1. **security labels** for end-to-end confidentiality — checked at the
//!    HTTP boundary with [`SStr::check_release`];
//! 2. the **user-taint bit** (Ruby's `taint`) marking unsanitised user
//!    input for XSS/SQLI defence — cleared by [`SStr::sanitize_html`] /
//!    [`SStr::sanitize_sql`].
//!
//! ```
//! use safeweb_labels::{Label, Privilege, PrivilegeSet};
//! use safeweb_taint::SStr;
//!
//! let record = SStr::labelled("histology: ...", [Label::conf("ecric.org.uk", "mdt/a")]);
//! let page = SStr::public("<td>") + &record + "</td>";
//!
//! // The treating MDT may see the page; others are blocked.
//! let mut mdt_a = PrivilegeSet::new();
//! mdt_a.grant(Privilege::clearance(Label::conf("ecric.org.uk", "mdt/a")));
//! assert!(page.check_release(&mdt_a).is_ok());
//! assert!(page.check_release(&PrivilegeSet::new()).is_err());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod snum;
mod sstr;
mod svalue;

pub use snum::SNum;
pub use sstr::{ReleaseError, SCaptures, SStr};
pub use svalue::SValue;
