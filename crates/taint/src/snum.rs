//! Labelled numbers: the paper's taint-tracking library also redefines
//! Ruby's `Numeric` subclasses (§4.4).

use std::ops::{Add, Div, Mul, Sub};

use safeweb_labels::{Label, LabelSet, PrivilegeSet};

use crate::sstr::{ReleaseError, SStr};

/// A labelled 64-bit integer. Arithmetic between labelled numbers unions
/// their labels, mirroring [`SStr`] concatenation.
///
/// ```
/// use safeweb_taint::SNum;
/// use safeweb_labels::Label;
///
/// let a = SNum::labelled(40, [Label::conf("e", "mdt/a")]);
/// let b = SNum::labelled(2, [Label::conf("e", "mdt/b")]);
/// let c = a + b;
/// assert_eq!(c.value(), 42);
/// assert_eq!(c.labels().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SNum {
    value: i64,
    labels: LabelSet,
}

impl SNum {
    /// A public (unlabelled) number.
    pub fn public(value: i64) -> SNum {
        SNum {
            value,
            labels: LabelSet::new(),
        }
    }

    /// A labelled number.
    pub fn labelled(value: i64, labels: impl IntoIterator<Item = Label>) -> SNum {
        SNum {
            value,
            labels: labels.into_iter().collect(),
        }
    }

    /// A number with an existing label set.
    pub fn with_label_set(value: i64, labels: LabelSet) -> SNum {
        SNum { value, labels }
    }

    /// The raw value (inspection, not release).
    pub fn value(&self) -> i64 {
        self.value
    }

    /// The labels attached.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Attaches an extra label.
    pub fn with_label(mut self, label: Label) -> SNum {
        self.labels.insert(label);
        self
    }

    fn combine(&self, value: i64, other: &SNum) -> SNum {
        SNum {
            value,
            labels: self.labels.union(&other.labels),
        }
    }

    /// Converts to a labelled string (e.g. for template interpolation).
    pub fn to_sstr(&self) -> SStr {
        SStr::with_label_set(self.value.to_string(), self.labels)
    }

    /// Boundary check, like [`SStr::check_release`].
    ///
    /// # Errors
    ///
    /// Returns [`ReleaseError`] naming the blocking labels.
    pub fn check_release(&self, privileges: &PrivilegeSet) -> Result<i64, ReleaseError> {
        self.to_sstr().check_release(privileges)?;
        Ok(self.value)
    }

    /// Checked division: `None` on division by zero, labels still combined.
    pub fn checked_div(&self, rhs: &SNum) -> Option<SNum> {
        self.value
            .checked_div(rhs.value)
            .map(|v| self.combine(v, rhs))
    }
}

impl Add for SNum {
    type Output = SNum;

    fn add(self, rhs: SNum) -> SNum {
        self.combine(self.value.wrapping_add(rhs.value), &rhs)
    }
}

impl Sub for SNum {
    type Output = SNum;

    fn sub(self, rhs: SNum) -> SNum {
        self.combine(self.value.wrapping_sub(rhs.value), &rhs)
    }
}

impl Mul for SNum {
    type Output = SNum;

    fn mul(self, rhs: SNum) -> SNum {
        self.combine(self.value.wrapping_mul(rhs.value), &rhs)
    }
}

impl Div for SNum {
    type Output = SNum;

    /// # Panics
    ///
    /// Panics on division by zero, like `i64`; use [`SNum::checked_div`]
    /// for a fallible alternative.
    fn div(self, rhs: SNum) -> SNum {
        self.combine(self.value / rhs.value, &rhs)
    }
}

impl From<i64> for SNum {
    fn from(v: i64) -> SNum {
        SNum::public(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_labels::Privilege;

    fn l(p: &str) -> Label {
        Label::conf("e", p)
    }

    #[test]
    fn arithmetic_unions_labels() {
        let a = SNum::labelled(10, [l("a")]);
        let b = SNum::labelled(4, [l("b")]);
        assert_eq!((a.clone() + b.clone()).value(), 14);
        assert_eq!((a.clone() - b.clone()).value(), 6);
        assert_eq!((a.clone() * b.clone()).value(), 40);
        assert_eq!((a.clone() / b.clone()).value(), 2);
        for op in [
            a.clone() + b.clone(),
            a.clone() - b.clone(),
            a.clone() * b.clone(),
            a / b,
        ] {
            assert!(op.labels().contains(&l("a")));
            assert!(op.labels().contains(&l("b")));
        }
    }

    #[test]
    fn checked_div_by_zero() {
        let a = SNum::labelled(10, [l("a")]);
        assert!(a.checked_div(&SNum::public(0)).is_none());
        assert_eq!(a.checked_div(&SNum::public(2)).unwrap().value(), 5);
    }

    #[test]
    fn to_sstr_carries_labels() {
        let n = SNum::labelled(7, [l("a")]);
        let s = n.to_sstr();
        assert_eq!(s.as_str(), "7");
        assert!(s.labels().contains(&l("a")));
    }

    #[test]
    fn release_check() {
        let n = SNum::labelled(7, [l("a")]);
        assert!(n.check_release(&PrivilegeSet::new()).is_err());
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::clearance(l("a")));
        assert_eq!(n.check_release(&privs).unwrap(), 7);
    }
}
