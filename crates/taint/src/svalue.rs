//! Labelled JSON values: the frontend fetches documents from the
//! application database and SafeWeb "transparently adds the labels produced
//! by units in the backend to the data fetched" (§4.4 step 2). [`SValue`]
//! is that fetched-and-labelled document.

use safeweb_json::Value;
use safeweb_labels::{Label, LabelSet, PrivilegeSet};

use crate::sstr::{ReleaseError, SStr};

/// A JSON value carrying a label set (document granularity — a whole
/// record from the application database shares one label set, matching how
/// the storage unit labels whole result documents).
#[derive(Debug, Clone, PartialEq)]
pub struct SValue {
    value: Value,
    labels: LabelSet,
}

impl SValue {
    /// A public (unlabelled) value.
    pub fn public(value: Value) -> SValue {
        SValue {
            value,
            labels: LabelSet::new(),
        }
    }

    /// A labelled value.
    pub fn labelled(value: Value, labels: impl IntoIterator<Item = Label>) -> SValue {
        SValue {
            value,
            labels: labels.into_iter().collect(),
        }
    }

    /// A value with an existing label set.
    pub fn with_label_set(value: Value, labels: LabelSet) -> SValue {
        SValue { value, labels }
    }

    /// The raw JSON (inspection, not release).
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// The labels attached.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Adds a label.
    pub fn add_label(&mut self, label: Label) {
        self.labels.insert(label);
    }

    /// Member access on objects; the field inherits the document's labels.
    pub fn get(&self, key: &str) -> Option<SValue> {
        self.value.get(key).map(|v| SValue {
            value: v.clone(),
            labels: self.labels,
        })
    }

    /// Element access on arrays; the element inherits the labels.
    pub fn at(&self, index: usize) -> Option<SValue> {
        self.value.at(index).map(|v| SValue {
            value: v.clone(),
            labels: self.labels,
        })
    }

    /// Array length, if this is an array.
    pub fn array_len(&self) -> Option<usize> {
        self.value.as_array().map(|a| a.len())
    }

    /// String payload as a labelled string.
    pub fn as_sstr(&self) -> Option<SStr> {
        self.value
            .as_str()
            .map(|s| SStr::with_label_set(s.to_string(), self.labels))
    }

    /// Integer payload as a labelled number.
    pub fn as_snum(&self) -> Option<crate::snum::SNum> {
        self.value
            .as_i64()
            .map(|n| crate::snum::SNum::with_label_set(n, self.labels))
    }

    /// Serialises to compact JSON **as a labelled string** — the paper's
    /// Listing 2 `r.to_json` whose taint made the omitted-check bug
    /// harmless.
    pub fn to_json_sstr(&self) -> SStr {
        SStr::with_label_set(self.value.to_json(), self.labels)
    }

    /// Combines two labelled values into an array entry-style merge,
    /// unioning labels (used when aggregating records).
    pub fn merge_labels_from(&mut self, other: &SValue) {
        self.labels = self.labels.union(&other.labels);
    }

    /// Boundary check on the serialised form.
    ///
    /// # Errors
    ///
    /// Returns [`ReleaseError`] naming the blocking labels.
    pub fn check_release(&self, privileges: &PrivilegeSet) -> Result<String, ReleaseError> {
        let s = self.to_json_sstr();
        s.check_release(privileges)?;
        Ok(s.as_str().to_string())
    }
}

impl From<Value> for SValue {
    fn from(v: Value) -> SValue {
        SValue::public(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_json::jobject;
    use safeweb_labels::Privilege;

    fn patient() -> Label {
        Label::conf("e", "patient/1")
    }

    #[test]
    fn fields_inherit_document_labels() {
        let doc = SValue::labelled(jobject! {"name" => "A. Patient", "age" => 61}, [patient()]);
        let name = doc.get("name").unwrap().as_sstr().unwrap();
        assert_eq!(name.as_str(), "A. Patient");
        assert!(name.labels().contains(&patient()));
        let age = doc.get("age").unwrap().as_snum().unwrap();
        assert_eq!(age.value(), 61);
        assert!(age.labels().contains(&patient()));
    }

    #[test]
    fn to_json_sstr_is_labelled() {
        let doc = SValue::labelled(jobject! {"x" => 1}, [patient()]);
        let json = doc.to_json_sstr();
        assert_eq!(json.as_str(), r#"{"x":1}"#);
        assert!(json.labels().contains(&patient()));
        assert!(json.check_release(&PrivilegeSet::new()).is_err());
    }

    #[test]
    fn release_with_clearance() {
        let doc = SValue::labelled(jobject! {"x" => 1}, [patient()]);
        let mut privs = PrivilegeSet::new();
        privs.grant(Privilege::clearance(patient()));
        assert_eq!(doc.check_release(&privs).unwrap(), r#"{"x":1}"#);
    }

    #[test]
    fn array_access() {
        let doc = SValue::labelled(
            safeweb_json::Value::Array(vec![jobject! {"id" => 1}, jobject! {"id" => 2}]),
            [patient()],
        );
        assert_eq!(doc.array_len(), Some(2));
        let first = doc.at(0).unwrap();
        assert!(first.labels().contains(&patient()));
        assert_eq!(first.get("id").unwrap().as_snum().unwrap().value(), 1);
    }

    #[test]
    fn merge_labels() {
        let mut a = SValue::labelled(jobject! {}, [patient()]);
        let b = SValue::labelled(jobject! {}, [Label::conf("e", "mdt/a")]);
        a.merge_labels_from(&b);
        assert_eq!(a.labels().len(), 2);
    }
}
