//! Property tests for taint propagation: the fundamental invariant is that
//! the labels of any derived value are a superset of the union of its
//! inputs' labels (no operation launders labels away), and the user-taint
//! bit survives everything except explicit sanitisation.

use proptest::prelude::*;
use safeweb_labels::{Label, LabelSet};
use safeweb_taint::{SNum, SStr};

fn arb_labels() -> impl Strategy<Value = Vec<Label>> {
    proptest::collection::vec(
        prop_oneof![
            Just(Label::conf("e", "p/1")),
            Just(Label::conf("e", "p/2")),
            Just(Label::conf("e", "mdt/a")),
            Just(Label::int("e", "ok")),
        ],
        0..3,
    )
}

fn arb_sstr() -> impl Strategy<Value = SStr> {
    ("[a-zA-Z0-9 ]{0,12}", arb_labels(), any::<bool>()).prop_map(|(s, ls, tainted)| {
        let base = if tainted {
            SStr::from_user(s)
        } else {
            SStr::public(s)
        };
        ls.into_iter().fold(base, |acc, l| acc.with_label(l))
    })
}

/// An operation applied to one or two labelled strings.
#[derive(Debug, Clone)]
enum Op {
    Concat,
    Replace,
    Upper,
    Lower,
    Trim,
    SplitFirst,
    Join,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Concat),
        Just(Op::Replace),
        Just(Op::Upper),
        Just(Op::Lower),
        Just(Op::Trim),
        Just(Op::SplitFirst),
        Just(Op::Join),
    ]
}

fn apply(op: &Op, a: &SStr, b: &SStr) -> SStr {
    match op {
        Op::Concat => a.concat(b),
        Op::Replace => a.replace("a", b),
        Op::Upper => a.to_uppercase(),
        Op::Lower => a.to_lowercase(),
        Op::Trim => a.trim(),
        Op::SplitFirst => a.split(" ").into_iter().next().unwrap_or_else(|| a.clone()),
        Op::Join => SStr::join([a, b], "-"),
    }
}

fn uses_both(op: &Op) -> bool {
    matches!(op, Op::Concat | Op::Replace | Op::Join)
}

proptest! {
    /// Labels never disappear: result labels ⊇ a's labels (and ⊇ b's for
    /// binary ops).
    #[test]
    fn label_monotonicity(a in arb_sstr(), b in arb_sstr(), ops in proptest::collection::vec(arb_op(), 1..5)) {
        let mut acc = a.clone();
        let mut expected = *a.labels();
        for op in &ops {
            acc = apply(op, &acc, &b);
            if uses_both(op) {
                expected = expected.union(b.labels());
            }
            prop_assert!(expected.is_subset(acc.labels()),
                "after {:?}: expected {} ⊆ {}", op, expected, acc.labels());
        }
    }

    /// The user-taint bit survives every (non-sanitising) operation chain
    /// whenever any input was tainted.
    #[test]
    fn taint_bit_sticks(a in arb_sstr(), b in arb_sstr(), ops in proptest::collection::vec(arb_op(), 1..5)) {
        let mut acc = a.clone();
        let mut expect_tainted = a.is_user_tainted();
        for op in &ops {
            acc = apply(op, &acc, &b);
            if uses_both(op) {
                expect_tainted |= b.is_user_tainted();
            }
            if expect_tainted {
                prop_assert!(acc.is_user_tainted(), "taint lost after {:?}", op);
            }
        }
        // Sanitising clears it regardless of history.
        prop_assert!(!acc.sanitize_html().is_user_tainted());
    }

    /// check_release agrees exactly with LabelSet::flows_to.
    #[test]
    fn release_matches_flow_semantics(s in arb_sstr()) {
        use safeweb_labels::{Privilege, PrivilegeSet};
        // Grant clearance for every label: must release.
        let full: PrivilegeSet = s.labels().iter().cloned().map(Privilege::clearance).collect();
        prop_assert!(s.check_release(&full).is_ok());
        // With no privileges, release succeeds iff no confidentiality labels.
        let empty_ok = s.check_release(&PrivilegeSet::new()).is_ok();
        prop_assert_eq!(empty_ok, s.labels().confidentiality().is_empty());
    }

    /// SNum arithmetic labels = union of operand labels.
    #[test]
    fn snum_labels_union(la in arb_labels(), lb in arb_labels(), x in -1000i64..1000, y in -1000i64..1000) {
        let a = SNum::labelled(x, la.clone());
        let b = SNum::labelled(y, lb.clone());
        let sum = a + b;
        let expected: LabelSet = la.into_iter().chain(lb).collect();
        prop_assert_eq!(sum.labels(), &expected);
    }

    /// Sanitised HTML never contains raw metacharacters.
    #[test]
    fn sanitize_html_removes_metachars(s in "\\PC{0,24}") {
        let out = SStr::from_user(s).sanitize_html();
        prop_assert!(!out.as_str().contains('<'));
        prop_assert!(!out.as_str().contains('>'));
        prop_assert!(!out.as_str().contains('"'));
    }
}
