//! A small threaded HTTP/1.1 server with keep-alive.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::message::{Headers, Method, Request, Response};

/// Maximum accepted request body, bounding memory under hostile input.
pub const MAX_BODY: usize = 8 * 1024 * 1024;
/// Maximum accepted header section size.
pub const MAX_HEAD: usize = 64 * 1024;
/// Requests served per connection before it is closed.
const MAX_KEEPALIVE_REQUESTS: usize = 1000;

/// The application callback type.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A running HTTP server; dropping it stops the accept loop.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds to `addr` (port 0 for ephemeral) and serves `handler` on a
    /// thread per connection.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(addr: &str, handler: Handler) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("safeweb-http-accept".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { break };
                    let handler = Arc::clone(&handler);
                    std::thread::Builder::new()
                        .name("safeweb-http-conn".to_string())
                        .spawn(move || {
                            let _ = serve_connection(stream, handler);
                        })
                        .expect("spawn http connection thread");
                }
            })
            .expect("spawn http accept thread");
        Ok(HttpServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(stream: TcpStream, handler: Handler) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;

    for _ in 0..MAX_KEEPALIVE_REQUESTS {
        let request = match read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()), // clean EOF
            Err(ParseError::Io(e)) => return Err(e),
            Err(ParseError::Bad(msg)) => {
                let resp = Response::new(400).with_body(msg);
                write_response(&mut stream, &resp, true)?;
                return Ok(());
            }
            Err(ParseError::TooLarge) => {
                let resp = Response::new(413);
                write_response(&mut stream, &resp, true)?;
                return Ok(());
            }
        };
        let close = request
            .headers()
            .get("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let head_only = request.method() == Method::Head;
        let response = handler(request);
        write_response_ex(&mut stream, &response, close, head_only)?;
        if close {
            return Ok(());
        }
    }
    Ok(())
}

enum ParseError {
    Io(io::Error),
    Bad(String),
    TooLarge,
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> ParseError {
        ParseError::Io(e)
    }
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Option<Request>, ParseError> {
    // Request line.
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    let line = line.trim_end();
    if line.is_empty() {
        return Err(ParseError::Bad("empty request line".to_string()));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::from_keyword)
        .ok_or_else(|| ParseError::Bad("bad method".to_string()))?;
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("missing target".to_string()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad("unsupported HTTP version".to_string()));
    }

    // Headers.
    let mut headers = Headers::new();
    let mut head_size = line.len();
    loop {
        let mut hline = String::new();
        let n = reader.read_line(&mut hline)?;
        if n == 0 {
            return Err(ParseError::Bad("truncated headers".to_string()));
        }
        head_size += n;
        if head_size > MAX_HEAD {
            return Err(ParseError::TooLarge);
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        let (name, value) = hline
            .split_once(':')
            .ok_or_else(|| ParseError::Bad(format!("malformed header {hline:?}")))?;
        headers.set(name.trim(), value.trim().to_string());
    }

    // Body.
    let body = match headers.get("content-length") {
        Some(len) => {
            let len: usize = len
                .parse()
                .map_err(|_| ParseError::Bad("bad content-length".to_string()))?;
            if len > MAX_BODY {
                return Err(ParseError::TooLarge);
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => Vec::new(),
    };

    Ok(Some(Request::from_parts(method, &target, headers, body)))
}

fn write_response(stream: &mut TcpStream, response: &Response, close: bool) -> io::Result<()> {
    write_response_ex(stream, response, close, false)
}

fn write_response_ex(
    stream: &mut TcpStream,
    response: &Response,
    close: bool,
    head_only: bool,
) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", response.status(), response.reason());
    for (k, v) in response.headers().iter() {
        if k == "content-length" || k == "connection" {
            continue;
        }
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n", response.body().len()));
    head.push_str(if close {
        "connection: close\r\n"
    } else {
        "connection: keep-alive\r\n"
    });
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(response.body())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    fn echo_server() -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|req: Request| {
                let body = format!(
                    "{} {} q={} b={}",
                    req.method(),
                    req.path(),
                    req.query("x").unwrap_or("-"),
                    String::from_utf8_lossy(req.body()),
                );
                Response::text(body)
            }),
        )
        .unwrap()
    }

    #[test]
    fn serves_get_and_post() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let resp = client::get(&addr, "/hello?x=1").unwrap();
        assert_eq!(resp.status(), 200);
        assert_eq!(resp.body_str(), Some("GET /hello q=1 b="));

        let resp = client::send(
            &addr,
            Request::new(Method::Post, "/submit").with_body("payload"),
        )
        .unwrap();
        assert_eq!(resp.body_str(), Some("POST /submit q=- b=payload"));
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let mut conn = client::Connection::open(&addr).unwrap();
        for i in 0..5 {
            let resp = conn
                .send(Request::new(Method::Get, &format!("/r{i}")))
                .unwrap();
            assert_eq!(resp.status(), 200);
            assert!(resp.body_str().unwrap().contains(&format!("/r{i}")));
        }
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }

    #[test]
    fn oversized_body_gets_413() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(
            format!(
                "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                MAX_BODY + 1
            )
            .as_bytes(),
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 413"), "{buf}");
    }

    #[test]
    fn head_omits_body() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let resp = client::send(&addr, Request::new(Method::Head, "/x")).unwrap();
        assert_eq!(resp.status(), 200);
        assert!(resp.body().is_empty());
        // content-length still describes the would-be body.
        assert_ne!(resp.headers().get("content-length"), Some("0"));
    }
}
