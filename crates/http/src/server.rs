//! The HTTP/1.1 frontend, served from the shared connection reactor.
//!
//! The seed implementation dedicated one blocking thread to every
//! connection; this version keeps the exact same [`Handler`] API but
//! multiplexes all connections over one `safeweb-reactor` event loop:
//!
//! * reads are buffered and parsed incrementally by
//!   [`crate::message::RequestParser`] — a request head split across TCP
//!   segments holds buffer state, not a thread;
//! * each complete request is dispatched to the reactor's bounded worker
//!   pool through the connection's FIFO, so pipelined responses keep
//!   wire order;
//! * responses are queued on the connection's bounded outbox and flushed
//!   by nonblocking writes.
//!
//! Thread count is `shards + workers` regardless of connection count;
//! [`HttpServer::bind_sharded`] spreads the event-loop work over several
//! reactor shards when one epoll thread saturates a core.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use safeweb_reactor::{ConnHandle, Protocol, Reactor, ReactorConfig};

use crate::message::{Method, ParseError, Request, RequestParser, Response};

pub use crate::message::{MAX_BODY, MAX_HEAD};

/// Requests served per connection before it is closed.
const MAX_KEEPALIVE_REQUESTS: usize = 1000;
/// Idle connections are reaped after this long (the seed's per-read
/// timeout, carried over as an idle timeout).
const IDLE_TIMEOUT: Duration = Duration::from_secs(30);
/// Pipelined requests in flight per connection before reads pause.
const MAX_PIPELINED: usize = 32;

/// The application callback type.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A running HTTP server; dropping it stops the reactor, the workers and
/// every connection.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    reactor: Reactor,
}

impl HttpServer {
    /// Binds to `addr` (port 0 for ephemeral) and serves `handler` from
    /// the reactor's worker pool.
    ///
    /// # Errors
    ///
    /// Propagates bind and reactor setup errors.
    pub fn bind(addr: &str, handler: Handler) -> io::Result<HttpServer> {
        HttpServer::bind_sharded(addr, 1, handler)
    }

    /// Like [`HttpServer::bind`], but runs `shards` reactor event-loop
    /// threads (clamped to ≥ 1): shard 0 accepts and round-robins
    /// connections across the shards, so parsing and socket I/O scale
    /// past one core while the worker pool stays shared.
    ///
    /// # Errors
    ///
    /// Propagates bind and reactor setup errors.
    pub fn bind_sharded(addr: &str, shards: usize, handler: Handler) -> io::Result<HttpServer> {
        let config = ReactorConfig {
            name: "safeweb-http".to_string(),
            idle_timeout: Some(IDLE_TIMEOUT),
            shards,
            ..ReactorConfig::default()
        };
        let reactor = Reactor::bind(addr, config, move || {
            Box::new(HttpConn::new(Arc::clone(&handler)))
        })?;
        Ok(HttpServer {
            addr: reactor.addr(),
            reactor,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently held by the reactor.
    pub fn active_connections(&self) -> usize {
        self.reactor.active_connections()
    }

    /// Outbound bytes queued across every connection (aggregate outbox
    /// depth); see [`Reactor::queued_bytes`].
    pub fn queued_bytes(&self) -> usize {
        self.reactor.queued_bytes()
    }

    /// Wires the underlying reactor's connection telemetry into
    /// `registry` under `prefix`; see [`Reactor::attach_metrics`].
    pub fn attach_metrics(&self, registry: &safeweb_obs::MetricsRegistry, prefix: &str) {
        self.reactor.attach_metrics(registry, prefix);
    }

    /// Stops the server: no new connections, existing ones closed,
    /// in-flight handlers drained. Idempotent.
    pub fn shutdown(&mut self) {
        self.reactor.shutdown();
    }
}

/// Per-connection HTTP state machine (runs on the reactor thread).
struct HttpConn {
    handler: Handler,
    parser: RequestParser,
    served: usize,
    /// No further input is interpreted (parse error sent, EOF seen, or
    /// keep-alive budget exhausted).
    dead: bool,
}

impl HttpConn {
    fn new(handler: Handler) -> HttpConn {
        HttpConn {
            handler,
            parser: RequestParser::new(),
            served: 0,
            dead: false,
        }
    }
}

impl Protocol for HttpConn {
    fn on_bytes(&mut self, data: &[u8], conn: &ConnHandle) {
        if self.dead {
            return;
        }
        self.parser.feed(data);
        loop {
            match self.parser.next_request() {
                Ok(Some(request)) => {
                    self.served += 1;
                    let close = request
                        .headers()
                        .get("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                        || self.served >= MAX_KEEPALIVE_REQUESTS;
                    let head_only = request.method() == Method::Head;
                    let handler = Arc::clone(&self.handler);
                    let io = conn.clone();
                    conn.dispatch(move || {
                        let response = handler(request);
                        let _ = io.send(encode_response(&response, close, head_only));
                        if close {
                            io.close_after_flush();
                        } else if io.pending_jobs() <= MAX_PIPELINED / 2 {
                            // Cheap no-op unless reads were paused below.
                            io.resume_reads();
                        }
                    });
                    if close {
                        self.dead = true;
                        return;
                    }
                    if conn.pending_jobs() >= MAX_PIPELINED {
                        conn.pause_reads();
                    }
                }
                Ok(None) => return,
                Err(error) => {
                    self.dead = true;
                    let response = match error {
                        ParseError::TooLarge => Response::new(413),
                        ParseError::Bad(msg) => Response::new(400).with_body(msg),
                    };
                    let io = conn.clone();
                    // Through the FIFO, so it follows any in-flight
                    // responses for earlier pipelined requests.
                    conn.dispatch(move || {
                        let _ = io.send(encode_response(&response, true, false));
                        io.close_after_flush();
                    });
                    return;
                }
            }
        }
    }

    fn on_eof(&mut self, conn: &ConnHandle) {
        self.dead = true;
        let io = conn.clone();
        // FIFO again: responses for requests already dispatched still go
        // out before the connection closes.
        conn.dispatch(move || io.close_after_flush());
    }
}

/// Serialises a response, always emitting `content-length` and a
/// `connection` header; a HEAD response carries the would-be body's
/// length but no body bytes.
fn encode_response(response: &Response, close: bool, head_only: bool) -> Vec<u8> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", response.status(), response.reason());
    for (k, v) in response.headers().iter() {
        if k == "content-length" || k == "connection" {
            continue;
        }
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n", response.body().len()));
    head.push_str(if close {
        "connection: close\r\n"
    } else {
        "connection: keep-alive\r\n"
    });
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    if !head_only {
        bytes.extend_from_slice(response.body());
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn echo_server() -> HttpServer {
        HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|req: Request| {
                let body = format!(
                    "{} {} q={} b={}",
                    req.method(),
                    req.path(),
                    req.query("x").unwrap_or("-"),
                    String::from_utf8_lossy(req.body()),
                );
                Response::text(body)
            }),
        )
        .unwrap()
    }

    #[test]
    fn serves_get_and_post() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let resp = client::get(&addr, "/hello?x=1").unwrap();
        assert_eq!(resp.status(), 200);
        assert_eq!(resp.body_str(), Some("GET /hello q=1 b="));

        let resp = client::send(
            &addr,
            Request::new(Method::Post, "/submit").with_body("payload"),
        )
        .unwrap();
        assert_eq!(resp.body_str(), Some("POST /submit q=- b=payload"));
    }

    #[test]
    fn keep_alive_serves_multiple_requests() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let mut conn = client::Connection::open(&addr).unwrap();
        for i in 0..5 {
            let resp = conn
                .send(Request::new(Method::Get, &format!("/r{i}")))
                .unwrap();
            assert_eq!(resp.status(), 200);
            assert!(resp.body_str().unwrap().contains(&format!("/r{i}")));
        }
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Ten requests in one write; responses must come back in order,
        // each from a separate worker job.
        let mut wire = Vec::new();
        for i in 0..10 {
            wire.extend_from_slice(format!("GET /p{i} HTTP/1.1\r\n\r\n").as_bytes());
        }
        s.write_all(&wire).unwrap();
        let mut got = Vec::new();
        while got.len() < 10 * 40 {
            let mut buf = [0u8; 4096];
            let n = s.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
            let text = String::from_utf8_lossy(&got);
            if (0..10).all(|i| text.contains(&format!("/p{i}"))) {
                break;
            }
        }
        let text = String::from_utf8_lossy(&got);
        let positions: Vec<usize> = (0..10)
            .map(|i| text.find(&format!("GET /p{i} ")).expect("response present"))
            .collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(
            positions, sorted,
            "pipelined responses out of order: {text}"
        );
    }

    #[test]
    fn malformed_request_gets_400() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "{buf}");
    }

    #[test]
    fn oversized_body_gets_413() {
        let server = echo_server();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(
            format!(
                "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                MAX_BODY + 1
            )
            .as_bytes(),
        )
        .unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 413"), "{buf}");
    }

    #[test]
    fn head_omits_body() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let resp = client::send(&addr, Request::new(Method::Head, "/x")).unwrap();
        assert_eq!(resp.status(), 200);
        assert!(resp.body().is_empty());
        // content-length still describes the would-be body.
        assert_ne!(resp.headers().get("content-length"), Some("0"));
    }

    #[test]
    fn connection_close_is_honoured() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let resp = client::send(
            &addr,
            Request::new(Method::Get, "/bye").with_header("connection", "close"),
        )
        .unwrap();
        assert_eq!(resp.status(), 200);
        assert_eq!(resp.headers().get("connection"), Some("close"));
    }
}
