//! # safeweb-http
//!
//! A minimal HTTP/1.1 server and client: the transport substrate under the
//! SafeWeb web frontend (§4.4). The paper serves the MDT portal from a
//! Sinatra application over HTTP basic authentication and TLS; this crate
//! provides the HTTP layer (TLS is out of scope per DESIGN.md §5 — the IFC
//! contribution is transport-agnostic), including:
//!
//! * a resumable, size-bounded request parser ([`RequestParser`], bounds
//!   [`MAX_HEAD`]/[`MAX_BODY`]),
//! * a keep-alive server ([`HttpServer`]) multiplexed over the shared
//!   `safeweb-reactor` epoll loop — thread count is `1 + workers`
//!   regardless of connection count,
//! * HTTP basic authentication helpers (with an in-tree Base64),
//! * a blocking client for tests and the benchmark harness.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod base64;
pub mod client;
mod message;
pub mod server;

pub use message::{
    url_decode, url_encode, Headers, Method, ParseError, Request, RequestParser, Response,
    MAX_BODY, MAX_HEAD,
};
pub use server::{Handler, HttpServer};
