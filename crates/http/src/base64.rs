//! Standard-alphabet Base64, needed for HTTP basic authentication.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as Base64 with padding.
pub fn encode(input: &[u8]) -> String {
    let mut out = String::with_capacity(input.len().div_ceil(3) * 4);
    for chunk in input.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes padded Base64. Returns `None` on invalid input.
pub fn decode(input: &str) -> Option<Vec<u8>> {
    let bytes = input.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let mut vals = [0u32; 4];
        let mut pad = 0;
        for (i, &c) in chunk.iter().enumerate() {
            if c == b'=' {
                // Padding only in the last two positions.
                if i < 2 {
                    return None;
                }
                pad += 1;
                vals[i] = 0;
            } else {
                if pad > 0 {
                    return None; // data after padding
                }
                vals[i] = decode_char(c)? as u32;
            }
        }
        let n = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) | vals[3];
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc_vectors() {
        for (plain, enc) in [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn basic_auth_shape() {
        let creds = encode(b"mdt1:secret");
        let back = decode(&creds).unwrap();
        assert_eq!(back, b"mdt1:secret");
    }

    #[test]
    fn rejects_invalid() {
        assert!(decode("a").is_none());
        assert!(decode("ab=c").is_none());
        assert!(decode("====").is_none());
        assert!(decode("a b c d").is_none());
    }

    #[test]
    fn binary_roundtrip() {
        let data: Vec<u8> = (0u8..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }
}
