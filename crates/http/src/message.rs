//! HTTP requests and responses, plus the resumable request parser driven
//! by the reactor frontend.

use std::collections::BTreeMap;
use std::fmt;

use crate::base64;

/// Maximum accepted request body, bounding memory under hostile input.
pub const MAX_BODY: usize = 8 * 1024 * 1024;
/// Maximum accepted header section size.
pub const MAX_HEAD: usize = 64 * 1024;

/// HTTP request methods used by the SafeWeb frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
    /// PUT
    Put,
    /// DELETE
    Delete,
    /// HEAD
    Head,
}

impl Method {
    /// Wire keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
        }
    }

    /// Parses a wire keyword.
    pub fn from_keyword(s: &str) -> Option<Method> {
        Some(match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "HEAD" => Method::Head,
            _ => return None,
        })
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Case-insensitive header map (stores lowercase names).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    map: BTreeMap<String, String>,
}

impl Headers {
    /// Empty header map.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Sets a header (replacing any previous value).
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.map.insert(name.to_ascii_lowercase(), value.into());
    }

    /// Looks a header up, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.map.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Iterates over `(lowercased-name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no headers are set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    method: Method,
    /// Path without the query string, e.g. `/records/addenbrookes`.
    path: String,
    /// Decoded query parameters.
    query: BTreeMap<String, String>,
    headers: Headers,
    body: Vec<u8>,
}

impl Request {
    /// Builds a request (used by the client and tests).
    pub fn new(method: Method, target: &str) -> Request {
        let (path, query) = split_target(target);
        Request {
            method,
            path,
            query,
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    pub(crate) fn from_parts(
        method: Method,
        target: &str,
        headers: Headers,
        body: Vec<u8>,
    ) -> Request {
        let (path, query) = split_target(target);
        Request {
            method,
            path,
            query,
            headers,
            body,
        }
    }

    /// The request method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The path component (no query string).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// A decoded query parameter.
    pub fn query(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// All query parameters.
    pub fn query_params(&self) -> &BTreeMap<String, String> {
        &self.query
    }

    /// Header access.
    pub fn headers(&self) -> &Headers {
        &self.headers
    }

    /// Mutable header access.
    pub fn headers_mut(&mut self) -> &mut Headers {
        &mut self.headers
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Sets the body (builder style).
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Request {
        self.body = body.into();
        self
    }

    /// Sets a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.set(name, value);
        self
    }

    /// Adds an HTTP basic `Authorization` header.
    pub fn with_basic_auth(self, user: &str, password: &str) -> Request {
        let token = base64::encode(format!("{user}:{password}").as_bytes());
        self.with_header("authorization", format!("Basic {token}"))
    }

    /// Decodes HTTP basic credentials from the `Authorization` header.
    pub fn basic_auth(&self) -> Option<(String, String)> {
        let value = self.headers.get("authorization")?;
        let token = value
            .strip_prefix("Basic ")
            .or_else(|| value.strip_prefix("basic "))?;
        let decoded = base64::decode(token.trim())?;
        let text = String::from_utf8(decoded).ok()?;
        let (user, password) = text.split_once(':')?;
        Some((user.to_string(), password.to_string()))
    }
}

fn split_target(target: &str) -> (String, BTreeMap<String, String>) {
    match target.split_once('?') {
        None => (target.to_string(), BTreeMap::new()),
        Some((path, qs)) => {
            let mut query = BTreeMap::new();
            for pair in qs.split('&') {
                if pair.is_empty() {
                    continue;
                }
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                query.insert(url_decode(k), url_decode(v));
            }
            (path.to_string(), query)
        }
    }
}

/// Percent-decodes a URL component (plus `+` → space).
pub fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a URL component.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    headers: Headers,
    body: Vec<u8>,
}

impl Response {
    /// A response with the given status and empty body.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// 200 with a `text/html` body.
    pub fn html(body: impl Into<String>) -> Response {
        Response::new(200)
            .with_header("content-type", "text/html; charset=utf-8")
            .with_body(body.into())
    }

    /// 200 with an `application/json` body.
    pub fn json(body: impl Into<String>) -> Response {
        Response::new(200)
            .with_header("content-type", "application/json")
            .with_body(body.into())
    }

    /// 200 with a `text/plain` body.
    pub fn text(body: impl Into<String>) -> Response {
        Response::new(200)
            .with_header("content-type", "text/plain; charset=utf-8")
            .with_body(body.into())
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The standard reason phrase for the status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            304 => "Not Modified",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Header access.
    pub fn headers(&self) -> &Headers {
        &self.headers
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Sets a header (builder style).
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.set(name, value);
        self
    }

    /// Sets the body (builder style).
    pub fn with_body(mut self, body: impl Into<Vec<u8>>) -> Response {
        self.body = body.into();
        self
    }
}

/// Error produced while parsing a request from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request is malformed; the message is suitable for a 400 body.
    Bad(String),
    /// Head or body exceeds [`MAX_HEAD`]/[`MAX_BODY`] (a 413).
    TooLarge,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Bad(msg) => write!(f, "malformed request: {msg}"),
            ParseError::TooLarge => write!(f, "request exceeds size bounds"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A fully parsed head waiting for its body bytes.
#[derive(Debug)]
struct PendingHead {
    method: Method,
    target: String,
    headers: Headers,
    content_length: usize,
}

/// A resumable, incremental HTTP/1.1 request parser.
///
/// The reactor frontend feeds whatever bytes the socket yields
/// ([`RequestParser::feed`]) and drains complete requests
/// ([`RequestParser::next_request`]) — the parser state survives across
/// readiness events, so a request head split over many TCP segments
/// costs no blocking reads and no per-connection thread. Size bounds
/// ([`MAX_HEAD`], [`MAX_BODY`]) are enforced while data accumulates,
/// before a hostile peer can buffer unbounded memory.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted after each request).
    pos: usize,
    /// Bytes of `buf` already scanned for the head terminator, so a head
    /// trickling in across many reads is scanned once, not re-scanned
    /// from the front each time (which would be quadratic on the shared
    /// reactor thread).
    scanned: usize,
    /// Parsed head of the in-progress request, once complete.
    head: Option<PendingHead>,
}

impl RequestParser {
    /// Creates an empty parser.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether the parser sits at a request boundary (EOF here is a clean
    /// connection close; EOF mid-request is a truncation).
    pub fn is_idle(&self) -> bool {
        self.head.is_none() && self.buf.len() == self.pos
    }

    /// Attempts to extract the next complete request.
    ///
    /// Returns `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`ParseError`] on malformed or oversized input; the parser state
    /// is then undefined and the connection should be closed after the
    /// error response.
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        if self.head.is_none() {
            let pending = self.buf.len() - self.pos;
            // Resume the terminator scan where the previous call left
            // off, stepping back two bytes for a terminator spanning the
            // chunk boundary (`\n` / `\n\r` already buffered).
            let resume = (self.scanned.max(self.pos) - self.pos).saturating_sub(2);
            let found = find_head_end(&self.buf[self.pos..], resume);
            self.scanned = self.buf.len();
            let Some((head_end, body_start)) = found else {
                if pending > MAX_HEAD {
                    return Err(ParseError::TooLarge);
                }
                return Ok(None);
            };
            if head_end > MAX_HEAD {
                return Err(ParseError::TooLarge);
            }
            let head = parse_head(&self.buf[self.pos..self.pos + head_end])?;
            self.pos += body_start;
            self.head = Some(head);
        }
        let content_length = self.head.as_ref().expect("head parsed").content_length;
        if self.buf.len() - self.pos < content_length {
            return Ok(None);
        }
        let head = self.head.take().expect("head parsed");
        let body = self.buf[self.pos..self.pos + content_length].to_vec();
        self.pos += content_length;
        // Compact: drop the consumed prefix so pipelined peers cannot
        // grow the buffer without bound.
        self.buf.drain(..self.pos);
        self.pos = 0;
        self.scanned = 0;
        Ok(Some(Request::from_parts(
            head.method,
            &head.target,
            head.headers,
            body,
        )))
    }
}

/// Finds the end of the head (the blank line) scanning from `start`,
/// tolerating bare-`\n` line endings. Returns `(head_end, body_start)`
/// relative to `buf`.
fn find_head_end(buf: &[u8], start: usize) -> Option<(usize, usize)> {
    let mut i = start;
    while i + 1 < buf.len() {
        if buf[i] == b'\n' {
            if buf[i + 1] == b'\n' {
                return Some((i, i + 2));
            }
            if buf[i + 1] == b'\r' && buf.get(i + 2) == Some(&b'\n') {
                return Some((i, i + 3));
            }
        }
        i += 1;
    }
    None
}

fn parse_head(head: &[u8]) -> Result<PendingHead, ParseError> {
    let head = std::str::from_utf8(head)
        .map_err(|_| ParseError::Bad("head is not valid UTF-8".to_string()))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    let request_line = lines.next().unwrap_or_default();
    if request_line.is_empty() {
        return Err(ParseError::Bad("empty request line".to_string()));
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .and_then(Method::from_keyword)
        .ok_or_else(|| ParseError::Bad("bad method".to_string()))?;
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Bad("missing target".to_string()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad("unsupported HTTP version".to_string()));
    }

    let mut headers = Headers::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Bad(format!("malformed header {line:?}")))?;
        headers.set(name.trim(), value.trim().to_string());
    }

    let content_length = match headers.get("content-length") {
        Some(len) => {
            let len: usize = len
                .parse()
                .map_err(|_| ParseError::Bad("bad content-length".to_string()))?;
            if len > MAX_BODY {
                return Err(ParseError::TooLarge);
            }
            len
        }
        None => 0,
    };

    Ok(PendingHead {
        method,
        target,
        headers,
        content_length,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_partial_feeds() {
        let wire = b"POST /submit?x=1 HTTP/1.1\r\ncontent-length: 7\r\nx-a: b\r\n\r\npayload";
        let mut parser = RequestParser::new();
        for chunk in wire.chunks(3) {
            parser.feed(chunk);
        }
        let request = parser.next_request().unwrap().unwrap();
        assert_eq!(request.method(), Method::Post);
        assert_eq!(request.path(), "/submit");
        assert_eq!(request.query("x"), Some("1"));
        assert_eq!(request.headers().get("x-a"), Some("b"));
        assert_eq!(request.body(), b"payload");
        assert!(parser.is_idle());
        assert!(parser.next_request().unwrap().is_none());
    }

    #[test]
    fn parser_returns_none_until_body_complete() {
        let mut parser = RequestParser::new();
        parser.feed(b"POST / HTTP/1.1\r\ncontent-length: 4\r\n\r\nab");
        assert!(parser.next_request().unwrap().is_none());
        assert!(!parser.is_idle());
        parser.feed(b"cd");
        let request = parser.next_request().unwrap().unwrap();
        assert_eq!(request.body(), b"abcd");
    }

    #[test]
    fn parser_extracts_pipelined_requests_in_order() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(parser.next_request().unwrap().unwrap().path(), "/a");
        assert_eq!(parser.next_request().unwrap().unwrap().path(), "/b");
        assert!(parser.next_request().unwrap().is_none());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        let mut parser = RequestParser::new();
        parser.feed(b"NONSENSE\r\n\r\n");
        assert!(matches!(parser.next_request(), Err(ParseError::Bad(_))));

        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/2.0\r\n\r\n");
        assert!(matches!(parser.next_request(), Err(ParseError::Bad(_))));

        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n");
        assert!(matches!(parser.next_request(), Err(ParseError::Bad(_))));
    }

    #[test]
    fn parser_enforces_size_bounds() {
        let mut parser = RequestParser::new();
        parser.feed(
            format!(
                "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                MAX_BODY + 1
            )
            .as_bytes(),
        );
        assert!(matches!(parser.next_request(), Err(ParseError::TooLarge)));

        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        parser.feed(&vec![b'h'; MAX_HEAD + 2]);
        assert!(matches!(parser.next_request(), Err(ParseError::TooLarge)));
    }

    #[test]
    fn query_parsing_and_decoding() {
        let r = Request::new(Method::Get, "/records?mid=addenbrookes&q=a+b%2Fc");
        assert_eq!(r.path(), "/records");
        assert_eq!(r.query("mid"), Some("addenbrookes"));
        assert_eq!(r.query("q"), Some("a b/c"));
        assert_eq!(r.query("missing"), None);
    }

    #[test]
    fn headers_case_insensitive() {
        let r = Request::new(Method::Get, "/").with_header("X-Thing", "1");
        assert_eq!(r.headers().get("x-thing"), Some("1"));
        assert_eq!(r.headers().get("X-THING"), Some("1"));
    }

    #[test]
    fn basic_auth_roundtrip() {
        let r = Request::new(Method::Get, "/").with_basic_auth("mdt1", "pa:ss");
        let (u, p) = r.basic_auth().unwrap();
        assert_eq!(u, "mdt1");
        assert_eq!(p, "pa:ss");
    }

    #[test]
    fn basic_auth_missing_or_malformed() {
        assert!(Request::new(Method::Get, "/").basic_auth().is_none());
        let r = Request::new(Method::Get, "/").with_header("authorization", "Bearer x");
        assert!(r.basic_auth().is_none());
        let r = Request::new(Method::Get, "/").with_header("authorization", "Basic !!!");
        assert!(r.basic_auth().is_none());
    }

    #[test]
    fn url_encode_decode_roundtrip() {
        let s = "a b/c?d=e&f=100%";
        assert_eq!(url_decode(&url_encode(s)), s);
    }

    #[test]
    fn response_builders() {
        let r = Response::json("{}");
        assert_eq!(r.status(), 200);
        assert_eq!(r.headers().get("content-type"), Some("application/json"));
        assert_eq!(Response::new(403).reason(), "Forbidden");
        assert_eq!(Response::new(418).reason(), "Unknown");
    }
}
