//! A small blocking HTTP/1.1 client (used by tests, examples and the
//! benchmark harness to drive the SafeWeb frontend).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::message::{Headers, Method, Request, Response};

/// A keep-alive client connection.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Opens a connection to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn open(addr: &str) -> io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection { stream, reader })
    }

    /// Sends a request and reads the response.
    ///
    /// # Errors
    ///
    /// I/O failures or malformed responses surface as `InvalidData`.
    pub fn send(&mut self, request: Request) -> io::Result<Response> {
        let mut head = format!("{} {} HTTP/1.1\r\n", request.method(), target_of(&request));
        for (k, v) in request.headers().iter() {
            if k == "content-length" {
                continue;
            }
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n", request.body().len()));
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(request.body())?;
        self.stream.flush()?;
        read_response(&mut self.reader, request.method() == Method::Head)
    }
}

fn target_of(request: &Request) -> String {
    if request.query_params().is_empty() {
        request.path().to_string()
    } else {
        let qs: Vec<String> = request
            .query_params()
            .iter()
            .map(|(k, v)| {
                format!(
                    "{}={}",
                    crate::message::url_encode(k),
                    crate::message::url_encode(v)
                )
            })
            .collect();
        format!("{}?{}", request.path(), qs.join("&"))
    }
}

fn read_response(reader: &mut BufReader<TcpStream>, head_only: bool) -> io::Result<Response> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.trim_end().splitn(3, ' ');
    let _version = parts.next();
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;

    let mut headers = Headers::new();
    loop {
        let mut hline = String::new();
        let n = reader.read_line(&mut hline)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated response headers",
            ));
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        if let Some((name, value)) = hline.split_once(':') {
            headers.set(name.trim(), value.trim().to_string());
        }
    }

    let mut response = Response::new(status);
    let content_length: usize = headers
        .get("content-length")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    for (k, v) in headers.iter() {
        response = response.with_header(k, v.to_string());
    }
    if !head_only && content_length > 0 {
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        response = response.with_body(body);
    }
    Ok(response)
}

/// One-shot GET over a fresh connection.
///
/// # Errors
///
/// Propagates connection and protocol errors.
pub fn get(addr: &str, target: &str) -> io::Result<Response> {
    send(addr, Request::new(Method::Get, target))
}

/// One-shot request over a fresh connection.
///
/// # Errors
///
/// Propagates connection and protocol errors.
pub fn send(addr: &str, request: Request) -> io::Result<Response> {
    let mut conn = Connection::open(addr)?;
    conn.send(request)
}
