//! Bench regression gate: compares a bench run's machine-readable
//! medians (the JSON the criterion shim writes under
//! `SAFEWEB_BENCH_JSON`) against a recorded baseline and fails — exit
//! code 1 — when any gated bench regressed past the allowed ratio.
//!
//! Two invocation shapes:
//!
//! ```sh
//! # One pair: a measured run against one baseline file.
//! cargo run -p safeweb-bench --bin bench_gate -- \
//!     BENCH_docstore.json crates/bench/baselines/docstore.json
//!
//! # Directory mode: every `<stem>.json` under the baselines directory
//! # is gated against `BENCH_<stem>.json` in the measured directory
//! # (default `.`), so adding a baseline file auto-enrols its bench.
//! cargo run -p safeweb-bench --bin bench_gate -- crates/bench/baselines
//! ```
//!
//! The baseline records medians (µs/iter) from a developer machine; CI
//! hosts differ, so the default gate only fires on a >3× regression —
//! wide enough to absorb runner variance, tight enough to catch an
//! accidental O(n) slip on the indexed-view path (which regressed ~25×
//! at the bench's 10× scale in the seed). Only keys present in the
//! baseline are gated; extra measurements pass through freely.

use std::path::Path;
use std::process::ExitCode;

use safeweb_json::Value;

fn load(path: &Path) -> Value {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    Value::parse(&raw).unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()))
}

/// Gates one measured run against one baseline file; returns the number
/// of regressions (missing keys count as regressions).
fn gate_pair(measured_path: &Path, baseline_path: &Path, max_ratio: f64) -> u32 {
    let measured = load(measured_path);
    let baseline = load(baseline_path);
    let measured = measured
        .get("benches")
        .and_then(Value::as_object)
        .expect("measured file has a benches object");
    let gated = baseline
        .get("benches")
        .and_then(Value::as_object)
        .expect("baseline file has a benches object");

    eprintln!(
        "bench gate: {} gated benches, max allowed ratio {max_ratio:.1}x ({} vs {})",
        gated.len(),
        measured_path.display(),
        baseline_path.display()
    );
    let mut failures = 0u32;
    for (name, base) in gated {
        let base_us = base.as_f64().expect("baseline medians are numbers");
        let Some(got_us) = measured.get(name).and_then(Value::as_f64) else {
            eprintln!("  FAIL {name}: gated bench missing from the measured run");
            failures += 1;
            continue;
        };
        let ratio = if base_us > 0.0 {
            got_us / base_us
        } else {
            f64::INFINITY
        };
        let verdict = if ratio > max_ratio { "FAIL" } else { "  ok" };
        eprintln!("  {verdict} {name}: {got_us:.1} us vs baseline {base_us:.1} us ({ratio:.2}x)");
        if ratio > max_ratio {
            failures += 1;
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_ratio = 3.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-ratio" {
            let v = it.next().expect("--max-ratio needs a value");
            max_ratio = v.parse().expect("--max-ratio must be a number");
        } else {
            paths.push(arg.clone());
        }
    }

    let failures = match paths.as_slice() {
        // Directory mode: gate every baseline in the directory against
        // its `BENCH_<stem>.json` in the measured dir (default cwd).
        [baselines] | [baselines, _] if Path::new(baselines).is_dir() => {
            let measured_dir = paths.get(1).cloned().unwrap_or_else(|| ".".to_string());
            let mut baseline_files: Vec<_> = std::fs::read_dir(baselines)
                .unwrap_or_else(|e| panic!("cannot list {baselines}: {e}"))
                .map(|entry| entry.expect("readable baselines directory").path())
                .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
                .collect();
            baseline_files.sort();
            if baseline_files.is_empty() {
                eprintln!("bench gate: no *.json baselines under {baselines}");
                return ExitCode::FAILURE;
            }
            let mut failures = 0u32;
            for baseline in &baseline_files {
                let stem = baseline
                    .file_stem()
                    .expect("baseline file has a stem")
                    .to_string_lossy();
                let measured = Path::new(&measured_dir).join(format!("BENCH_{stem}.json"));
                if !measured.is_file() {
                    eprintln!(
                        "  FAIL {stem}: baseline {} has no measured run at {}",
                        baseline.display(),
                        measured.display()
                    );
                    failures += 1;
                    continue;
                }
                failures += gate_pair(&measured, baseline, max_ratio);
            }
            failures
        }
        [measured, baseline] => gate_pair(Path::new(measured), Path::new(baseline), max_ratio),
        _ => {
            eprintln!(
                "usage: bench_gate <measured.json> <baseline.json> [--max-ratio N]\n\
                        bench_gate <baselines-dir> [measured-dir] [--max-ratio N]"
            );
            return ExitCode::FAILURE;
        }
    };

    if failures > 0 {
        eprintln!("bench gate: {failures} regression(s) past {max_ratio:.1}x — failing");
        return ExitCode::FAILURE;
    }
    eprintln!("bench gate: all gated benches within budget");
    ExitCode::SUCCESS
}
