//! Bench regression gate: compares a bench run's machine-readable
//! medians (the JSON the criterion shim writes under
//! `SAFEWEB_BENCH_JSON`) against a recorded baseline and fails — exit
//! code 1 — when any gated bench regressed past the allowed ratio.
//!
//! ```sh
//! SAFEWEB_BENCH_JSON=BENCH_docstore.json \
//!     cargo bench -p safeweb-bench --bench docstore
//! cargo run -p safeweb-bench --bin bench_gate -- \
//!     BENCH_docstore.json crates/bench/baselines/docstore.json
//! ```
//!
//! The baseline records medians (µs/iter) from a developer machine; CI
//! hosts differ, so the default gate only fires on a >3× regression —
//! wide enough to absorb runner variance, tight enough to catch an
//! accidental O(n) slip on the indexed-view path (which regressed ~25×
//! at the bench's 10× scale in the seed). Only keys present in the
//! baseline are gated; extra measurements pass through freely.

use std::process::ExitCode;

use safeweb_json::Value;

fn load(path: &str) -> Value {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    Value::parse(&raw).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_ratio = 3.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-ratio" {
            let v = it.next().expect("--max-ratio needs a value");
            max_ratio = v.parse().expect("--max-ratio must be a number");
        } else {
            paths.push(arg.clone());
        }
    }
    let [measured_path, baseline_path] = paths.as_slice() else {
        eprintln!("usage: bench_gate <measured.json> <baseline.json> [--max-ratio N]");
        return ExitCode::FAILURE;
    };

    let measured = load(measured_path);
    let baseline = load(baseline_path);
    let measured = measured
        .get("benches")
        .and_then(Value::as_object)
        .expect("measured file has a benches object");
    let gated = baseline
        .get("benches")
        .and_then(Value::as_object)
        .expect("baseline file has a benches object");

    eprintln!(
        "bench gate: {} gated benches, max allowed ratio {max_ratio:.1}x \
         ({measured_path} vs {baseline_path})",
        gated.len()
    );
    let mut failures = 0u32;
    for (name, base) in gated {
        let base_us = base.as_f64().expect("baseline medians are numbers");
        let Some(got_us) = measured.get(name).and_then(Value::as_f64) else {
            eprintln!("  FAIL {name}: gated bench missing from the measured run");
            failures += 1;
            continue;
        };
        let ratio = if base_us > 0.0 {
            got_us / base_us
        } else {
            f64::INFINITY
        };
        let verdict = if ratio > max_ratio { "FAIL" } else { "  ok" };
        eprintln!("  {verdict} {name}: {got_us:.1} us vs baseline {base_us:.1} us ({ratio:.2}x)");
        if ratio > max_ratio {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("bench gate: {failures} regression(s) past {max_ratio:.1}x — failing");
        return ExitCode::FAILURE;
    }
    eprintln!("bench gate: all gated benches within budget");
    ExitCode::SUCCESS
}
