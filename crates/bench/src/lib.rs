//! # safeweb-bench
//!
//! Shared scaffolding for the benchmark harness that regenerates the
//! SafeWeb paper's evaluation (experiment index in `DESIGN.md` §4):
//!
//! | bench target | paper artefact |
//! |--------------|----------------|
//! | `frontend`   | §5.3 page generation, 158→180 ms (+14 %) |
//! | `backend`    | §5.3 event latency, 73→84 ms (+15 %) |
//! | `throughput` | §5.3 end-to-end throughput, 4455→3817 ev/s (−17 %) |
//! | `breakdown`  | Figure 5 per-phase latency split |
//! | `tcb`        | §5.2 trusted-codebase line counts |
//! | `microbench` | ablations of the individual mechanisms |
//!
//! Absolute numbers will differ (compiled Rust vs. Ruby on 2011 hardware);
//! the *shape* — relative overheads and breakdown ordering — is the
//! reproduction target. Each bench prints a paper-vs-measured summary that
//! `EXPERIMENTS.md` records.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::Duration;

use safeweb_mdt::registry::RegistryConfig;
use safeweb_mdt::units::ProducerConfig;
use safeweb_mdt::{MdtPortal, PortalConfig, VulnConfig};
use safeweb_web::SafeWebApp;

/// The portal sizing used by the macro benches: one front page listing
/// ~100 records, mirroring the paper's MDT front page — but 20 MDTs
/// instead of the seed's 2, so the application database holds 10× the
/// documents while each page stays the same size. With the seed's O(n)
/// view scans this sizing degraded page latency linearly; the indexed
/// store keeps it flat (see the `docstore` bench for the isolated curve).
pub fn bench_registry() -> RegistryConfig {
    RegistryConfig {
        regions: 1,
        hospitals_per_region: 1,
        mdts_per_hospital: 20,
        patients_per_mdt: 100,
        seed: 0xbe1c4,
    }
}

/// Password-hash cost for the benches. Calibrated so that authentication
/// dominates page latency as in the paper (87 ms of 180 ms on their Ruby
/// stack; proportionally scaled here).
pub const BENCH_AUTH_ITERATIONS: u32 = 1_300_000;

/// Builds a settled portal + frontend pair.
///
/// `tracking` toggles the §5.3 baseline: `false` disables label tracking
/// in the engine *and* the frontend's response check.
pub fn bench_portal(tracking: bool) -> (MdtPortal, SafeWebApp) {
    let portal = MdtPortal::build(PortalConfig {
        registry: bench_registry(),
        producer: ProducerConfig {
            interval: Duration::from_millis(5),
            batch: 200,
        },
        vuln: VulnConfig::default(),
        auth_iterations: BENCH_AUTH_ITERATIONS,
        replication_interval: Duration::from_millis(10),
        label_tracking: tracking,
        ..PortalConfig::default()
    });
    portal.wait_for_pipeline(Duration::from_secs(120));
    let mut app = portal.frontend(&VulnConfig::default());
    if !tracking {
        app = app.with_options(safeweb_web::FrontendOptions {
            label_checking: false,
            ..Default::default()
        });
    }
    (portal, app)
}

/// Pretty-prints a paper-vs-measured comparison row.
pub fn report_row(label: &str, paper: &str, measured: &str) {
    eprintln!("  {label:<38} paper: {paper:<22} measured: {measured}");
}

/// Percentage overhead of `with` over `without`.
pub fn overhead_pct(without: f64, with: f64) -> f64 {
    if without <= 0.0 {
        return 0.0;
    }
    (with - without) / without * 100.0
}
