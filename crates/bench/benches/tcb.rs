//! **E10 — §5.2 "Trusted Codebase".**
//!
//! Paper: SafeWeb's taint-tracking library is 1943 LOC and the event
//! processing engine 1908 LOC; after auditing those once, per-application
//! audits shrink to the privileged units (138 LOC) and the frontend
//! privilege-assignment code (142 LOC) — the remaining 2841 LOC of the
//! MDT application need no security audit.
//!
//! This harness counts the equivalent lines in this repository and prints
//! the same table: the one-time-audited middleware TCB vs. the
//! per-application audited slice vs. the unaudited application logic.
//!
//! Run with `cargo bench -p safeweb-bench --bench tcb`.

use std::path::Path;

fn main() {
    let root = workspace_root();
    eprintln!("=== E10: trusted codebase (paper §5.2) ===\n");

    // One-time-audited middleware TCB (the paper names the taint-tracking
    // library and the event processing engine; this reproduction's TCB
    // additionally includes the label model and enforcement points they
    // build on).
    let taint = count_crate(&root, "taint");
    let engine = count_crate(&root, "engine");
    let labels = count_crate(&root, "labels");
    let broker = count_crate(&root, "broker");
    let web = count_crate(&root, "web");

    eprintln!("one-time audited middleware (TCB):");
    row("taint-tracking library", Some(1943), taint);
    row("event processing engine", Some(1908), engine);
    row("label model & policy", None, labels);
    row("IFC-aware broker", None, broker);
    row("web frontend middleware", None, web);
    eprintln!();

    // Per-application audited slice: the privileged units (which hold
    // declassification power / I/O) and the privilege-assignment code.
    let units = count_file(&root, "crates/mdt/src/units.rs");
    let labels_mdt = count_file(&root, "crates/mdt/src/labels.rs");
    let app_total = count_crate(&root, "mdt");
    let audited_app = units + labels_mdt;

    eprintln!("per-application audit (MDT portal):");
    row("privileged units + aggregation", Some(138), units);
    row("privilege assignment (labels.rs)", Some(142), labels_mdt);
    row("application total", Some(3121), app_total);
    row(
        "application code needing no audit",
        Some(2841),
        app_total - audited_app,
    );
    let pct = (app_total - audited_app) as f64 / app_total as f64 * 100.0;
    let paper_pct = 2841.0 / 3121.0 * 100.0;
    eprintln!("\n  unaudited fraction of application: paper {paper_pct:.0}% — measured {pct:.0}%");
    eprintln!(
        "  (absolute LOC differ — Rust vs Ruby — the reproduced shape is that the\n   audited slice is a small fraction of the application)"
    );
}

fn row(label: &str, paper: Option<usize>, measured: usize) {
    let paper = paper.map_or("—".to_string(), |p| format!("{p} LOC"));
    eprintln!("  {label:<38} paper: {paper:<12} measured: {measured} LOC");
}

fn workspace_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

/// Counts non-blank, non-comment lines of all Rust sources in a crate's
/// src/ (tests excluded via `#[cfg(test)]` block stripping heuristic: the
/// paper's LOC figures are implementation lines).
fn count_crate(root: &Path, krate: &str) -> usize {
    let src = root.join("crates").join(krate).join("src");
    let mut total = 0;
    let mut stack = vec![src];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                total += count_source(&path);
            }
        }
    }
    total
}

fn count_file(root: &Path, rel: &str) -> usize {
    count_source(&root.join(rel))
}

fn count_source(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    let mut count = 0;
    let mut in_test_mod = false;
    let mut depth = 0usize;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            in_test_mod = true;
            depth = 0;
            continue;
        }
        if in_test_mod {
            depth += trimmed.matches('{').count();
            let closes = trimmed.matches('}').count();
            if closes > 0 {
                if depth <= closes {
                    in_test_mod = false;
                }
                depth = depth.saturating_sub(closes);
            }
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        count += 1;
    }
    count
}
