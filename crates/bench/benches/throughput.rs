//! **E3 — §5.3 end-to-end event throughput.**
//!
//! Paper: a synthetic producer/consumer pair sustains 4455 events/second
//! without label tracking and 3817 events/second with it (−17 %), sampled
//! once per second for 1000 seconds. This bench pumps batches through the
//! same pair (embedded broker, jailed consumer unit) with tracking on and
//! off, and reports the sustained rates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use safeweb_bench::report_row;
use safeweb_broker::{oracle::LinearBroker, Broker, BrokerOptions, Delivery};
use safeweb_engine::{Engine, EngineOptions, UnitSpec};
use safeweb_events::{Event, LabelledEvent};
use safeweb_labels::{Label, Policy};

struct Pair {
    broker: Broker,
    consumed: Arc<AtomicU64>,
    _engine: safeweb_engine::EngineHandle,
    /// One pre-built labelled event per patient bucket; the pump cycles
    /// through them so publishing measures delivery, not event building.
    templates: Vec<LabelledEvent>,
}

/// A ~500-byte JSON payload of the shape units exchange.
fn payload() -> String {
    let mut body = safeweb_json::Value::object();
    for i in 0..20 {
        body.set(&format!("field_{i:02}"), format!("value-{i}"));
    }
    body.set("case", 33812769);
    body.to_json()
}

/// Both configurations process the **same labelled workload** — the paper
/// compares the middleware with tracking enabled vs disabled, not
/// labelled vs unlabelled data. Events rotate through 50 patient labels;
/// the consumer is the paper's Listing 1 shape (fold each event into
/// jailed key-value state), so tracking-mode work includes real label
/// merging through the store.
fn build_pair(tracking: bool, aggregating: bool) -> Pair {
    let policy: Policy = "unit consumer {\n clearance label:conf:e/* \n}"
        .parse()
        .unwrap();
    let broker = Broker::with_options(BrokerOptions {
        label_filtering: tracking,
    });
    let consumed = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&consumed);
    let mut engine = Engine::new(Arc::new(broker.clone()), policy).with_options(EngineOptions {
        label_tracking: tracking,
        ..EngineOptions::default()
    });
    engine
        .add_unit(
            UnitSpec::new("consumer").subscribe("/stream", None, move |jail, event| {
                // Parse the payload, as every real unit does.
                let parsed = safeweb_json::Value::parse(event.payload().unwrap_or("{}"))
                    .map_err(|e| safeweb_engine::UnitError::BadEvent(e.to_string()))?;
                let case = parsed
                    .get("case")
                    .and_then(safeweb_json::Value::as_i64)
                    .unwrap_or(0);
                if aggregating {
                    // Listing 1: fold the event into per-bucket accumulated
                    // state. Under tracking, reading/writing the store merges
                    // the stored labels into $LABELS and back — the
                    // label-intensive mode.
                    let bucket = format!("acc/{}", event.attr("bucket").unwrap_or("0"));
                    let mut list = jail.get(&bucket).unwrap_or_default();
                    if list.len() > 4096 {
                        list.clear();
                    }
                    list.push_str(&case.to_string());
                    list.push(',');
                    jail.set(&bucket, list, safeweb_engine::Relabel::keep())?;
                }
                counter.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }),
        )
        .unwrap();
    let handle = engine.start().unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let templates = (0..8)
        .map(|i| {
            Event::new("/stream")
                .unwrap()
                .with_attr("type", "synthetic")
                .with_attr("bucket", &i.to_string())
                .with_payload(payload())
                .with_labels([
                    Label::conf("e", &format!("patient/{i}")),
                    Label::conf("e", "mdt/a"),
                    Label::int("e", "mdt"),
                ])
        })
        .collect();
    Pair {
        broker,
        consumed,
        _engine: handle,
        templates,
    }
}

impl Pair {
    /// Publishes `n` events (cycling through the patient-labelled
    /// templates, as the MDT producer cycles through cases) and waits for
    /// the consumer to drain them.
    fn pump(&self, n: u64) -> Duration {
        let start_count = self.consumed.load(Ordering::Relaxed);
        let start = Instant::now();
        for i in 0..n {
            self.broker.publish(&self.templates[(i % 8) as usize]);
        }
        while self.consumed.load(Ordering::Relaxed) < start_count + n {
            std::hint::spin_loop();
        }
        start.elapsed()
    }
}

/// Sustained rates for a with/without pair: batches are interleaved so
/// machine-load drift affects both configurations equally, and the
/// **median** per-round rate is reported so scheduler hiccups on shared
/// hardware do not dominate (the paper sampled throughput once per second
/// for 1000 seconds for the same reason).
fn sustained_rates(with: &Pair, without: &Pair, total: u64) -> (f64, f64) {
    let rounds = 20;
    let per_round = total / rounds;
    // Warm both sides first.
    with.pump(per_round);
    without.pump(per_round);
    let mut with_rates = Vec::with_capacity(rounds as usize);
    let mut without_rates = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        let t = with.pump(per_round);
        with_rates.push(per_round as f64 / t.as_secs_f64());
        let t = without.pump(per_round);
        without_rates.push(per_round as f64 / t.as_secs_f64());
    }
    (median(&mut with_rates), median(&mut without_rates))
}

fn median(rates: &mut [f64]) -> f64 {
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn bench_throughput(c: &mut Criterion) {
    let with = build_pair(true, true);
    let without = build_pair(false, true);
    const BATCH: u64 = 5_000;

    let mut group = c.benchmark_group("event_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10))
        .throughput(Throughput::Elements(BATCH));

    group.bench_function("with_label_tracking", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += with.pump(BATCH);
            }
            total
        });
    });
    group.bench_function("without_label_tracking", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += without.pump(BATCH);
            }
            total
        });
    });
    group.finish();

    // Paper-style sustained-rate summary, at two label intensities. The
    // paper reports a single -17% point for its Ruby implementation; in
    // this Rust implementation the cost of tracking depends on how much
    // labelled state the consumer touches, so both ends of the range are
    // reported (see EXPERIMENTS.md).
    eprintln!("\n=== E3: end-to-end event throughput (paper §5.3) ===");

    let (with_rate, without_rate) = sustained_rates(&with, &without, 50_000);
    let drop_pct = (without_rate - with_rate) / without_rate * 100.0;
    eprintln!("  [aggregating consumer — Listing 1 shape]");
    report_row(
        "throughput without tracking",
        "4455 events/s",
        &format!("{without_rate:.0} events/s"),
    );
    report_row(
        "throughput with tracking",
        "3817 events/s",
        &format!("{with_rate:.0} events/s"),
    );
    report_row("reduction", "-17 %", &format!("-{drop_pct:.1} %"));

    let with_static = build_pair(true, false);
    let without_static = build_pair(false, false);
    let (ws, wos) = sustained_rates(&with_static, &without_static, 50_000);
    let drop_static = (wos - ws) / wos * 100.0;
    eprintln!("  [stateless consumer — static labels]");
    report_row(
        "throughput without tracking",
        "4455 events/s",
        &format!("{wos:.0} events/s"),
    );
    report_row(
        "throughput with tracking",
        "3817 events/s",
        &format!("{ws:.0} events/s"),
    );
    report_row("reduction", "-17 %", &format!("-{drop_static:.1} %"));
}

/// How subscriptions relate to the published topic in the publish-path
/// benches.
#[derive(Clone, Copy)]
enum Matching {
    /// One subscription on the hot exact topic; the rest on distinct cold
    /// exact topics. Measures routing: the sharded index touches 1
    /// subscription, the linear scan walks all of them.
    ExactOne,
    /// Every subscription on the hot topic. Measures fan-out delivery:
    /// `Arc` sharing vs one deep clone per subscriber.
    ExactAll,
    /// One prefix subscription (`/hot/*`) among cold exact topics;
    /// publishes go to a nested topic. Measures the trie path.
    PrefixOne,
}

struct PublishFixture {
    sharded: Broker,
    linear: LinearBroker,
    sharded_rx: Vec<crossbeam::channel::Receiver<Delivery>>,
    linear_rx: Vec<crossbeam::channel::Receiver<Delivery>>,
    event: LabelledEvent,
}

fn publish_fixture(total_subs: usize, matching: Matching) -> PublishFixture {
    let sharded = Broker::new();
    let mut linear = LinearBroker::new();
    let mut sharded_rx = Vec::new();
    let mut linear_rx = Vec::new();
    for i in 0..total_subs {
        let destination = match matching {
            Matching::ExactAll => "/hot".to_string(),
            Matching::ExactOne | Matching::PrefixOne if i == 0 => match matching {
                Matching::PrefixOne => "/hot/*".to_string(),
                _ => "/hot".to_string(),
            },
            _ => format!("/cold/{i}"),
        };
        let id = i.to_string();
        sharded_rx.push(sharded.subscribe("bench", &id, &destination, None, Default::default()));
        linear_rx.push(linear.subscribe("bench", &id, &destination, None, Default::default()));
    }
    let topic = match matching {
        Matching::PrefixOne => "/hot/daily/report",
        _ => "/hot",
    };
    let event = Event::new(topic)
        .unwrap()
        .with_attr("type", "synthetic")
        .with_payload(payload())
        .with_labels([Label::int("e", "mdt")]);
    PublishFixture {
        sharded,
        linear,
        sharded_rx,
        linear_rx,
        event,
    }
}

fn drain(receivers: &[crossbeam::channel::Receiver<Delivery>]) {
    for rx in receivers {
        while rx.try_recv().is_ok() {}
    }
}

/// Events per second for publishing pre-built batches of `n` events.
/// Event construction and receiver draining stay outside the timed
/// window on every path, so linear scan, sharded single and sharded
/// batch publishing are charged only for what happens inside the broker.
fn rate_of(
    n: u64,
    template: &LabelledEvent,
    mut publish: impl FnMut(Vec<LabelledEvent>),
    mut flush: impl FnMut(),
) -> f64 {
    let build = |k: u64| -> Vec<LabelledEvent> { (0..k).map(|_| template.clone()).collect() };
    // One warm round, then the median of five.
    publish(build(n / 5));
    flush();
    let mut rates = Vec::new();
    for _ in 0..5 {
        let batch = build(n);
        let start = Instant::now();
        publish(batch);
        let elapsed = start.elapsed();
        flush();
        rates.push(n as f64 / elapsed.as_secs_f64());
    }
    median(&mut rates)
}

/// **Publish-path comparison** for the sharded broker refactor: linear
/// scan vs sharded index, single vs batched publish, exact vs prefix
/// topics, at increasing subscription counts. The interesting acceptance
/// point: batched sharded publishing must beat the linear single-publish
/// scan at ≥ 100 subscriptions.
fn bench_publish_path(c: &mut Criterion) {
    const CHUNK: u64 = 512;
    const BATCH: usize = 64;

    for (label, matching) in [
        ("exact_1match", Matching::ExactOne),
        ("prefix_1match", Matching::PrefixOne),
        ("exact_fanout", Matching::ExactAll),
    ] {
        let mut group = c.benchmark_group(format!("publish_path/{label}"));
        group.throughput(Throughput::Elements(CHUNK));
        for subs in [1usize, 100, 1000] {
            let fixture = publish_fixture(subs, matching);
            // Fan-out to 1000 matching subscribers is deliberately capped
            // at 100 for the linear side: the deep clones make it too
            // slow to sample politely.
            let heavy_fanout = matches!(matching, Matching::ExactAll) && subs > 100;

            let build =
                |k: u64| -> Vec<LabelledEvent> { (0..k).map(|_| fixture.event.clone()).collect() };
            group.bench_function(format!("sharded_single_{subs}subs"), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let batch = build(CHUNK);
                        let start = Instant::now();
                        for event in &batch {
                            fixture.sharded.publish(event);
                        }
                        total += start.elapsed();
                        drain(&fixture.sharded_rx);
                    }
                    total
                });
            });
            group.bench_function(format!("sharded_batch{BATCH}_{subs}subs"), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let batches: Vec<Vec<LabelledEvent>> = (0..CHUNK / BATCH as u64)
                            .map(|_| build(BATCH as u64))
                            .collect();
                        let start = Instant::now();
                        for batch in batches {
                            fixture.sharded.publish_batch(batch);
                        }
                        total += start.elapsed();
                        drain(&fixture.sharded_rx);
                    }
                    total
                });
            });
            if !heavy_fanout {
                group.bench_function(format!("linear_single_{subs}subs"), |b| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let batch = build(CHUNK);
                            let start = Instant::now();
                            for event in &batch {
                                fixture.linear.publish(event);
                            }
                            total += start.elapsed();
                            drain(&fixture.linear_rx);
                        }
                        total
                    });
                });
            }
        }
        group.finish();
    }

    // Acceptance summary: batched sharded routing vs the old linear
    // single-publish scan at 100 subscriptions (one matching).
    eprintln!("\n=== Publish path: sharded+batched vs linear scan ===");
    for (label, matching) in [
        ("exact, 1 of 100 matches", Matching::ExactOne),
        ("prefix, 1 of 100 matches", Matching::PrefixOne),
        ("exact, 100 of 100 match", Matching::ExactAll),
    ] {
        let fixture = publish_fixture(100, matching);
        let linear_rate = rate_of(
            CHUNK,
            &fixture.event,
            |events| {
                for event in &events {
                    fixture.linear.publish(event);
                }
            },
            || drain(&fixture.linear_rx),
        );
        let batch_rate = rate_of(
            CHUNK,
            &fixture.event,
            |mut events| {
                while !events.is_empty() {
                    let rest = events.split_off(events.len().min(BATCH));
                    fixture.sharded.publish_batch(events);
                    events = rest;
                }
            },
            || drain(&fixture.sharded_rx),
        );
        eprintln!(
            "  [{label:<26}] linear scan: {linear_rate:>9.0} ev/s   batched sharded: \
             {batch_rate:>9.0} ev/s   (x{:.1})",
            batch_rate / linear_rate
        );
    }
}

// ---- idle-connection frontend comparison --------------------------------

use safeweb_reactor::sys::os_thread_count as thread_count;

/// A minimal parked STOMP subscriber: CONNECT + SUBSCRIBE, then the
/// socket is simply held open. Kept deliberately tiny (one `TcpStream`,
/// no decoder buffers) so the *client* side of the bench does not
/// dominate memory at 10k connections.
struct IdleSub {
    _stream: std::net::TcpStream,
}

fn idle_subscribe(addr: &str, login: &str, topic: &str) -> std::io::Result<IdleSub> {
    use safeweb_stomp::codec::encode;
    use safeweb_stomp::{Command, Frame};
    use std::io::{Read, Write};

    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(&encode(
        &Frame::new(Command::Connect).with_header("login", login),
    ))?;
    // Read until the CONNECTED frame's NUL terminator.
    let mut byte = [0u8; 1];
    loop {
        stream.read_exact(&mut byte)?;
        if byte[0] == 0 {
            break;
        }
    }
    stream.write_all(&encode(
        &Frame::new(Command::Subscribe)
            .with_header("destination", topic)
            .with_header("id", "1"),
    ))?;
    Ok(IdleSub { _stream: stream })
}

struct IdleReport {
    connect_rate: f64,
    threads_added: usize,
    publish_rate: f64,
}

/// Parks `idle` subscribers on cold topics, then measures delivery of
/// `events` hot-topic events to one live consumer while the crowd sits
/// idle. `broker` and `addr` come from either frontend. `active_probe`
/// (the reactor's registered-connection counter) is asserted against
/// `idle + 1` while the whole crowd and the consumer are still alive.
fn run_idle_workload(
    broker: &safeweb_broker::Broker,
    addr: &str,
    idle: usize,
    events: u64,
    active_probe: Option<&dyn Fn() -> usize>,
) -> std::io::Result<IdleReport> {
    use safeweb_broker::EventClient;

    let mut consumer =
        EventClient::connect(addr, "consumer").map_err(|e| std::io::Error::other(e.to_string()))?;
    consumer
        .subscribe("/hot", None)
        .map_err(|e| std::io::Error::other(e.to_string()))?;

    let threads_before = thread_count();
    let start = Instant::now();
    let mut crowd = Vec::with_capacity(idle);
    for i in 0..idle {
        crowd.push(idle_subscribe(addr, "idler", &format!("/idle/{i}"))?);
    }
    let connect_rate = idle as f64 / start.elapsed().as_secs_f64();

    // Let the last SUBSCRIBE frames land before measuring.
    let deadline = Instant::now() + Duration::from_secs(30);
    while broker.subscription_count() < idle + 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let threads_added = thread_count().saturating_sub(threads_before);

    let template = Event::new("/hot")
        .unwrap()
        .with_attr("type", "synthetic")
        .with_payload(payload())
        .with_labels([Label::int("e", "mdt")]);
    let start = Instant::now();
    for _ in 0..events {
        broker.publish(&template);
    }
    let mut received = 0;
    while received < events {
        match consumer.next_delivery() {
            Ok(_) => received += 1,
            Err(e) => return Err(std::io::Error::other(e.to_string())),
        }
    }
    let publish_rate = events as f64 / start.elapsed().as_secs_f64();
    if let Some(active) = active_probe {
        // Acceptance: every subscriber (+ the live consumer) is held
        // concurrently by the frontend.
        assert_eq!(active(), idle + 1, "connections dropped under load");
    }
    drop(crowd);
    Ok(IdleReport {
        connect_rate,
        threads_added,
        publish_rate,
    })
}

fn idle_policy() -> Policy {
    "unit consumer {\n clearance label:conf:e/* \n}\nunit idler {\n}\n"
        .parse()
        .unwrap()
}

/// **Idle-connection axis** for the reactor refactor: thread cost and
/// hot-path delivery rate of the threaded (seed, thread-per-connection)
/// vs reactor (epoll) STOMP frontends while 100 / 1k / 10k idle
/// subscribers sit parked in the same process.
///
/// Acceptance: the reactor frontend holds 10k idle subscribers with a
/// bounded thread count (reactor + workers only), and hot-topic delivery
/// keeps working underneath them.
fn bench_idle_frontends(_c: &mut Criterion) {
    use safeweb_broker::{BrokerServer, ThreadedBrokerServer};

    // Each idle subscriber is two fds in this one process (client +
    // server end). Raise the soft limit as far as the host allows and
    // derive the top tier from the real budget — on a host with an
    // ordinary 1M hard limit the full 10k tier runs; here anything
    // smaller is reported, never silently truncated.
    let limit = safeweb_reactor::sys::raise_nofile_limit(24 * 1024);
    let fds_in_use = std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count() as u64)
        .unwrap_or(256);
    let budget = limit.saturating_sub(fds_in_use + 64) / 2;
    // A CI smoke run proves the mechanism at the 1k tier instead of
    // paying 10k connection setups.
    let tier_cap = if criterion::smoke_run() {
        1_000
    } else {
        10_000
    };
    let max_idle = budget.min(tier_cap) as usize;
    const EVENTS: u64 = 2_000;

    eprintln!("\n=== Idle-connection scaling: threaded vs reactor STOMP frontend ===");
    eprintln!(
        "  (fd soft limit {limit}, {fds_in_use} in use; top tier {max_idle} idle subscribers)"
    );

    let top_tier = [100usize, 1_000, 10_000]
        .into_iter()
        .filter(|&t| t <= max_idle)
        .count()
        < 3;
    let tiers: Vec<usize> = [100usize, 1_000, 10_000]
        .into_iter()
        .map(|t| t.min(max_idle))
        .collect();
    if top_tier {
        eprintln!("  (10k tier clamped to {max_idle} by this host's fd hard limit)");
    }
    let mut seen = std::collections::BTreeSet::new();
    for idle in tiers {
        if !seen.insert(idle) {
            continue;
        }
        // Thread-per-connection baseline above 1k idle would spawn >3k
        // OS threads; reported as the reason rather than measured.
        if idle <= 1_000 {
            let broker = Broker::new();
            let mut server =
                ThreadedBrokerServer::bind("127.0.0.1:0", broker, idle_policy()).unwrap();
            let report = run_idle_workload(
                server.broker(),
                &server.addr().to_string(),
                idle,
                EVENTS,
                None,
            )
            .expect("threaded idle workload");
            eprintln!(
                "  [threaded {idle:>6} idle] +{:>5} threads   connect {:>7.0}/s   hot publish \
                 {:>8.0} ev/s",
                report.threads_added, report.connect_rate, report.publish_rate
            );
            server.shutdown();
        } else {
            eprintln!(
                "  [threaded {idle:>6} idle] skipped: ≥{} OS threads at 3/connection",
                3 * idle
            );
        }

        let broker = Broker::new();
        let mut server = BrokerServer::bind("127.0.0.1:0", broker, idle_policy()).unwrap();
        let active = || server.active_connections();
        let report = run_idle_workload(
            server.broker(),
            &server.addr().to_string(),
            idle,
            EVENTS,
            Some(&active),
        )
        .expect("reactor idle workload");
        // Acceptance: bounded thread count (reactor + workers only).
        assert!(
            report.threads_added <= 16,
            "reactor frontend grew {} threads under {idle} idle connections",
            report.threads_added
        );
        eprintln!(
            "  [reactor  {idle:>6} idle] +{:>5} threads   connect {:>7.0}/s   hot publish \
             {:>8.0} ev/s",
            report.threads_added, report.connect_rate, report.publish_rate
        );
        server.shutdown();
    }
}

criterion_group!(
    benches,
    bench_throughput,
    bench_publish_path,
    bench_idle_frontends
);
criterion_main!(benches);
