//! **E3 — §5.3 end-to-end event throughput.**
//!
//! Paper: a synthetic producer/consumer pair sustains 4455 events/second
//! without label tracking and 3817 events/second with it (−17 %), sampled
//! once per second for 1000 seconds. This bench pumps batches through the
//! same pair (embedded broker, jailed consumer unit) with tracking on and
//! off, and reports the sustained rates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use safeweb_bench::report_row;
use safeweb_broker::{Broker, BrokerOptions};
use safeweb_engine::{Engine, EngineOptions, UnitSpec};
use safeweb_events::{Event, LabelledEvent};
use safeweb_labels::{Label, Policy};

struct Pair {
    broker: Broker,
    consumed: Arc<AtomicU64>,
    _engine: safeweb_engine::EngineHandle,
    /// One pre-built labelled event per patient bucket; the pump cycles
    /// through them so publishing measures delivery, not event building.
    templates: Vec<LabelledEvent>,
}

/// A ~500-byte JSON payload of the shape units exchange.
fn payload() -> String {
        let mut body = safeweb_json::Value::object();
        for i in 0..20 {
            body.set(&format!("field_{i:02}"), format!("value-{i}"));
        }
        body.set("case", 33812769);
        body.to_json()
    }

/// Both configurations process the **same labelled workload** — the paper
/// compares the middleware with tracking enabled vs disabled, not
/// labelled vs unlabelled data. Events rotate through 50 patient labels;
/// the consumer is the paper's Listing 1 shape (fold each event into
/// jailed key-value state), so tracking-mode work includes real label
/// merging through the store.
fn build_pair(tracking: bool, aggregating: bool) -> Pair {
    let policy: Policy = "unit consumer {\n clearance label:conf:e/* \n}".parse().unwrap();
    let broker = Broker::with_options(BrokerOptions {
        label_filtering: tracking,
    });
    let consumed = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&consumed);
    let mut engine = Engine::new(Arc::new(broker.clone()), policy)
        .with_options(EngineOptions { label_tracking: tracking });
    engine
        .add_unit(UnitSpec::new("consumer").subscribe("/stream", None, move |jail, event| {
            // Parse the payload, as every real unit does.
            let parsed = safeweb_json::Value::parse(event.payload().unwrap_or("{}"))
                .map_err(|e| safeweb_engine::UnitError::BadEvent(e.to_string()))?;
            let case = parsed.get("case").and_then(safeweb_json::Value::as_i64).unwrap_or(0);
            if aggregating {
                // Listing 1: fold the event into per-bucket accumulated
                // state. Under tracking, reading/writing the store merges
                // the stored labels into $LABELS and back — the
                // label-intensive mode.
                let bucket = format!("acc/{}", event.attr("bucket").unwrap_or("0"));
                let mut list = jail.get(&bucket).unwrap_or_default();
                if list.len() > 4096 {
                    list.clear();
                }
                list.push_str(&case.to_string());
                list.push(',');
                jail.set(&bucket, list, safeweb_engine::Relabel::keep())?;
            }
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }))
        .unwrap();
    let handle = engine.start().unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let templates = (0..8)
        .map(|i| {
            Event::new("/stream")
                .unwrap()
                .with_attr("type", "synthetic")
                .with_attr("bucket", &i.to_string())
                .with_payload(payload())
                .with_labels([
                    Label::conf("e", &format!("patient/{i}")),
                    Label::conf("e", "mdt/a"),
                    Label::int("e", "mdt"),
                ])
        })
        .collect();
    Pair {
        broker,
        consumed,
        _engine: handle,
        templates,
    }
}

impl Pair {
    /// Publishes `n` events (cycling through the patient-labelled
    /// templates, as the MDT producer cycles through cases) and waits for
    /// the consumer to drain them.
    fn pump(&self, n: u64) -> Duration {
        let start_count = self.consumed.load(Ordering::Relaxed);
        let start = Instant::now();
        for i in 0..n {
            self.broker.publish(&self.templates[(i % 8) as usize]);
        }
        while self.consumed.load(Ordering::Relaxed) < start_count + n {
            std::hint::spin_loop();
        }
        start.elapsed()
    }

}

/// Sustained rates for a with/without pair: batches are interleaved so
/// machine-load drift affects both configurations equally, and the
/// **median** per-round rate is reported so scheduler hiccups on shared
/// hardware do not dominate (the paper sampled throughput once per second
/// for 1000 seconds for the same reason).
fn sustained_rates(with: &Pair, without: &Pair, total: u64) -> (f64, f64) {
    let rounds = 20;
    let per_round = total / rounds;
    // Warm both sides first.
    with.pump(per_round);
    without.pump(per_round);
    let mut with_rates = Vec::with_capacity(rounds as usize);
    let mut without_rates = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        let t = with.pump(per_round);
        with_rates.push(per_round as f64 / t.as_secs_f64());
        let t = without.pump(per_round);
        without_rates.push(per_round as f64 / t.as_secs_f64());
    }
    (median(&mut with_rates), median(&mut without_rates))
}

fn median(rates: &mut [f64]) -> f64 {
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

fn bench_throughput(c: &mut Criterion) {
    let with = build_pair(true, true);
    let without = build_pair(false, true);
    const BATCH: u64 = 5_000;

    let mut group = c.benchmark_group("event_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10))
        .throughput(Throughput::Elements(BATCH));

    group.bench_function("with_label_tracking", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += with.pump(BATCH);
            }
            total
        });
    });
    group.bench_function("without_label_tracking", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += without.pump(BATCH);
            }
            total
        });
    });
    group.finish();

    // Paper-style sustained-rate summary, at two label intensities. The
    // paper reports a single -17% point for its Ruby implementation; in
    // this Rust implementation the cost of tracking depends on how much
    // labelled state the consumer touches, so both ends of the range are
    // reported (see EXPERIMENTS.md).
    eprintln!("\n=== E3: end-to-end event throughput (paper §5.3) ===");

    let (with_rate, without_rate) = sustained_rates(&with, &without, 50_000);
    let drop_pct = (without_rate - with_rate) / without_rate * 100.0;
    eprintln!("  [aggregating consumer — Listing 1 shape]");
    report_row(
        "throughput without tracking",
        "4455 events/s",
        &format!("{without_rate:.0} events/s"),
    );
    report_row(
        "throughput with tracking",
        "3817 events/s",
        &format!("{with_rate:.0} events/s"),
    );
    report_row("reduction", "-17 %", &format!("-{drop_pct:.1} %"));

    let with_static = build_pair(true, false);
    let without_static = build_pair(false, false);
    let (ws, wos) = sustained_rates(&with_static, &without_static, 50_000);
    let drop_static = (wos - ws) / wos * 100.0;
    eprintln!("  [stateless consumer — static labels]");
    report_row(
        "throughput without tracking",
        "4455 events/s",
        &format!("{wos:.0} events/s"),
    );
    report_row(
        "throughput with tracking",
        "3817 events/s",
        &format!("{ws:.0} events/s"),
    );
    report_row("reduction", "-17 %", &format!("-{drop_static:.1} %"));
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
