//! **Scheduler axis** for the engine's worker-pool rework: thread cost
//! and hot-path delivery rate of the thread-per-unit engine (the seed
//! model, kept as `ExecutionMode::Threaded`) vs the work-stealing
//! scheduler (`crates/sched`) at 100 / 1k / 10k units in one process.
//!
//! Acceptance: the scheduled engine holds **10k units at `+workers`
//! threads** — thread count independent of unit count — and hot-topic
//! delivery keeps working underneath the idle crowd. The threaded
//! baseline is skipped at 10k (it would be 10k OS threads), mirroring
//! how the idle-connection bench treats the thread-per-connection
//! frontend.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use safeweb_broker::Broker;
use safeweb_engine::{
    Engine, EngineHandle, EngineOptions, ExecutionMode, SchedulerOptions, UnitSpec,
};
use safeweb_events::{Event, LabelledEvent};
use safeweb_labels::Policy;
use safeweb_reactor::sys::os_thread_count;

/// Worker-pool size used throughout; the acceptance bound.
const WORKERS: usize = 4;
/// Topics actually receiving traffic while the rest of the fleet idles.
const HOT_TOPICS: usize = 64;

struct Fleet {
    broker: Broker,
    consumed: Arc<AtomicU64>,
    _handle: EngineHandle,
    templates: Vec<LabelledEvent>,
    /// OS threads the engine start added.
    threads_added: usize,
    /// Units per second through `Engine::start`.
    startup_rate: f64,
}

fn scheduled_mode() -> ExecutionMode {
    ExecutionMode::Scheduled(SchedulerOptions {
        workers: WORKERS,
        inbox_cap: 1024,
        burst: 128,
        name: "bench-sched".to_string(),
        ..Default::default()
    })
}

/// One counting unit per distinct topic; events carry no labels so the
/// bench isolates the execution model, not the label machinery (the
/// throughput bench owns that axis).
fn build_fleet(units: usize, mode: ExecutionMode) -> Fleet {
    let broker = Broker::new();
    let consumed = Arc::new(AtomicU64::new(0));
    let mut engine =
        Engine::new(Arc::new(broker.clone()), Policy::new()).with_options(EngineOptions {
            execution: mode,
            ..EngineOptions::default()
        });
    for i in 0..units {
        let counter = Arc::clone(&consumed);
        engine
            .add_unit(UnitSpec::new(&format!("u{i}")).subscribe(
                &format!("/u/{i}"),
                None,
                move |_jail, _event| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                },
            ))
            .expect("unique unit names");
    }
    let threads_before = os_thread_count();
    let start = Instant::now();
    let handle = engine.start().expect("engine starts");
    let startup_rate = units as f64 / start.elapsed().as_secs_f64();
    let threads_added = os_thread_count().saturating_sub(threads_before);
    let templates = (0..HOT_TOPICS.min(units))
        .map(|i| {
            Event::new(&format!("/u/{i}"))
                .unwrap()
                .with_attr("type", "synthetic")
                .with_labels([])
        })
        .collect();
    Fleet {
        broker,
        consumed,
        _handle: handle,
        templates,
        threads_added,
        startup_rate,
    }
}

impl Fleet {
    /// Publishes `n` events round-robin over the hot topics and waits
    /// for the fleet to drain them.
    fn pump(&self, n: u64) -> Duration {
        let start_count = self.consumed.load(Ordering::Relaxed);
        let start = Instant::now();
        for i in 0..n {
            self.broker
                .publish(&self.templates[(i as usize) % self.templates.len()]);
        }
        while self.consumed.load(Ordering::Relaxed) < start_count + n {
            std::hint::spin_loop();
        }
        start.elapsed()
    }
}

fn bench_sched(c: &mut Criterion) {
    // A smoke run proves the mechanism at the 1k tier instead of paying
    // 10k subscriptions (and the 1k-thread baseline) in CI.
    let tiers: &[usize] = if criterion::smoke_run() {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000]
    };
    const CHUNK: u64 = 2_000;

    eprintln!("\n=== Unit scaling: thread-per-unit vs scheduled engine ===");
    eprintln!("  (pool: {WORKERS} workers; traffic on {HOT_TOPICS} hot topics)");

    let mut group = c.benchmark_group("sched_hot_path");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .throughput(Throughput::Elements(CHUNK));

    for &units in tiers {
        let fleet = build_fleet(units, scheduled_mode());
        // Acceptance: the pool, not the fleet, sets the thread count —
        // at 10k units exactly as at 100.
        assert!(
            fleet.threads_added <= WORKERS + 1,
            "scheduled engine grew {} threads for {units} units (expected ≤ {})",
            fleet.threads_added,
            WORKERS + 1
        );
        let rate = {
            let elapsed = fleet.pump(CHUNK);
            CHUNK as f64 / elapsed.as_secs_f64()
        };
        eprintln!(
            "  [scheduled {units:>6} units] +{:>5} threads   start {:>8.0} u/s   hot publish \
             {:>8.0} ev/s",
            fleet.threads_added, fleet.startup_rate, rate
        );
        group.bench_function(format!("scheduled_{units}units"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += fleet.pump(CHUNK);
                }
                total
            });
        });
        drop(fleet);

        // Thread-per-unit baseline: at 10k units it would be 10k OS
        // threads; reported as the reason rather than measured.
        if units <= 1_000 {
            let fleet = build_fleet(units, ExecutionMode::Threaded);
            let rate = {
                let elapsed = fleet.pump(CHUNK);
                CHUNK as f64 / elapsed.as_secs_f64()
            };
            eprintln!(
                "  [threaded  {units:>6} units] +{:>5} threads   start {:>8.0} u/s   hot publish \
                 {:>8.0} ev/s",
                fleet.threads_added, fleet.startup_rate, rate
            );
            group.bench_function(format!("threaded_{units}units"), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += fleet.pump(CHUNK);
                    }
                    total
                });
            });
        } else {
            eprintln!(
                "  [threaded  {units:>6} units] skipped: one OS thread per unit (≥{units} threads)"
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
