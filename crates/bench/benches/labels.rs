//! **Interned label lattice at scale** (ISSUE 9 acceptance bench).
//!
//! Three questions, each at 10 / 1 000 / 100 000 principals:
//!
//! * **intern** — what does it cost to turn a label list into a
//!   `LabelSet` handle when the set is already in the hash-cons table
//!   (the steady-state path every event derivation takes)?
//! * **compare** — `LabelSet` equality must be one id compare, flat in
//!   both set width and universe size.
//! * **flows_to** — a cold check walks the privilege list (linear in the
//!   clearance size), but a *repeated* check is a memo hit keyed by
//!   `(LabelSetId, PrivilegeSetId)`; the bench asserts the repeated path
//!   is ≥10× faster than the cold path at 1k+ principals, which is the
//!   claim that makes per-request label checking affordable at scale.
//!
//! Plus the **per-clearance render cache**: one frontend request on a
//! cached route, hit vs miss, proving the cache converts the rendered
//! page's handler + label-check cost into a lookup.
//!
//! `SAFEWEB_BENCH_JSON` records medians for `bench_gate` against
//! `crates/bench/baselines/labels.json`.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use safeweb_docstore::DocStore;
use safeweb_http::{Method, Request};
use safeweb_json::jobject;
use safeweb_labels::{Label, LabelSet, Privilege, PrivilegeSet};
use safeweb_relstore::Database;
use safeweb_taint::SStr;
use safeweb_web::{AuthConfig, Ctx, SResponse, SafeWebApp, UserStore};

/// One tenant principal out of the universe.
fn principal(i: usize) -> Label {
    Label::conf("bench.labels", &format!("tenant/{i}"))
}

/// A clearance over every one of `n` principals — the widest privilege
/// set a tier holds, so cold `flows_to` pays the full linear scan.
fn clearance_over(n: usize) -> PrivilegeSet {
    (0..n).map(|i| Privilege::clearance(principal(i))).collect()
}

/// `count` deterministic 4-label data sets over an `n`-principal universe.
fn data_sets(n: usize, count: usize) -> Vec<LabelSet> {
    (0..count)
        .map(|s| LabelSet::from_iter((0..4).map(|j| principal((s * 7919 + j * 104_729) % n))))
        .collect()
}

fn time_per_call_us(mut f: impl FnMut() -> bool, calls: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..calls {
        black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / calls as f64
}

/// A frontend with one route over `docs` labelled documents, registered
/// cached or uncached, plus one cleared user.
fn render_app(cached: bool, docs: usize) -> SafeWebApp {
    let users = UserStore::new(
        Database::new("web"),
        AuthConfig {
            hash_iterations: 200,
        },
    );
    let mut privs = PrivilegeSet::new();
    privs.grant(Privilege::clearance(Label::conf("bench.web", "mdt/a")));
    users.create_user("mdt_a", "pw", &privs, false).unwrap();

    let records = DocStore::new("bench-render");
    records.create_view("by_mid", "mdt_id");
    for r in 0..docs {
        records
            .put(
                &format!("rec-{r:05}"),
                jobject! {"mdt_id" => "a", "case_id" => r as i64, "note" => "0123456789abcdef"},
                LabelSet::singleton(Label::conf("bench.web", "mdt/a")),
                None,
            )
            .unwrap();
    }

    fn board(ctx: &Ctx<'_>) -> SResponse {
        let mid = ctx.param_raw("mid").unwrap_or("");
        let docs = ctx.records_by("by_mid", mid);
        let body = SStr::concat_all(
            docs.iter()
                .map(|d| d.to_json_sstr())
                .collect::<Vec<_>>()
                .iter(),
        );
        SResponse::json(body)
    }

    let mut app = SafeWebApp::new(users, records);
    if cached {
        app.get_cached("/records/:mid", board);
    } else {
        app.get("/records/:mid", board);
    }
    app
}

fn bench_labels(c: &mut Criterion) {
    let smoke = criterion::smoke_run();

    // --- The lattice at 10 / 1k / 100k principals -----------------------
    let tiers: &[(usize, &str)] = &[(10, "10"), (1_000, "1k"), (100_000, "100k")];
    let mut summary: Vec<(&str, f64, f64, f64, f64, f64)> = Vec::new();

    let mut group = c.benchmark_group("labels");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    for &(n, tag) in tiers {
        let privileges = clearance_over(n);
        // Fewer cold probes where each one is expensive (100k-privilege
        // linear scans) — the cold number is a reference point, not a
        // gated median.
        let cold_count = if n >= 100_000 {
            if smoke {
                20
            } else {
                50
            }
        } else {
            500
        };
        let warm_sets = data_sets(n, 256);
        let cold_sets = data_sets(n, cold_count + 256)[256..].to_vec();

        // Interning when the set already exists: the steady-state path.
        let labels: Vec<Label> = (0..4).map(principal).collect();
        let _ = LabelSet::from_iter(labels.clone());
        group.bench_function(format!("intern_hit_{tag}"), |b| {
            b.iter(|| LabelSet::from_iter(black_box(labels.clone())))
        });

        // Equality is one id compare however many principals exist.
        let a = LabelSet::from_iter(labels.clone());
        let b2 = LabelSet::from_iter(labels.clone());
        group.bench_function(format!("compare_{tag}"), |b| {
            b.iter(|| black_box(&a) == black_box(&b2))
        });

        // Cold flows_to: fresh (set, privileges) pairs, full privilege
        // walk. Measured once per pair — the second visit would be warm.
        let cold_us = {
            let mut i = 0;
            time_per_call_us(
                || {
                    let v = cold_sets[i % cold_sets.len()].flows_to(&privileges);
                    i += 1;
                    v
                },
                cold_sets.len(),
            )
        };

        // Warm the repeated pairs, then measure the memo-hit path.
        for set in &warm_sets {
            black_box(set.flows_to(&privileges));
        }
        let warm_us = {
            let mut i = 0;
            time_per_call_us(
                || {
                    let v = warm_sets[i % warm_sets.len()].flows_to(&privileges);
                    i += 1;
                    v
                },
                4_096,
            )
        };
        group.bench_function(format!("flows_to_repeated_{tag}"), |b| {
            let mut i = 0;
            b.iter(|| {
                i += 1;
                warm_sets[i % warm_sets.len()].flows_to(black_box(&privileges))
            })
        });

        let speedup = cold_us / warm_us.max(1e-9);
        summary.push((
            tag,
            LabelSet::interned_count() as f64,
            PrivilegeSet::interned_count() as f64,
            cold_us,
            warm_us,
            speedup,
        ));
    }
    group.finish();

    eprintln!("\n=== interned lattice: flows_to across principal tiers ===");
    for (tag, sets, privs, cold_us, warm_us, speedup) in &summary {
        eprintln!(
            "  {tag:>4} principals: cold {cold_us:>9.3} us | repeated (memo) {warm_us:>7.4} us | speedup {speedup:>7.1}x  (tables: {sets:.0} sets / {privs:.0} priv-sets)",
        );
    }
    for (tag, _, _, _, _, speedup) in &summary {
        if *tag != "10" {
            assert!(
                *speedup >= 10.0,
                "repeated flows_to at {tag} principals must be >=10x the cold path, got {speedup:.1}x"
            );
        }
    }

    // --- Per-clearance render cache: hit vs miss ------------------------
    let docs = if smoke { 64 } else { 256 };
    let cached_app = render_app(true, docs);
    let uncached_app = render_app(false, docs);
    let request = Request::new(Method::Get, "/records/a").with_basic_auth("mdt_a", "pw");
    // Warm both: auth rows, view index, and the cached page itself.
    assert_eq!(cached_app.handle(&request).status(), 200);
    assert_eq!(uncached_app.handle(&request).status(), 200);

    let mut group = c.benchmark_group("render_cache");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("hit", |b| {
        b.iter(|| cached_app.handle(black_box(&request)).status())
    });
    group.bench_function("miss", |b| {
        b.iter(|| uncached_app.handle(black_box(&request)).status())
    });
    group.finish();

    let hits = cached_app.stats().render_cache_hits();
    assert!(hits > 0, "the cached app must have served from the cache");
    eprintln!(
        "\n=== per-clearance render cache ({docs} labelled docs per page) ===\n  \
         cache hits {hits} | every hit skips the handler and the label re-check"
    );
}

criterion_group!(benches, bench_labels);
criterion_main!(benches);
