//! **E9 — backend document-store scaling** (beyond the paper).
//!
//! The ROADMAP drives the portal benches into the application database:
//! this bench isolates the three docstore mechanisms that keep the
//! backend flat as the synthetic registry grows 10×.
//!
//! * **View queries**: the incrementally indexed `query_view` versus the
//!   seed's linear scan over every document — per-MDT record listings
//!   must cost the same at 2 000 and at 20 000 documents.
//! * **Prefix listings**: `scan_prefix` range queries versus a
//!   `starts_with` scan for a fixed id family.
//! * **Changes feed**: sustained writes with auto-compaction keep the
//!   feed (and therefore replication scans and memory) bounded; the
//!   deduplicated replicator writes each document once per batch however
//!   many superseded revisions the feed holds.
//! * **Durable mode**: the WAL tax on the put path (append + frame +
//!   checksum per write) and the snapshot-then-replay recovery cost of
//!   [`DocStore::open`].
//!
//! `SAFEWEB_BENCH_SMOKE=1` (CI) shrinks the fixed workloads ~10× on top
//! of the criterion shim's sample caps; `SAFEWEB_BENCH_JSON` records the
//! medians that `bench_gate` compares against
//! `crates/bench/baselines/docstore.json`.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use safeweb_docstore::{DocStore, Document, Replicator};
use safeweb_json::{jobject, Value};
use safeweb_labels::{Label, LabelSet};

/// Records per MDT — the page size the portal renders; constant across
/// scales, as in the paper's front page.
const RECORDS_PER_MDT: usize = 100;
/// Base number of MDTs (the 10× configuration holds ten times as many).
const BASE_MDTS: usize = 20;

/// Builds a store shaped like the portal's application database:
/// `record-*` documents labelled and bucketed by `mdt_id`, a `metrics-*`
/// document per MDT, and a small fixed `regional-*` family.
fn portal_shaped_store(mdts: usize) -> DocStore {
    let store = DocStore::new("bench-app");
    store.create_view("by_mid", "mdt_id");
    for m in 0..mdts {
        let mdt = format!("mdt-{m}");
        for r in 0..RECORDS_PER_MDT {
            let id = format!("record-{m:04}-{r:04}");
            store
                .put(
                    &id,
                    jobject! {"mdt_id" => mdt.as_str(), "case_id" => r as i64},
                    LabelSet::singleton(Label::conf("e", &format!("mdt/{mdt}"))),
                    None,
                )
                .unwrap();
        }
        store
            .put(
                &format!("metrics-{mdt}"),
                jobject! {"mdt_id" => mdt.as_str(), "cases" => RECORDS_PER_MDT as i64},
                LabelSet::new(),
                None,
            )
            .unwrap();
    }
    for region in 0..5 {
        store
            .put(
                &format!("regional-{region}"),
                jobject! {"region" => region as i64},
                LabelSet::new(),
                None,
            )
            .unwrap();
    }
    store
}

/// The seed's `query_view`: filter every document on body-field equality.
fn linear_view_scan(store: &DocStore, field: &str, key: &Value) -> Vec<Document> {
    store.scan(|d| d.body().get(field) == Some(key))
}

fn time_per_call(mut f: impl FnMut() -> usize, calls: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..calls {
        black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / calls as f64
}

fn bench_docstore(c: &mut Criterion) {
    let mut group = c.benchmark_group("docstore_view_query");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));

    let mut summary: Vec<(usize, f64, f64, f64)> = Vec::new();
    for scale in [1usize, 10] {
        let mdts = BASE_MDTS * scale;
        let store = portal_shaped_store(mdts);
        // Query a bucket in the middle of the keyspace.
        let key = Value::Str(format!("mdt-{}", mdts / 2));

        group.bench_function(format!("indexed/{}x", scale), |b| {
            b.iter(|| store.query_view("by_mid", &key).unwrap().len());
        });
        group.bench_function(format!("scan/{}x", scale), |b| {
            b.iter(|| linear_view_scan(&store, "mdt_id", &key).len());
        });

        let indexed_us = time_per_call(|| store.query_view("by_mid", &key).unwrap().len(), 200);
        let scan_us = time_per_call(|| linear_view_scan(&store, "mdt_id", &key).len(), 50);
        let prefix_us = time_per_call(|| store.scan_prefix("regional-").len(), 200);
        summary.push((scale, indexed_us, scan_us, prefix_us));
    }
    group.finish();

    eprintln!("\n=== E9: document-store scaling (registry grown 10x) ===");
    for (scale, indexed_us, scan_us, prefix_us) in &summary {
        eprintln!(
            "  {:>2}x docs ({} records): indexed view {:>8.1} us | linear scan {:>8.1} us | regional- prefix {:>6.1} us",
            scale,
            BASE_MDTS * scale * RECORDS_PER_MDT,
            indexed_us,
            scan_us,
            prefix_us,
        );
    }
    if let [(_, i1, s1, p1), (_, i10, s10, p10)] = summary.as_slice() {
        eprintln!(
            "  growth 1x -> 10x: indexed view {:.1}x | linear scan {:.1}x | prefix {:.1}x  (flat ~= 1.0)",
            i10 / i1,
            s10 / s1,
            p10 / p1
        );
    }

    // --- Changes feed: bounded under sustained writes ------------------
    let updates_per_doc: i64 = if criterion::smoke_run() { 200 } else { 2_000 };
    let bounded = DocStore::new("bounded");
    let unbounded = DocStore::new("unbounded");
    unbounded.set_changes_retention(0); // the seed's behaviour
    for store in [&bounded, &unbounded] {
        for m in 0..BASE_MDTS {
            let id = format!("metrics-{m}");
            let mut rev = None;
            for v in 0..updates_per_doc {
                rev = Some(
                    store
                        .put(&id, jobject! {"v" => v}, LabelSet::new(), rev.as_ref())
                        .unwrap(),
                );
            }
        }
    }
    eprintln!(
        "\n  sustained writes ({} updates over {} docs):",
        updates_per_doc as usize * BASE_MDTS,
        BASE_MDTS
    );
    eprintln!(
        "    changes-feed entries: compacting {:>6} | unbounded (seed) {:>6}",
        bounded.changes_len(),
        unbounded.changes_len()
    );

    // --- Replication: deduplicated batches -----------------------------
    let dst = DocStore::new("dmz");
    let mut rep = Replicator::new(unbounded.clone(), dst.clone());
    let report = rep.run_once();
    eprintln!(
        "    replicating {} feed entries: {} docs written, target seq {} (seed wrote one per entry)",
        updates_per_doc as usize * BASE_MDTS,
        report.docs_written,
        dst.seq()
    );
    assert_eq!(report.docs_written as usize, BASE_MDTS);
    assert_eq!(dst.seq() as usize, BASE_MDTS);

    // --- Durable mode: the WAL tax and recovery cost -------------------
    let dir = std::env::temp_dir().join(format!("safeweb-bench-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = DocStore::open(&dir).expect("open durable bench store");
    durable.set_snapshot_every(0); // measure pure appends, then recovery replay
    let memory = DocStore::new("memory");
    let mut group = c.benchmark_group("docstore_persistence");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let mut n = 0u64;
    group.bench_function("put/memory", |b| {
        b.iter(|| {
            n += 1;
            memory
                .put(
                    &format!("doc-{n}"),
                    jobject! {"n" => n as i64, "payload" => "0123456789abcdef"},
                    LabelSet::new(),
                    None,
                )
                .unwrap()
        });
    });
    let mut m = 0u64;
    group.bench_function("put/durable-os-buffered", |b| {
        b.iter(|| {
            m += 1;
            durable
                .put(
                    &format!("doc-{m}"),
                    jobject! {"n" => m as i64, "payload" => "0123456789abcdef"},
                    LabelSet::new(),
                    None,
                )
                .unwrap()
        });
    });
    group.finish();

    // Recovery: replay the whole WAL the puts above just wrote.
    let wal_bytes = durable.wal_len().unwrap_or(0);
    drop(durable);
    let start = Instant::now();
    let recovered = DocStore::open(&dir).expect("recovery open");
    let replay = start.elapsed();
    eprintln!(
        "\n  durable recovery: {} docs / {:.1} KiB of WAL replayed in {:.1} ms ({:.0} docs/s)",
        recovered.len(),
        wal_bytes as f64 / 1024.0,
        replay.as_secs_f64() * 1e3,
        recovered.len() as f64 / replay.as_secs_f64().max(1e-9),
    );
    // Snapshot + truncate, then recovery reads the snapshot instead.
    recovered.snapshot_now().expect("snapshot");
    drop(recovered);
    let start = Instant::now();
    let from_snap = DocStore::open(&dir).expect("snapshot open");
    eprintln!(
        "  durable recovery from snapshot: {} docs in {:.1} ms",
        from_snap.len(),
        start.elapsed().as_secs_f64() * 1e3,
    );
    drop(from_snap);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_docstore);
criterion_main!(benches);
