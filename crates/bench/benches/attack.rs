//! **Adversarial campaign bench**: the per-attempt cost of surviving each
//! attack family, and the enforcement tax the typed surfaces + label
//! check charge for that survival.
//!
//! One secure, enforcing [`AttackRig`] (the Figure-4 topology the
//! campaign tests attack) replays every family's seeded corpus and
//! records mean µs/attempt — the price of *rejecting* hostile traffic,
//! which is the cost an attacked deployment actually pays. A second rig
//! with response label checking disabled replays the label-leak family
//! again; the delta is the enforcement tax on the denial path, the
//! campaign-shaped counterpart of the §5.3 throughput overhead.
//!
//! `SAFEWEB_BENCH_SMOKE=1` shrinks the replay ~4×; `SAFEWEB_BENCH_JSON`
//! records the medians that `bench_gate` compares against
//! `crates/bench/baselines/attack.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use safeweb_attack::{run_campaign, AttackRig, CampaignReport, Family, RigOptions, DEFAULT_SEED};
use safeweb_bench::{overhead_pct, report_row};

fn attempts() -> usize {
    if criterion::smoke_run() {
        50
    } else {
        200
    }
}

fn bench_attack(c: &mut Criterion) {
    let attempts = attempts();
    eprintln!(
        "adversarial campaign bench ({} attempts/family, seed {DEFAULT_SEED:#x})",
        attempts
    );

    // The rig under test: secure portal, typed query surfaces, label
    // checking on. Every campaign must come back sealed — a leak here is
    // a correctness failure, not a slow benchmark.
    let rig = AttackRig::build(RigOptions::default());
    let reports: Vec<CampaignReport> = Family::all()
        .into_iter()
        .map(|family| {
            let report = run_campaign(&rig, family, attempts, DEFAULT_SEED);
            report.assert_sealed();
            report
        })
        .collect();

    // Enforcement tax: same secure portal, response label check off. The
    // portal's own access checks still hold (no leaks), so the timing
    // delta isolates what the label check adds to the denial path.
    let unchecked_rig = AttackRig::build(RigOptions {
        label_checking: false,
        ..RigOptions::default()
    });
    let unchecked = run_campaign(&unchecked_rig, Family::LabelLeak, attempts, DEFAULT_SEED);
    unchecked.assert_sealed();
    let checked_us = reports
        .iter()
        .find(|r| r.family == Family::LabelLeak)
        .map(|r| r.micros_per_attempt())
        .unwrap_or(0.0);
    let unchecked_us = unchecked.micros_per_attempt();

    eprintln!("adversarial campaign results (all sealed):");
    for report in &reports {
        report_row(
            &format!("{} campaign", report.family),
            "n/a",
            &format!(
                "{:.1} µs/attempt ({} denied / {} served)",
                report.micros_per_attempt(),
                report.denied,
                report.served
            ),
        );
    }
    report_row(
        "label-leak enforcement tax",
        "§5.3 overhead ≈ 15 %",
        &format!(
            "{:.1} µs checked vs {:.1} µs unchecked (+{:.0} %)",
            checked_us,
            unchecked_us,
            overhead_pct(unchecked_us, checked_us)
        ),
    );

    // Record every campaign's per-attempt cost as a criterion entry: each
    // closure replays the precomputed duration through `iter_custom`, so
    // `BENCH_attack.json` carries the medians for `bench_gate` without
    // re-running the campaigns per sample.
    let mut group = c.benchmark_group("attack");
    group.sample_size(3);
    for report in &reports {
        let us = report.micros_per_attempt();
        group.bench_function(format!("{}_us_per_attempt", report.family), |b| {
            b.iter_custom(|_| Duration::from_secs_f64(us.max(0.001) * 1e-6))
        });
    }
    group.bench_function("label_leak_unchecked_us_per_attempt", |b| {
        b.iter_custom(|_| Duration::from_secs_f64(unchecked_us.max(0.001) * 1e-6))
    });
    group.finish();
}

criterion_group!(benches, bench_attack);
criterion_main!(benches);
