//! **Observability micro-bench**: what does the telemetry layer cost at
//! the exact granularity the hot paths pay it?
//!
//! * **record cost** — one held-handle counter `inc`, gauge `set` and
//!   histogram `observe` (each a single relaxed atomic RMW), plus the
//!   lookup-per-record anti-pattern (`registry.counter(name).inc()`,
//!   which takes the registry lock and hashes the name — the number that
//!   justifies the hold-your-handles idiom);
//! * **read cost** — `p99` over a loaded histogram and a full
//!   `snapshot()` over a realistically sized registry, the work one
//!   `/__obs/metrics` scrape does;
//! * **span cost** — `record_span` into a component ring with a set
//!   trace id (ring push) and with the tracer disabled (the early-out
//!   every instrumentation site compiles down to when ops turns tracing
//!   off);
//! * **publish hot path** — one broker publish to a matching no-op sink
//!   subscriber with tracing enabled vs disabled. The deployment ships
//!   with tracing on, so the acceptance target is that the enabled path
//!   stays within a few percent of the disabled one; the measured
//!   overhead is *reported* (CI noise makes a hard percentage assert
//!   flaky) while `baselines/obs.json` gates the absolute traced cost.
//!
//! `SAFEWEB_BENCH_JSON` records medians for `bench_gate` against
//! `crates/bench/baselines/obs.json`.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use safeweb_bench::{overhead_pct, report_row};
use safeweb_broker::{Broker, BrokerOptions};
use safeweb_events::{Event, LabelledEvent};
use safeweb_labels::{Label, PrivilegeSet};
use safeweb_obs::{now_ns, record_span, tracer, Histogram, MetricsRegistry, TraceId};

/// Microseconds per call of `f` over `calls` invocations.
fn time_per_call_us<O>(mut f: impl FnMut() -> O, calls: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..calls {
        black_box(f());
    }
    start.elapsed().as_secs_f64() * 1e6 / calls as f64
}

/// A registry shaped like a live deployment's: a few dozen counters,
/// gauges and histograms so `snapshot()` pays realistic iteration and
/// quantile costs.
fn deployment_shaped_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    for i in 0..16 {
        registry.counter(&format!("bench.counter_{i}")).add(i);
        registry.gauge(&format!("bench.gauge_{i}")).set(i as i64);
    }
    for i in 0..8 {
        let h = registry.histogram(&format!("bench.hist_{i}"));
        for v in 0..512u64 {
            h.observe(v * 1_000);
        }
    }
    registry.register_derived("bench.derived", || 42.0);
    registry
}

/// A broker wired the way the deployment wires it — metrics attached,
/// one matching subscriber whose sink does no work — plus the template
/// event every publish clones. Integrity-only labels keep the clearance
/// check on its cheap path, same as the throughput bench.
fn publish_fixture(registry: &MetricsRegistry) -> (Broker, LabelledEvent) {
    let broker = Broker::with_metrics(BrokerOptions::default(), registry);
    broker.subscribe_sink("bench", "s1", "/hot", None, PrivilegeSet::new(), |_| true);
    let template = Event::new("/hot")
        .unwrap()
        .with_attr("type", "synthetic")
        .with_labels([Label::int("e", "mdt")]);
    (broker, template)
}

fn bench_obs(c: &mut Criterion) {
    let smoke = criterion::smoke_run();

    // --- Record / read cost --------------------------------------------
    let registry = deployment_shaped_registry();
    let counter = registry.counter("bench.hot_counter");
    let gauge = registry.gauge("bench.hot_gauge");
    let histogram = registry.histogram("bench.hot_hist");
    let loaded = Histogram::new();
    for v in 0..100_000u64 {
        loaded.observe((v * 2_654_435_761) % 10_000_000);
    }

    let mut group = c.benchmark_group("obs");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("gauge_set", |b| b.iter(|| gauge.set(black_box(7))));
    group.bench_function("histogram_observe", |b| {
        b.iter(|| histogram.observe(black_box(1_234)))
    });
    group.bench_function("counter_lookup_inc", |b| {
        b.iter(|| registry.counter(black_box("bench.hot_counter")).inc())
    });
    group.bench_function("histogram_p99", |b| b.iter(|| loaded.p99()));
    group.bench_function("registry_snapshot", |b| b.iter(|| registry.snapshot()));

    // --- Span cost ------------------------------------------------------
    let id = TraceId::mint();
    group.bench_function("record_span", |b| {
        b.iter(|| record_span("bench-obs", "task", id, now_ns(), Some(7)))
    });
    tracer().set_enabled(false);
    group.bench_function("record_span_disabled", |b| {
        b.iter(|| record_span("bench-obs", "task", id, now_ns(), Some(7)))
    });
    tracer().set_enabled(true);
    group.finish();

    // --- Publish hot path: tracing on vs off ---------------------------
    let (broker, template) = publish_fixture(&registry);
    let mut group = c.benchmark_group("publish");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("traced", |b| {
        b.iter(|| broker.publish(black_box(&template)))
    });
    tracer().set_enabled(false);
    group.bench_function("untraced", |b| {
        b.iter(|| broker.publish(black_box(&template)))
    });
    tracer().set_enabled(true);
    group.finish();

    // One long interleaved pass for the headline overhead number — the
    // criterion samples above are gated, this is the human-readable
    // comparison (interleaving halves the drift a warm/cold split bakes
    // in).
    let calls = if smoke { 20_000 } else { 200_000 };
    let mut traced_us = 0.0;
    let mut untraced_us = 0.0;
    for _ in 0..4 {
        tracer().set_enabled(true);
        traced_us += time_per_call_us(|| broker.publish(&template), calls) / 4.0;
        tracer().set_enabled(false);
        untraced_us += time_per_call_us(|| broker.publish(&template), calls) / 4.0;
    }
    tracer().set_enabled(true);
    let pct = overhead_pct(untraced_us, traced_us);
    let span_ns = (traced_us - untraced_us).max(0.0) * 1_000.0;
    eprintln!("\n=== tracing overhead on the broker publish hot path ===");
    report_row(
        "publish+fanout (tracing off)",
        "baseline",
        &format!("{untraced_us:.4} us/publish"),
    );
    report_row(
        "publish+fanout (tracing on)",
        "one ring push",
        &format!("{traced_us:.4} us/publish ({pct:+.1}%)"),
    );
    eprintln!(
        "  => absolute span cost ~{span_ns:.0} ns/publish; against multi-us scheduler \
         activations this is the <5% the sched/throughput gates hold (the bare \n     \
         fan-out above is the worst case: nothing but the span to amortise against)"
    );
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
