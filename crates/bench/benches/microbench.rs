//! Ablation microbenchmarks: the cost of each SafeWeb mechanism in
//! isolation. These back the design choices DESIGN.md calls out (label
//! sets as ordered sets of URIs, selector evaluation per delivery, STOMP
//! header escaping, taint-propagating string ops, template rendering,
//! deliberately slow password hashing).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use safeweb_broker::wire::{event_to_frame, frame_to_event};
use safeweb_events::Event;
use safeweb_labels::{Label, LabelSet, Privilege, PrivilegeSet};
use safeweb_regex::Regex;
use safeweb_selector::Selector;
use safeweb_stomp::codec::{encode, Decoder};
use safeweb_stomp::Command;
use safeweb_taint::SStr;
use safeweb_web::{hash_password, TContext, TValue, Template};

fn labels_of(n: usize) -> LabelSet {
    (0..n)
        .map(|i| Label::conf("ecric.org.uk", &format!("patient/{i}")))
        .collect()
}

fn bench_labels(c: &mut Criterion) {
    let mut group = c.benchmark_group("labels");
    let a = labels_of(4);
    let b = labels_of(8);
    let privs: PrivilegeSet = a.iter().cloned().map(Privilege::clearance).collect();
    let wire = b.to_wire();

    group.bench_function("combine_4x8", |bench| {
        bench.iter(|| a.combine(&b));
    });
    group.bench_function("flows_to_4_labels", |bench| {
        bench.iter(|| a.flows_to(&privs));
    });
    group.bench_function("wire_roundtrip_8_labels", |bench| {
        bench.iter(|| LabelSet::from_wire(&wire).unwrap());
    });
    group.bench_function("wildcard_privilege_check", |bench| {
        let mut wild = PrivilegeSet::new();
        wild.grant(Privilege::new(
            safeweb_labels::PrivilegeKind::Clearance,
            "label:conf:ecric.org.uk/patient/*".parse().unwrap(),
        ));
        let l = Label::conf("ecric.org.uk", "patient/12345");
        bench.iter(|| wild.has_clearance(&l));
    });
    group.finish();
}

fn bench_selector(c: &mut Criterion) {
    let mut group = c.benchmark_group("selector");
    let sel = Selector::parse(
        "type = 'cancer' AND age BETWEEN 40 AND 75 AND site IN ('breast','lung') AND name LIKE 'p%'",
    )
    .unwrap();
    let event = Event::new("/t")
        .unwrap()
        .with_attr("type", "cancer")
        .with_attr("age", "61")
        .with_attr("site", "breast")
        .with_attr("name", "patient-1");
    group.bench_function("parse", |b| {
        b.iter(|| {
            Selector::parse("type = 'cancer' AND age > 50 AND site IN ('breast','lung')").unwrap()
        });
    });
    group.bench_function("evaluate_4_clauses", |b| {
        b.iter(|| sel.matches(&event));
    });
    group.finish();
}

fn bench_stomp(c: &mut Criterion) {
    let mut group = c.benchmark_group("stomp");
    let event = Event::new("/patient_report")
        .unwrap()
        .with_attr("type", "cancer")
        .with_attr("case_id", "33812769")
        .with_payload("z".repeat(1024))
        .with_labels(labels_of(4));
    let frame = event_to_frame(&event, Command::Send);
    let bytes = encode(&frame);

    group.bench_function("encode_1kb_event", |b| {
        b.iter(|| encode(&frame));
    });
    group.bench_function("decode_1kb_event", |b| {
        b.iter_batched(
            Decoder::new,
            |mut d| {
                d.feed(&bytes);
                d.next_frame().unwrap().unwrap()
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("frame_to_event", |b| {
        b.iter(|| frame_to_event(&frame).unwrap());
    });
    group.finish();
}

fn bench_taint(c: &mut Criterion) {
    let mut group = c.benchmark_group("taint");
    let labelled = SStr::labelled("patient record body ", [Label::conf("e", "p/1")]);
    let other = SStr::labelled("appendix", [Label::conf("e", "p/2")]);

    group.bench_function("concat_labelled", |b| {
        b.iter(|| labelled.clone() + &other);
    });
    group.bench_function("concat_plain_string_baseline", |b| {
        let x = "patient record body ".to_string();
        let y = "appendix";
        b.iter(|| {
            let mut s = x.clone();
            s.push_str(y);
            s
        });
    });
    let re = Regex::new(r"(\w+)-(\d+)").unwrap();
    let subject = SStr::labelled("case patient-33812769 review", [Label::conf("e", "p/1")]);
    group.bench_function("regex_captures_labelled", |b| {
        b.iter(|| subject.regex_captures(&re));
    });
    group.bench_function("check_release_4_labels", |b| {
        let body = SStr::with_label_set("page".to_string(), labels_of(4));
        let privs: PrivilegeSet = labels_of(4)
            .iter()
            .cloned()
            .map(Privilege::clearance)
            .collect();
        b.iter(|| body.check_release(&privs).is_ok());
    });
    group.finish();
}

fn bench_template(c: &mut Criterion) {
    let mut group = c.benchmark_group("template");
    let template = Template::parse(
        "<table><% for r in rows %><tr><td><%= r.name %></td><td><%= r.value %></td></tr><% end %></table>",
    )
    .unwrap();
    let rows: Vec<TContext> = (0..100)
        .map(|i| {
            TContext::new()
                .bind(
                    "name",
                    SStr::labelled(format!("row-{i}"), [Label::conf("e", "p/1")]),
                )
                .bind("value", SStr::public(i.to_string()))
        })
        .collect();
    let ctx = TContext::new().bind("rows", TValue::List(rows));
    group.bench_function("render_100_labelled_rows", |b| {
        b.iter(|| template.render(&ctx).unwrap());
    });
    group.finish();
}

fn bench_auth(c: &mut Criterion) {
    let mut group = c.benchmark_group("auth");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("password_hash_default_cost", |b| {
        b.iter(|| hash_password("mdt-0-0-0", "pw-mdt-0-0-0", 2_000_000));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_labels,
    bench_selector,
    bench_stomp,
    bench_taint,
    bench_template,
    bench_auth
);
criterion_main!(benches);
