//! **E4/E5 — Figure 5: processing-latency breakdown.**
//!
//! Paper (frontend, 180 ms total): authentication 87 ms, privilege
//! fetching 3 ms, template rendering 63 ms, label propagation 17 ms,
//! other 10 ms. Paper (backend, 84 ms total): event processing 51 ms,
//! data (de)serialisation 20 ms, label management 13 ms.
//!
//! This harness reproduces both stacked bars: the frontend phases come
//! from the middleware's own per-phase counters over a fixed request run;
//! the backend phases are measured directly on the same artefacts the
//! paper's pipeline exercises (aggregation callback work, STOMP
//! encode/decode of a labelled event, label parse/combine/check).
//!
//! Not a statistical benchmark — a measured reproduction of a figure.
//! Run with `cargo bench -p safeweb-bench --bench breakdown`.

use std::time::{Duration, Instant};

use safeweb_bench::{bench_portal, report_row};
use safeweb_broker::wire::{event_to_frame, frame_to_event};
use safeweb_events::Event;
use safeweb_http::{Method, Request};
use safeweb_labels::{Label, LabelSet, Privilege, PrivilegeSet};
use safeweb_mdt::password_for;
use safeweb_stomp::codec::{encode, Decoder};
use safeweb_stomp::Command;

fn main() {
    frontend_breakdown();
    backend_breakdown();
}

fn frontend_breakdown() {
    eprintln!("=== E4: Figure 5 — frontend latency breakdown ===");
    let (portal, app) = bench_portal(true);
    let mdt = portal.mdts()[0].name.clone();
    let req = Request::new(Method::Get, &format!("/mdt/{mdt}"))
        .with_basic_auth(&mdt, &password_for(&mdt));

    const N: u32 = 100;
    let start = Instant::now();
    for _ in 0..N {
        let resp = app.handle(&req);
        assert_eq!(resp.status(), 200);
    }
    let total_ms = start.elapsed().as_secs_f64() * 1000.0 / N as f64;

    let stats = app.stats();
    let per = |ns: u64| ns as f64 / 1e6 / stats.requests() as f64;
    let auth = per(stats.auth_ns());
    let fetch = per(stats.privilege_fetch_ns());
    let render = per(stats.handler_ns());
    let label = per(stats.label_check_ns());
    let other = (total_ms - auth - fetch - render - label).max(0.0);

    report_row("authentication", "87 ms", &format!("{auth:.3} ms"));
    report_row("privilege fetching", "3 ms", &format!("{fetch:.3} ms"));
    report_row(
        "template rendering (handler)",
        "63 ms",
        &format!("{render:.3} ms"),
    );
    report_row(
        "label propagation + check",
        "17 ms",
        &format!("{label:.3} ms"),
    );
    report_row("other", "10 ms", &format!("{other:.3} ms"));
    report_row(
        "total page generation",
        "180 ms",
        &format!("{total_ms:.3} ms"),
    );
    let ordering_ok = auth > render && render > fetch;
    eprintln!(
        "  breakdown ordering (auth > render > privilege fetch): {}",
        if ordering_ok {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
    eprintln!();
}

fn backend_breakdown() {
    eprintln!("=== E5: Figure 5 — backend latency breakdown ===");
    const N: u32 = 20_000;

    // A representative labelled event: the aggregator's input shape.
    let labels = [
        Label::conf("e", "patient/33812769"),
        Label::conf("e", "mdt/a"),
        Label::conf("e", "hospital/1"),
        Label::int("e", "mdt"),
    ];
    let event = Event::new("/patient_report")
        .unwrap()
        .with_attr("kind", "patient")
        .with_attr("type", "cancer")
        .with_attr("case_id", "33812769")
        .with_attr("mdt", "mdt-a")
        .with_payload("z".repeat(1024))
        .with_labels(labels.clone());

    // Phase 1: event processing — the aggregator's per-event application
    // work: parse the accumulated case record, fold the new piece in,
    // recompute the completeness metric, and re-serialise the record plus
    // the two aggregate states it maintains (the paper's event processing
    // covers the full application callback).
    let mut record = safeweb_json::Value::object();
    for i in 0..60 {
        record.set(
            &format!("field_{i:02}"),
            format!("value-{i}-of-the-case-record"),
        );
    }
    record.set("name", "patient-33812769");
    record.set("birth_year", 1947);
    let record_json = record.to_json();
    let stats_json = safeweb_json::jobject! {"cases" => 41, "completeness_sum" => 3317.0}.to_json();
    let processing = time_per_op(N, || {
        let mut rec = safeweb_json::Value::parse(&record_json).unwrap();
        rec.set("stage", "II");
        let filled = rec
            .as_object()
            .map(|o| o.values().filter(|v| !v.is_null()).count())
            .unwrap_or(0);
        rec.set("completeness", (filled as f64 / 66.0 * 100.0).round());
        let mut stats = safeweb_json::Value::parse(&stats_json).unwrap();
        let cases = stats
            .get("cases")
            .and_then(safeweb_json::Value::as_i64)
            .unwrap_or(0)
            + 1;
        stats.set("cases", cases);
        let out = rec.to_json();
        let stats_out = stats.to_json();
        std::hint::black_box((out, stats_out))
    });

    // Phase 2: data (de)serialisation — STOMP encode + incremental decode
    // of the full labelled event.
    let serialisation = time_per_op(N, || {
        let frame = event_to_frame(&event, Command::Send);
        let bytes = encode(&frame);
        let mut decoder = Decoder::new();
        decoder.feed(&bytes);
        let back = decoder.next_frame().unwrap().unwrap();
        std::hint::black_box(frame_to_event(&back).unwrap())
    });

    // Phase 3: label management — wire-parse, combine, privilege check:
    // what the broker and jail add per event.
    let privileges: PrivilegeSet = labels.iter().cloned().map(Privilege::clearance).collect();
    let wire = event.labels().to_wire();
    let other_set = LabelSet::singleton(Label::conf("e", "patient/other"));
    let label_mgmt = time_per_op(N, || {
        let parsed = LabelSet::from_wire(&wire).unwrap();
        let combined = parsed.combine(&other_set);
        std::hint::black_box(combined.flows_to(&privileges))
    });

    let total = processing + serialisation + label_mgmt;
    report_row(
        "event processing",
        "51 ms",
        &format!("{:.4} ms", processing),
    );
    report_row(
        "data (de)serialisation",
        "20 ms",
        &format!("{:.4} ms", serialisation),
    );
    report_row(
        "label management",
        "13 ms",
        &format!("{:.4} ms", label_mgmt),
    );
    report_row("total per event", "84 ms", &format!("{:.4} ms", total));
    let ordering_ok = processing > serialisation && serialisation > label_mgmt;
    eprintln!(
        "  breakdown ordering (processing > serialisation > labels): {}",
        if ordering_ok {
            "reproduced"
        } else {
            "NOT reproduced"
        }
    );
    let share = label_mgmt / total * 100.0;
    eprintln!("  label management share of event cost: paper 15.5% — measured {share:.1}%");
}

fn time_per_op<R>(n: u32, mut op: impl FnMut() -> R) -> f64 {
    // Warm-up.
    for _ in 0..(n / 10).max(1) {
        op();
    }
    let start = Instant::now();
    for _ in 0..n {
        op();
    }
    duration_ms(start.elapsed()) / n as f64
}

fn duration_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}
