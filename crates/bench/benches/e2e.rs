//! **Full-topology end-to-end bench** (the paper's Figure 4 deployment,
//! exercised as one process): a durable Intranet application store
//! replicating into a read-only DMZ replica, a sharded HTTP frontend
//! serving reads from that replica while the writer keeps mutating the
//! source, and a sharded STOMP broker fanning events out to an
//! fd-clamped crowd of ~10k subscribers.
//!
//! Three measurements come out of one topology:
//!
//! * **HTTP saturation + latency** — closed-loop throughput at 1 and 4
//!   reactor shards (the multi-reactor speedup axis), then an
//!   *open-loop* run at ~60 % of saturation whose latencies are taken
//!   from each request's *scheduled* send time, so queueing delay is
//!   charged to the server instead of silently absorbed by a stalled
//!   client (no coordinated omission). Reported as p50/p99/p999.
//! * **Fan-out delivery** — µs per delivered MESSAGE frame when every
//!   published event is copied to the whole subscriber crowd through
//!   the broker's sink path and the reactor shards' outboxes.
//! * **Group commit** — µs per `WalSync::Always` put with 8 concurrent
//!   writers sharing fsyncs (leader/follower group commit) vs a single
//!   writer paying one fsync per put. The acceptance target is ≥ 3×
//!   aggregate throughput for the group.
//!
//! `SAFEWEB_BENCH_SMOKE=1` shrinks every axis (512 subscribers, sub-second
//! load phases) so CI proves the harness without saturating anything.
//! The shard-speedup ratio is *reported, not gated*: on a single-core
//! host (like most CI runners) the 4-shard configuration cannot beat one
//! shard, so the gate in `baselines/e2e.json` holds absolute per-request
//! cost instead.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use safeweb_bench::report_row;
use safeweb_broker::{Broker, BrokerServer};
use safeweb_docstore::{DocStore, ReplicationHandle, WalSync};
use safeweb_events::{Event, LabelledEvent};
use safeweb_http::{client, HttpServer, Method, Request, Response};
use safeweb_json::jobject;
use safeweb_labels::{LabelSet, Policy};
use safeweb_obs::MetricsRegistry;

/// Documents cycled by the background writer and read by the handler.
const DOC_SLOTS: usize = 64;

fn smoke() -> bool {
    criterion::smoke_run()
}

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("safeweb-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// HTTP phase: closed-loop saturation at 1 vs 4 shards, then open-loop
// latency percentiles at ~60 % of the measured saturation.
// ---------------------------------------------------------------------------

struct HttpResults {
    us_per_req_1shard: f64,
    us_per_req_4shards: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// The fixed request every client sends; the slot index keeps the wire
/// size constant so open-loop response counting can be byte-exact.
fn http_request(slot: usize) -> String {
    format!("GET /doc?i={:03} HTTP/1.1\r\n\r\n", slot % DOC_SLOTS)
}

/// Reads one complete response from a blocking stream into `buf`
/// (which may carry bytes across calls); returns whether the server
/// announced `connection: close`.
fn read_one_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<bool> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..head_end]).to_ascii_lowercase();
            let body_len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("content-length:"))
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0);
            let total = head_end + 4 + body_len;
            if buf.len() >= total {
                let close = head.contains("connection: close");
                buf.drain(..total);
                return Ok(close);
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Hammers the server with `conns` keep-alive connections for `dur`;
/// returns aggregate requests per second.
fn closed_loop(addr: &str, conns: usize, dur: Duration) -> f64 {
    let start = Instant::now();
    let deadline = start + dur;
    let total: u64 = thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let addr = addr.to_string();
                s.spawn(move || {
                    let connect = || {
                        let stream = TcpStream::connect(&addr).expect("connect");
                        stream
                            .set_read_timeout(Some(Duration::from_secs(10)))
                            .unwrap();
                        stream.set_nodelay(true).ok();
                        stream
                    };
                    let mut stream = connect();
                    let mut buf = Vec::new();
                    let req = http_request(c);
                    let mut count = 0u64;
                    while Instant::now() < deadline {
                        stream.write_all(req.as_bytes()).expect("write");
                        let close = read_one_response(&mut stream, &mut buf).expect("response");
                        count += 1;
                        if close {
                            // Keep-alive budget exhausted; reconnect.
                            stream = connect();
                            buf.clear();
                        }
                    }
                    count
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    total as f64 / start.elapsed().as_secs_f64()
}

/// Open-loop load at `rate` req/s across `conns` pipelined connections
/// for `dur`. Each connection sends on a fixed schedule regardless of
/// responses; latency is measured from the *scheduled* send instant to
/// response completion. Returns merged latencies in nanoseconds.
fn open_loop(addr: &str, conns: usize, rate: f64, dur: Duration) -> Vec<u64> {
    let planned_total = (rate * dur.as_secs_f64()) as usize;
    let per_conn = (planned_total / conns).max(1);
    let interval = Duration::from_secs_f64(conns as f64 / rate);
    thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let addr = addr.to_string();
                s.spawn(move || -> std::io::Result<Vec<u64>> {
                    let req = http_request(c);
                    let mut stream = TcpStream::connect(&addr)?;
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
                    // Warm request: learn the exact response size so
                    // completions can be counted by byte arithmetic
                    // (every response on this path is identical).
                    stream.write_all(req.as_bytes())?;
                    let mut sized: Vec<u8> = Vec::new();
                    let resp_len = loop {
                        if let Some(head_end) = sized.windows(4).position(|w| w == b"\r\n\r\n") {
                            let head =
                                String::from_utf8_lossy(&sized[..head_end]).to_ascii_lowercase();
                            let body_len: usize = head
                                .lines()
                                .find_map(|l| l.strip_prefix("content-length:"))
                                .and_then(|v| v.trim().parse().ok())
                                .unwrap_or(0);
                            let total = head_end + 4 + body_len;
                            if sized.len() >= total {
                                break total;
                            }
                        }
                        let mut chunk = [0u8; 4096];
                        let n = stream.read(&mut chunk)?;
                        if n == 0 {
                            return Err(std::io::Error::new(
                                ErrorKind::UnexpectedEof,
                                "server closed during warm-up",
                            ));
                        }
                        sized.extend_from_slice(&chunk[..n]);
                    };
                    let mut carry = sized.len() - resp_len;

                    let start = Instant::now();
                    let hard_stop = start + dur + Duration::from_secs(15);
                    let mut next = start;
                    let mut sent = 0usize;
                    let mut pending: VecDeque<Instant> = VecDeque::new();
                    let mut latencies = Vec::with_capacity(per_conn);
                    let mut chunk = [0u8; 16384];
                    while sent < per_conn || !pending.is_empty() {
                        if Instant::now() > hard_stop {
                            break; // lost responses; report what completed
                        }
                        let now = Instant::now();
                        while sent < per_conn && next <= now {
                            stream.write_all(req.as_bytes())?;
                            pending.push_back(next);
                            next += interval;
                            sent += 1;
                        }
                        if pending.is_empty() {
                            let now = Instant::now();
                            if next > now {
                                thread::sleep(next - now);
                            }
                            continue;
                        }
                        // Wait for responses, but never past the next
                        // scheduled send.
                        let wait = if sent < per_conn {
                            next.saturating_duration_since(Instant::now())
                                .max(Duration::from_micros(200))
                        } else {
                            Duration::from_millis(50)
                        };
                        stream.set_read_timeout(Some(wait))?;
                        match stream.read(&mut chunk) {
                            Ok(0) => break,
                            Ok(n) => {
                                carry += n;
                                while carry >= resp_len {
                                    carry -= resp_len;
                                    let sched =
                                        pending.pop_front().expect("response without request");
                                    latencies.push(sched.elapsed().as_nanos() as u64);
                                }
                            }
                            Err(e)
                                if e.kind() == ErrorKind::WouldBlock
                                    || e.kind() == ErrorKind::TimedOut => {}
                            Err(e) => return Err(e),
                        }
                    }
                    Ok(latencies)
                })
            })
            .collect();
        let mut merged = Vec::new();
        for h in handles {
            merged.extend(h.join().unwrap().expect("open-loop connection"));
        }
        merged
    })
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64 / 1_000.0 // ns → µs
}

/// A bench-local ops listener serving the same `/__obs/metrics` body
/// the deployment's ops surface renders, so the load phases can be
/// scraped mid-run exactly the way an operator would scrape them.
fn serve_metrics(registry: &MetricsRegistry) -> HttpServer {
    let registry = registry.clone();
    HttpServer::bind(
        "127.0.0.1:0",
        Arc::new(move |req: Request| {
            if req.path() == "/__obs/metrics" {
                Response::json(registry.snapshot().to_json())
            } else {
                Response::text("not found")
            }
        }),
    )
    .expect("bind bench ops listener")
}

fn run_http_phase() -> HttpResults {
    let dir = bench_dir("http");
    let app = DocStore::open(dir.join("app")).expect("open app store");
    let dmz = DocStore::open(dir.join("dmz")).expect("open dmz store");
    dmz.set_read_only(true);
    let registry = MetricsRegistry::new();
    app.attach_metrics(&registry, "docstore.app");
    dmz.attach_metrics(&registry, "docstore.dmz");
    for i in 0..DOC_SLOTS {
        app.put(
            &format!("doc-{i:03}"),
            jobject! {"slot" => i as i64, "gen" => 0i64},
            LabelSet::new(),
            None,
        )
        .expect("seed put");
    }
    let replication =
        ReplicationHandle::start_durable(app.clone(), dmz.clone(), Duration::from_millis(10));
    let seeded = Instant::now();
    while dmz.get(&format!("doc-{:03}", DOC_SLOTS - 1)).is_none() {
        assert!(
            seeded.elapsed() < Duration::from_secs(30),
            "replication stalled"
        );
        thread::sleep(Duration::from_millis(5));
    }

    // Background writer keeps the replication pipeline live under load.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let app = app.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let id = format!("doc-{:03}", n as usize % DOC_SLOTS);
                let rev = app.get(&id).map(|d| d.rev().clone());
                app.put(
                    &id,
                    jobject! {"slot" => (n as usize % DOC_SLOTS) as i64, "gen" => n as i64},
                    LabelSet::new(),
                    rev.as_ref(),
                )
                .expect("writer put");
                n += 1;
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let handler: safeweb_http::Handler = {
        let dmz = dmz.clone();
        Arc::new(move |req: Request| {
            let slot: usize = req.query("i").and_then(|s| s.parse().ok()).unwrap_or(0);
            // Constant-size body either way: byte-exact counting upstream.
            if dmz.get(&format!("doc-{:03}", slot % DOC_SLOTS)).is_some() {
                Response::text("ok")
            } else {
                Response::text("??")
            }
        })
    };

    let sat_dur = if smoke() {
        Duration::from_millis(400)
    } else {
        Duration::from_secs(2)
    };
    let open_dur = if smoke() {
        Duration::from_millis(800)
    } else {
        Duration::from_secs(4)
    };

    let mut rps = [0.0f64; 2];
    for (slot, shards) in [1usize, 4].into_iter().enumerate() {
        let mut server = HttpServer::bind_sharded("127.0.0.1:0", shards, Arc::clone(&handler))
            .expect("bind http");
        let addr = server.addr().to_string();
        // Brief warm-up so accept/registration cost stays out of the window.
        closed_loop(&addr, 4, sat_dur / 4);
        rps[slot] = closed_loop(&addr, 8, sat_dur);
        server.shutdown();
    }

    // Open-loop latency at ~60 % of the 4-shard saturation point.
    let mut server =
        HttpServer::bind_sharded("127.0.0.1:0", 4, Arc::clone(&handler)).expect("bind http");
    server.attach_metrics(&registry, "frontend");
    let addr = server.addr().to_string();
    let rate = (rps[1] * 0.6).max(50.0);
    // Stay under the server's 1000-request keep-alive budget per conn.
    let planned = rate * open_dur.as_secs_f64();
    let conns = ((planned / 800.0).ceil() as usize).clamp(8, 64);

    // Scrape `/__obs/metrics` halfway through the load window — while
    // the frontend, replication writer and both stores are hot — the
    // way a live deployment gets scraped. The body lands in
    // `SAFEWEB_OBS_SCRAPE` (CI uploads it as an artifact).
    let mut ops = serve_metrics(&registry);
    let scrape = {
        let ops_addr = ops.addr().to_string();
        let delay = open_dur / 2;
        thread::spawn(move || {
            thread::sleep(delay);
            client::send(&ops_addr, Request::new(Method::Get, "/__obs/metrics"))
                .ok()
                .filter(|r| r.status() == 200)
                .and_then(|r| r.body_str().map(str::to_string))
        })
    };
    let mut latencies = open_loop(&addr, conns, rate, open_dur);
    let snapshot = scrape
        .join()
        .unwrap()
        .expect("mid-run /__obs/metrics scrape answered");
    server.shutdown();
    ops.shutdown();
    latencies.sort_unstable();
    assert!(
        snapshot.contains("frontend.accepted") && snapshot.contains("docstore.app.put_ns"),
        "mid-run snapshot must carry frontend and store metrics: {snapshot}"
    );
    if let Ok(path) = std::env::var("SAFEWEB_OBS_SCRAPE") {
        std::fs::write(&path, &snapshot).expect("write obs scrape artifact");
        eprintln!("  mid-run /__obs/metrics snapshot written to {path}");
    }

    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
    replication.stop();
    drop(app);
    drop(dmz);
    let _ = std::fs::remove_dir_all(&dir);

    HttpResults {
        us_per_req_1shard: 1e6 / rps[0].max(1.0),
        us_per_req_4shards: 1e6 / rps[1].max(1.0),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
    }
}

// ---------------------------------------------------------------------------
// STOMP fan-out phase: one published event → every subscriber.
// ---------------------------------------------------------------------------

/// CONNECT + SUBSCRIBE handshake, then the socket goes nonblocking and
/// is only ever *read* (counting delivered frames by NUL terminators).
fn fanout_subscribe(addr: &str) -> std::io::Result<TcpStream> {
    use safeweb_stomp::codec::encode;
    use safeweb_stomp::{Command, Frame};

    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(&encode(
        &Frame::new(Command::Connect).with_header("login", "crowd"),
    ))?;
    let mut byte = [0u8; 1];
    loop {
        stream.read_exact(&mut byte)?;
        if byte[0] == 0 {
            break;
        }
    }
    stream.write_all(&encode(
        &Frame::new(Command::Subscribe)
            .with_header("destination", "/fanout")
            .with_header("id", "1"),
    ))?;
    stream.set_nonblocking(true)?;
    Ok(stream)
}

struct FanoutResults {
    subscribers: usize,
    events: u64,
    us_per_delivery: f64,
}

fn run_fanout_phase() -> FanoutResults {
    let broker = Broker::new();
    let mut server = BrokerServer::bind_sharded("127.0.0.1:0", 4, broker.clone(), Policy::new())
        .expect("bind broker");
    let addr = server.addr().to_string();

    // Every subscriber is two fds in this process (client + server end);
    // clamp the crowd to the real budget instead of silently failing.
    let limit = safeweb_reactor::sys::raise_nofile_limit(24 * 1024);
    let fds_in_use = std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count() as u64)
        .unwrap_or(256);
    let budget = (limit.saturating_sub(fds_in_use + 512) / 2) as usize;
    let subscribers = if smoke() { 512 } else { 10_000 }.min(budget);
    let events: u64 = if smoke() { 3 } else { 10 };

    // Parallel handshakes: 8 connector threads splitting the crowd.
    let streams: Vec<TcpStream> = {
        let pool = Arc::new(Mutex::new(Vec::with_capacity(subscribers)));
        thread::scope(|s| {
            for t in 0..8usize {
                let share = subscribers / 8 + usize::from(t < subscribers % 8);
                let addr = addr.clone();
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let mut local = Vec::with_capacity(share);
                    for _ in 0..share {
                        local.push(fanout_subscribe(&addr).expect("subscribe"));
                    }
                    pool.lock().unwrap().extend(local);
                });
            }
        });
        Arc::try_unwrap(pool).unwrap().into_inner().unwrap()
    };
    let ready = Instant::now();
    while broker.subscription_count() < subscribers {
        assert!(
            ready.elapsed() < Duration::from_secs(60),
            "subscriptions stalled at {}/{subscribers}",
            broker.subscription_count()
        );
        thread::sleep(Duration::from_millis(5));
    }

    // Pollers drain the crowd concurrently with the publish, counting
    // complete MESSAGE frames by their NUL terminators.
    let delivered = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let target = subscribers as u64 * events;
    let mut chunks: Vec<Vec<TcpStream>> = Vec::new();
    let per = subscribers.div_ceil(4).max(1);
    let mut it = streams.into_iter();
    loop {
        let chunk: Vec<TcpStream> = it.by_ref().take(per).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let pollers: Vec<_> = chunks
        .into_iter()
        .map(|mut chunk| {
            let delivered = Arc::clone(&delivered);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut buf = [0u8; 65536];
                while !stop.load(Ordering::Relaxed) {
                    let mut progress = false;
                    for stream in &mut chunk {
                        match stream.read(&mut buf) {
                            Ok(n) if n > 0 => {
                                let frames = buf[..n].iter().filter(|&&b| b == 0).count() as u64;
                                if frames > 0 {
                                    delivered.fetch_add(frames, Ordering::Relaxed);
                                }
                                progress = true;
                            }
                            _ => {}
                        }
                    }
                    if !progress {
                        thread::sleep(Duration::from_micros(500));
                    }
                }
            })
        })
        .collect();

    let payload = "x".repeat(64);
    let template = LabelledEvent::new(
        Event::new("/fanout").expect("topic").with_payload(payload),
        LabelSet::new(),
    );
    let start = Instant::now();
    for _ in 0..events {
        broker.publish(&template);
    }
    let deadline = start + Duration::from_secs(120);
    while delivered.load(Ordering::Relaxed) < target && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(2));
    }
    let elapsed = start.elapsed();
    let got = delivered.load(Ordering::Relaxed);
    stop.store(true, Ordering::Relaxed);
    for p in pollers {
        p.join().unwrap();
    }
    server.shutdown();
    if got < target {
        eprintln!("  WARNING: fan-out drained {got}/{target} deliveries before the deadline");
    }

    FanoutResults {
        subscribers,
        events,
        us_per_delivery: elapsed.as_secs_f64() * 1e6 / got.max(1) as f64,
    }
}

// ---------------------------------------------------------------------------
// Group-commit phase: WalSync::Always puts, 8 writers vs 1.
// ---------------------------------------------------------------------------

/// Wall-clock for `writers × per_writer` Always-sync puts on a fresh
/// store; with one writer every put pays its own fsync, with several the
/// group-commit leader amortises one fsync over the whole group.
fn put_always(dir: &Path, writers: usize, per_writer: usize) -> Duration {
    let store = DocStore::open(dir).expect("open store");
    store.set_wal_sync(WalSync::Always);
    let start = Instant::now();
    thread::scope(|s| {
        for w in 0..writers {
            let store = store.clone();
            s.spawn(move || {
                for n in 0..per_writer {
                    store
                        .put(
                            &format!("w{w}-{n}"),
                            jobject! {"n" => n as i64},
                            LabelSet::new(),
                            None,
                        )
                        .expect("durable put");
                }
            });
        }
    });
    let elapsed = start.elapsed();
    assert_eq!(store.persistence_error(), None, "WAL failed during bench");
    elapsed
}

struct CommitResults {
    us_per_put_serial: f64,
    us_per_put_group8: f64,
}

fn run_commit_phase() -> CommitResults {
    let per_writer = if smoke() { 40 } else { 150 };
    let serial_dir = bench_dir("wal-serial");
    let serial = put_always(&serial_dir, 1, per_writer);
    let _ = std::fs::remove_dir_all(&serial_dir);
    let group_dir = bench_dir("wal-group");
    let group = put_always(&group_dir, 8, per_writer);
    let _ = std::fs::remove_dir_all(&group_dir);
    CommitResults {
        us_per_put_serial: serial.as_secs_f64() * 1e6 / per_writer as f64,
        us_per_put_group8: group.as_secs_f64() * 1e6 / (8 * per_writer) as f64,
    }
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

fn bench_e2e(c: &mut Criterion) {
    let cores = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "e2e full-topology bench ({} mode, {cores} core(s))",
        if smoke() { "smoke" } else { "full" }
    );

    let http = run_http_phase();
    let fanout = run_fanout_phase();
    let commit = run_commit_phase();

    let shard_speedup = http.us_per_req_1shard / http.us_per_req_4shards.max(f64::EPSILON);
    let commit_speedup = commit.us_per_put_serial / commit.us_per_put_group8.max(f64::EPSILON);
    eprintln!("e2e topology results:");
    report_row(
        "http saturation (1 shard)",
        "n/a",
        &format!("{:.1} µs/req", http.us_per_req_1shard),
    );
    report_row(
        "http saturation (4 shards)",
        "n/a",
        &format!(
            "{:.1} µs/req ({shard_speedup:.2}× vs 1 shard)",
            http.us_per_req_4shards
        ),
    );
    report_row(
        "http open-loop latency",
        "n/a",
        &format!(
            "p50 {:.0} µs / p99 {:.0} µs / p999 {:.0} µs",
            http.p50_us, http.p99_us, http.p999_us
        ),
    );
    report_row(
        "stomp fan-out",
        "n/a",
        &format!(
            "{:.1} µs/delivery ({} subs × {} events)",
            fanout.us_per_delivery, fanout.subscribers, fanout.events
        ),
    );
    report_row(
        "always-sync put (1 writer)",
        "n/a",
        &format!("{:.0} µs/put", commit.us_per_put_serial),
    );
    report_row(
        "always-sync put (8 writers)",
        "n/a",
        &format!(
            "{:.0} µs/put ({commit_speedup:.1}× aggregate vs 1 writer)",
            commit.us_per_put_group8
        ),
    );
    if cores < 2 {
        eprintln!(
            "  NOTE: single-core host; the ≥1.5× shard speedup target needs a multicore box \
             (reported ratio here: {shard_speedup:.2}×)"
        );
    }

    // Record every derived metric as a criterion entry: each closure
    // replays a precomputed duration through `iter_custom`, which the
    // harness stores verbatim, so `BENCH_e2e.json` carries the medians
    // for `bench_gate` without re-running the load per sample.
    let metrics: [(&str, f64); 8] = [
        ("http_us_per_req_1shard", http.us_per_req_1shard),
        ("http_us_per_req_4shards", http.us_per_req_4shards),
        ("http_p50_us", http.p50_us),
        ("http_p99_us", http.p99_us),
        ("http_p999_us", http.p999_us),
        ("fanout_us_per_delivery", fanout.us_per_delivery),
        ("put_always_us_serial", commit.us_per_put_serial),
        ("put_always_us_group8", commit.us_per_put_group8),
    ];
    let mut group = c.benchmark_group("e2e");
    group.sample_size(3);
    for (name, us) in metrics {
        group.bench_function(name, |b| {
            b.iter_custom(|_| Duration::from_secs_f64(us.max(0.001) * 1e-6))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
