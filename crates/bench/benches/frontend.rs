//! **E1 — §5.3 frontend page generation.**
//!
//! Paper: rendering the MDT front page takes 158 ms without SafeWeb's
//! taint-tracking library and 180 ms with it (+14 %), measured over 1000
//! requests. This bench serves the same page (HTTP basic auth → privilege
//! fetch → ~100-row ERB table over labelled records → response label
//! check) with label tracking on and off and reports the relative
//! overhead.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use safeweb_bench::{bench_portal, overhead_pct, report_row};
use safeweb_http::{Method, Request};
use safeweb_mdt::password_for;

fn front_page_request(mdt: &str) -> Request {
    Request::new(Method::Get, &format!("/mdt/{mdt}")).with_basic_auth(mdt, &password_for(mdt))
}

fn measure_page_ms(app: &safeweb_web::SafeWebApp, mdt: &str, n: u32) -> f64 {
    let req = front_page_request(mdt);
    // Warm-up.
    for _ in 0..3 {
        let resp = app.handle(&req);
        assert_eq!(resp.status(), 200, "front page must render");
    }
    let start = Instant::now();
    for _ in 0..n {
        let resp = app.handle(&req);
        assert_eq!(resp.status(), 200);
    }
    start.elapsed().as_secs_f64() * 1000.0 / n as f64
}

fn bench_frontend(c: &mut Criterion) {
    let (portal_with, app_with) = bench_portal(true);
    let mdt = portal_with.mdts()[0].name.clone();

    let mut group = c.benchmark_group("frontend_page_generation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8))
        .warm_up_time(Duration::from_secs(2));

    group.bench_function("with_taint_tracking", |b| {
        let req = front_page_request(&mdt);
        b.iter(|| {
            let resp = app_with.handle(&req);
            assert_eq!(resp.status(), 200);
            resp
        });
    });

    let (portal_without, app_without) = bench_portal(false);
    let mdt_b = portal_without.mdts()[0].name.clone();
    group.bench_function("without_taint_tracking", |b| {
        let req = front_page_request(&mdt_b);
        b.iter(|| {
            let resp = app_without.handle(&req);
            assert_eq!(resp.status(), 200);
            resp
        });
    });
    group.finish();

    // Paper-style summary over a fixed request count.
    let with_ms = measure_page_ms(&app_with, &mdt, 50);
    let without_ms = measure_page_ms(&app_without, &mdt_b, 50);
    eprintln!("\n=== E1: frontend page generation (paper §5.3) ===");
    report_row(
        "page generation without tracking",
        "158 ms",
        &format!("{without_ms:.2} ms"),
    );
    report_row(
        "page generation with tracking",
        "180 ms",
        &format!("{with_ms:.2} ms"),
    );
    report_row(
        "overhead",
        "+14 %",
        &format!("{:+.1} %", overhead_pct(without_ms, with_ms)),
    );
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
