//! **E2 — §5.3 backend event latency.**
//!
//! Paper: the average latency of an event from the data producer to the
//! data storage unit rises from 73 ms to 84 ms (+15 %) with SafeWeb's
//! isolation and label checks, over 1000 events. This bench pushes events
//! through the same three-stage path — producer → broker → jailed
//! aggregation unit → broker → storage write — over the *networked*
//! STOMP broker (so (de)serialisation is on the path, as in the paper's
//! deployment) with label tracking on and off.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use safeweb_bench::{overhead_pct, report_row};
use safeweb_broker::{Broker, BrokerOptions, BrokerServer};
use safeweb_docstore::DocStore;
use safeweb_engine::{Engine, EngineOptions, EventBus, Relabel, RemoteBus, UnitError, UnitSpec};
use safeweb_events::Event;
use safeweb_labels::{Label, Policy};

struct Pipeline {
    _server: BrokerServer,
    publisher: RemoteBus,
    store: DocStore,
    _transform_engine: safeweb_engine::EngineHandle,
    _storage_engine: safeweb_engine::EngineHandle,
    seq: u64,
}

fn policy() -> Policy {
    "
    unit producer {\n privileged \n}
    unit transformer {\n clearance label:conf:e/* \n}
    unit storage {\n privileged \n clearance label:conf:e/* \n}
    "
    .parse()
    .unwrap()
}

fn build_pipeline(tracking: bool) -> Pipeline {
    let broker = Broker::with_options(BrokerOptions {
        label_filtering: tracking,
    });
    let server = BrokerServer::bind("127.0.0.1:0", broker, policy()).unwrap();
    let addr = server.addr().to_string();
    let store = DocStore::new("bench-app");

    let bus = RemoteBus::connect(&addr, "transformer").unwrap();
    let mut engine = Engine::new(Arc::new(bus), policy()).with_options(EngineOptions {
        label_tracking: tracking,
        ..EngineOptions::default()
    });
    engine
        .add_unit(
            UnitSpec::new("transformer").subscribe("/in", None, |jail, event| {
                // Modest per-event application work, like the aggregator.
                let payload = event.payload().unwrap_or("");
                let digest: u64 = payload
                    .bytes()
                    .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
                jail.publish(
                    Event::new("/out")
                        .map_err(|e| UnitError::BadEvent(e.to_string()))?
                        .with_attr("seq", event.attr("seq").unwrap_or("0"))
                        .with_attr("digest", &digest.to_string())
                        .with_payload(payload),
                    Relabel::keep(),
                )
            }),
        )
        .unwrap();
    let store2 = store.clone();
    let storage_bus = RemoteBus::connect(&addr, "storage").unwrap();
    let mut storage_engine =
        Engine::new(Arc::new(storage_bus), policy()).with_options(EngineOptions {
            label_tracking: tracking,
            ..EngineOptions::default()
        });
    storage_engine
        .add_unit(
            UnitSpec::new("storage").subscribe("/out", None, move |jail, event| {
                let _io = jail.io()?;
                let seq = event.attr("seq").unwrap_or("0");
                store2
                    .put(
                        &format!("doc-{seq}"),
                        safeweb_json::jobject! {"digest" => event.attr("digest").unwrap_or("")},
                        *jail.labels(),
                        None,
                    )
                    .map_err(|e| UnitError::Application(e.to_string()))?;
                Ok(())
            }),
        )
        .unwrap();
    let h1 = engine.start().unwrap();
    let h2 = storage_engine.start().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    Pipeline {
        _server: server,
        publisher: RemoteBus::connect(&addr, "producer").unwrap(),
        store,
        _transform_engine: h1,
        _storage_engine: h2,
        seq: 0,
    }
}

impl Pipeline {
    /// Streams `n` events through producer → broker → transform → broker →
    /// storage and waits until every document has been written, as the
    /// paper does ("the average latency of individual events ... during
    /// the processing of 1000 events"). Returns total wall-clock time.
    fn batch(&mut self, n: u64, labelled: bool) -> Duration {
        let first = self.seq + 1;
        let start = Instant::now();
        for _ in 0..n {
            self.seq += 1;
            let seq = self.seq;
            let event = Event::new("/in")
                .unwrap()
                .with_attr("seq", &seq.to_string())
                .with_payload("x".repeat(1024));
            let event = if labelled {
                event.with_labels([
                    Label::conf("e", &format!("patient/{seq}")),
                    Label::conf("e", "mdt/a"),
                    Label::conf("e", "hospital/1"),
                    Label::int("e", "mdt"),
                ])
            } else {
                event.with_labels([])
            };
            self.publisher.publish(&event).unwrap();
        }
        let last_id = format!("doc-{}", first + n - 1);
        while self.store.get(&last_id).is_none() {
            std::hint::spin_loop();
        }
        start.elapsed()
    }
}

fn bench_backend(c: &mut Criterion) {
    let mut with = build_pipeline(true);
    let mut without = build_pipeline(false);

    let mut group = c.benchmark_group("backend_event_latency");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(10))
        .warm_up_time(Duration::from_secs(2));

    const BATCH: u64 = 250;
    group.bench_function("with_ifc", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += with.batch(BATCH, true);
            }
            total / BATCH as u32
        });
    });
    group.bench_function("without_ifc", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += without.batch(BATCH, false);
            }
            total / BATCH as u32
        });
    });
    group.finish();

    // Paper-style summary: 10× the paper's 1000 events per configuration
    // (the store behind the storage unit now compacts its changes feed,
    // so a 10× longer run no longer grows replication state linearly),
    // streamed and averaged. Batches of the two configurations are
    // interleaved so that machine-load drift affects both equally.
    let n: u64 = 10_000;
    let rounds = 10;
    let per_round = n / rounds;
    let mut with_total = Duration::ZERO;
    let mut without_total = Duration::ZERO;
    for _ in 0..rounds {
        with_total += with.batch(per_round, true);
        without_total += without.batch(per_round, false);
    }
    let with_ms = with_total.as_secs_f64() * 1000.0 / n as f64;
    let without_ms = without_total.as_secs_f64() * 1000.0 / n as f64;
    eprintln!("\n=== E2: backend event latency (paper §5.3) ===");
    report_row(
        "event latency without IFC",
        "73 ms",
        &format!("{without_ms:.3} ms"),
    );
    report_row(
        "event latency with IFC",
        "84 ms",
        &format!("{with_ms:.3} ms"),
    );
    report_row(
        "overhead",
        "+15 %",
        &format!("{:+.1} %", overhead_pct(without_ms, with_ms)),
    );
    report_row(
        "changes feed after full run",
        "<= live docs + 2x retention",
        &format!(
            "{} entries, {} live docs, {} writes",
            with.store.changes_len(),
            with.store.len(),
            with.store.seq()
        ),
    );
    let bound = with.store.len() + 2 * safeweb_docstore::DEFAULT_CHANGES_RETENTION;
    assert!(
        with.store.changes_len() <= bound,
        "changes feed unbounded: {} entries > {}",
        with.store.changes_len(),
        bound
    );
}

criterion_group!(benches, bench_backend);
criterion_main!(benches);
