//! Typed, parameter-bound query specs: the secure-by-construction query
//! surface of the relational store.
//!
//! [`QuerySpec`] separates query *structure* (table and column names —
//! [`safeweb_safeq::TrustedLiteral`], obtainable only from compile-time
//! literals, taint-checked strings or an audited declassify) from query
//! *values* ([`safeweb_safeq::Param`], which any string may become: bound
//! values are compared as data, so quoting metacharacters cannot change
//! what the query means). The classic injection is structurally
//! impossible:
//!
//! ```
//! use safeweb_relstore::{CellValue, ColumnDef, ColumnType, Database, Filter, QuerySpec, Schema};
//!
//! let db = Database::new("web");
//! db.create_table("accounts", Schema::new(vec![
//!     ColumnDef::new("name", ColumnType::Text),
//!     ColumnDef::new("secret", ColumnType::Text),
//! ], "name"))?;
//! db.insert("accounts", vec!["alice".into(), "s3cret".into()])?;
//!
//! // The attacker's payload is bound as a value — it matches nothing.
//! let payload = "alice' OR '1'='1";
//! let rows = db.select_spec(
//!     &QuerySpec::table("accounts").filter(Filter::eq("name", payload)),
//! )?;
//! assert!(rows.is_empty());
//! # Ok::<(), safeweb_relstore::RelError>(())
//! ```
//!
//! Evaluation is two-valued: a comparison against SQL `NULL` is simply
//! `false` (and `Filter::not` of it `true`) rather than SQL's
//! three-valued `UNKNOWN` — the store's predicates are Rust closures
//! elsewhere, so boolean semantics keep the two surfaces consistent.
//! Numeric comparisons coerce `Int`/`Real` like the primary-key order
//! does.

use std::sync::Arc;

use safeweb_safeq::{Param, TrustedLiteral};

use crate::db::{Database, RelError, Row};
use crate::types::{CellValue, Schema};

/// Comparison operators available to [`Filter::cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A typed filter tree over one table's columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every row.
    All,
    /// Compares one column against a bound parameter.
    Cmp {
        /// The column name (trusted structure).
        column: TrustedLiteral,
        /// The comparison operator.
        op: SpecOp,
        /// The bound value (untrusted data is fine here).
        value: Param,
    },
    /// Both sub-filters match.
    And(Box<Filter>, Box<Filter>),
    /// Either sub-filter matches.
    Or(Box<Filter>, Box<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// A comparison filter.
    pub fn cmp(column: impl Into<TrustedLiteral>, op: SpecOp, value: impl Into<Param>) -> Filter {
        Filter::Cmp {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// `column = value`.
    pub fn eq(column: impl Into<TrustedLiteral>, value: impl Into<Param>) -> Filter {
        Filter::cmp(column, SpecOp::Eq, value)
    }

    /// `column <> value`.
    pub fn ne(column: impl Into<TrustedLiteral>, value: impl Into<Param>) -> Filter {
        Filter::cmp(column, SpecOp::Ne, value)
    }

    /// `column < value`.
    pub fn lt(column: impl Into<TrustedLiteral>, value: impl Into<Param>) -> Filter {
        Filter::cmp(column, SpecOp::Lt, value)
    }

    /// `column <= value`.
    pub fn le(column: impl Into<TrustedLiteral>, value: impl Into<Param>) -> Filter {
        Filter::cmp(column, SpecOp::Le, value)
    }

    /// `column > value`.
    pub fn gt(column: impl Into<TrustedLiteral>, value: impl Into<Param>) -> Filter {
        Filter::cmp(column, SpecOp::Gt, value)
    }

    /// `column >= value`.
    pub fn ge(column: impl Into<TrustedLiteral>, value: impl Into<Param>) -> Filter {
        Filter::cmp(column, SpecOp::Ge, value)
    }

    /// Conjunction (builder style).
    pub fn and(self, other: Filter) -> Filter {
        Filter::And(Box::new(self), Box::new(other))
    }

    /// Disjunction (builder style).
    pub fn or(self, other: Filter) -> Filter {
        Filter::Or(Box::new(self), Box::new(other))
    }

    /// Negation (builder style; also available as the `!` operator).
    pub fn negate(self) -> Filter {
        Filter::Not(Box::new(self))
    }
}

impl std::ops::Not for Filter {
    type Output = Filter;

    fn not(self) -> Filter {
        self.negate()
    }
}

/// A complete query: a trusted table name plus a [`Filter`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    table: TrustedLiteral,
    filter: Filter,
}

impl QuerySpec {
    /// A spec selecting every row of `table`.
    pub fn table(table: impl Into<TrustedLiteral>) -> QuerySpec {
        QuerySpec {
            table: table.into(),
            filter: Filter::All,
        }
    }

    /// Sets the filter (builder style).
    pub fn filter(mut self, filter: Filter) -> QuerySpec {
        self.filter = filter;
        self
    }

    /// The target table name.
    pub fn table_name(&self) -> &str {
        self.table.as_str()
    }

    /// The filter tree.
    pub fn filter_ref(&self) -> &Filter {
        &self.filter
    }
}

/// The filter with every column resolved to its cell index, so per-row
/// evaluation is index arithmetic with no name lookups.
enum Compiled {
    All,
    Cmp {
        idx: usize,
        op: SpecOp,
        value: CellValue,
    },
    And(Box<Compiled>, Box<Compiled>),
    Or(Box<Compiled>, Box<Compiled>),
    Not(Box<Compiled>),
}

fn param_to_cell(p: &Param) -> CellValue {
    match p {
        Param::Null => CellValue::Null,
        Param::Bool(b) => CellValue::Bool(*b),
        Param::Int(n) => CellValue::Int(*n),
        Param::Real(n) => CellValue::Real(*n),
        Param::Text(s) => CellValue::Text(s.clone()),
    }
}

fn compile(filter: &Filter, schema: &Schema) -> Result<Compiled, RelError> {
    match filter {
        Filter::All => Ok(Compiled::All),
        Filter::Cmp { column, op, value } => {
            let idx = schema
                .column_index(column.as_str())
                .ok_or_else(|| RelError::UnknownColumn(column.as_str().to_string()))?;
            Ok(Compiled::Cmp {
                idx,
                op: *op,
                value: param_to_cell(value),
            })
        }
        Filter::And(a, b) => Ok(Compiled::And(
            Box::new(compile(a, schema)?),
            Box::new(compile(b, schema)?),
        )),
        Filter::Or(a, b) => Ok(Compiled::Or(
            Box::new(compile(a, schema)?),
            Box::new(compile(b, schema)?),
        )),
        Filter::Not(inner) => Ok(Compiled::Not(Box::new(compile(inner, schema)?))),
    }
}

fn eval(c: &Compiled, cells: &[CellValue]) -> bool {
    match c {
        Compiled::All => true,
        Compiled::Cmp { idx, op, value } => {
            let Some(cell) = cells.get(*idx) else {
                return false;
            };
            // NULL compares false under every operator (two-valued; see
            // module docs) unless both sides are NULL under Eq/Ne.
            if cell.is_null() || value.is_null() {
                return match op {
                    SpecOp::Eq => cell.is_null() && value.is_null(),
                    SpecOp::Ne => cell.is_null() != value.is_null(),
                    _ => false,
                };
            }
            let ord = cell.cmp(value);
            match op {
                SpecOp::Eq => ord.is_eq(),
                SpecOp::Ne => ord.is_ne(),
                SpecOp::Lt => ord.is_lt(),
                SpecOp::Le => ord.is_le(),
                SpecOp::Gt => ord.is_gt(),
                SpecOp::Ge => ord.is_ge(),
            }
        }
        Compiled::And(a, b) => eval(a, cells) && eval(b, cells),
        Compiled::Or(a, b) => eval(a, cells) || eval(b, cells),
        Compiled::Not(inner) => !eval(inner, cells),
    }
}

impl Database {
    /// Runs a typed, parameter-bound query: resolves the table and every
    /// filter column once under a single read lock, then scans rows
    /// comparing cells by index.
    ///
    /// # Errors
    ///
    /// [`RelError::UnknownTable`], [`RelError::UnknownColumn`].
    pub fn select_spec(&self, spec: &QuerySpec) -> Result<Vec<Row>, RelError> {
        self.with_table(spec.table_name(), |schema, rows| {
            let compiled = compile(&spec.filter, schema)?;
            let mut out = Vec::new();
            for cells in rows.values() {
                if eval(&compiled, cells) {
                    out.push(Row::from_parts(Arc::clone(schema), cells.clone()));
                }
            }
            Ok(out)
        })?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ColumnDef, ColumnType};
    use safeweb_taint::SStr;

    fn accounts_db() -> Database {
        let db = Database::new("t");
        db.create_table(
            "accounts",
            Schema::new(
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("name", ColumnType::Text),
                    ColumnDef::nullable("age", ColumnType::Int),
                    ColumnDef::new("admin", ColumnType::Bool),
                ],
                "id",
            ),
        )
        .unwrap();
        for (id, name, age, admin) in [
            (1i64, "alice", Some(34i64), false),
            (2, "bob", Some(51), true),
            (3, "carol", None, false),
        ] {
            db.insert(
                "accounts",
                vec![
                    id.into(),
                    name.into(),
                    age.map(CellValue::Int).unwrap_or(CellValue::Null),
                    admin.into(),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn eq_filter_selects_by_index() {
        let db = accounts_db();
        let rows = db
            .select_spec(&QuerySpec::table("accounts").filter(Filter::eq("name", "bob")))
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].int("id"), Some(2));
    }

    #[test]
    fn injection_payload_is_inert_data() {
        let db = accounts_db();
        // In string-concatenated SQL this classic would match every row;
        // as a bound parameter it is just a name nobody has.
        for payload in [
            "alice' OR '1'='1",
            "alice'; DROP TABLE accounts; --",
            "' OR ''='",
            "alice\" OR \"1\"=\"1",
        ] {
            let rows = db
                .select_spec(&QuerySpec::table("accounts").filter(Filter::eq("name", payload)))
                .unwrap();
            assert!(rows.is_empty(), "payload {payload:?} matched rows");
        }
    }

    #[test]
    fn boolean_combinators() {
        let db = accounts_db();
        let grownups_not_admin = db
            .select_spec(
                &QuerySpec::table("accounts")
                    .filter(Filter::ge("age", 30i64).and(!Filter::eq("admin", true))),
            )
            .unwrap();
        assert_eq!(grownups_not_admin.len(), 1);
        assert_eq!(grownups_not_admin[0].text("name"), Some("alice"));

        let either = db
            .select_spec(
                &QuerySpec::table("accounts")
                    .filter(Filter::eq("name", "alice").or(Filter::eq("name", "carol"))),
            )
            .unwrap();
        assert_eq!(either.len(), 2);
    }

    #[test]
    fn null_semantics_are_two_valued() {
        let db = accounts_db();
        // age NULL: every ordering comparison is false...
        let lt = db
            .select_spec(&QuerySpec::table("accounts").filter(Filter::lt("age", 100i64)))
            .unwrap();
        assert_eq!(lt.len(), 2, "NULL age must not satisfy age < 100");
        // ...equality against NULL matches only NULL...
        let nulls = db
            .select_spec(&QuerySpec::table("accounts").filter(Filter::eq("age", Param::Null)))
            .unwrap();
        assert_eq!(nulls.len(), 1);
        assert_eq!(nulls[0].text("name"), Some("carol"));
        // ...and NOT of a false comparison is true (boolean, not 3VL).
        let not_lt = db
            .select_spec(&QuerySpec::table("accounts").filter(!Filter::lt("age", 100i64)))
            .unwrap();
        assert_eq!(not_lt.len(), 1);
        assert_eq!(not_lt[0].text("name"), Some("carol"));
    }

    #[test]
    fn numeric_coercion_matches_pk_order() {
        let db = accounts_db();
        let rows = db
            .select_spec(&QuerySpec::table("accounts").filter(Filter::eq("age", 34.0f64)))
            .unwrap();
        assert_eq!(rows.len(), 1, "Real(34.0) must equal Int(34)");
    }

    #[test]
    fn unknown_table_and_column_are_typed_errors() {
        let db = accounts_db();
        assert_eq!(
            db.select_spec(&QuerySpec::table("nope")),
            Err(RelError::UnknownTable("nope".into()))
        );
        assert_eq!(
            db.select_spec(&QuerySpec::table("accounts").filter(Filter::eq("nope", 1i64))),
            Err(RelError::UnknownColumn("nope".into()))
        );
    }

    #[test]
    fn checked_literals_flow_through() {
        let db = accounts_db();
        let column = TrustedLiteral::checked(&SStr::public("name")).unwrap();
        let rows = db
            .select_spec(&QuerySpec::table("accounts").filter(Filter::eq(column, "alice")))
            .unwrap();
        assert_eq!(rows.len(), 1);

        // The tainted path cannot even build the filter.
        assert!(TrustedLiteral::checked(&SStr::from_user("name")).is_err());
    }
}
