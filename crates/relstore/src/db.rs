//! Tables and the database handle.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::types::{CellValue, Schema};

/// Errors from relational operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RelError {
    /// No such table.
    UnknownTable(String),
    /// Table already exists.
    TableExists(String),
    /// No such column in the table's schema.
    UnknownColumn(String),
    /// A value does not fit its column type, or NULL in a non-nullable
    /// column.
    TypeMismatch {
        /// The offending column.
        column: String,
    },
    /// Insert with a primary key that already exists.
    DuplicateKey(CellValue),
    /// Row not found for the given key.
    NotFound(CellValue),
    /// Wrong number of values for the schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            RelError::TableExists(t) => write!(f, "table {t:?} already exists"),
            RelError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            RelError::TypeMismatch { column } => write!(f, "type mismatch in column {column:?}"),
            RelError::DuplicateKey(k) => write!(f, "duplicate primary key {k}"),
            RelError::NotFound(k) => write!(f, "no row with primary key {k}"),
            RelError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
        }
    }
}

impl std::error::Error for RelError {}

/// An owned row snapshot with schema-aware access.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    schema: Arc<Schema>,
    cells: Vec<CellValue>,
}

impl Row {
    /// Cell by column name.
    pub fn get(&self, column: &str) -> Option<&CellValue> {
        let idx = self.schema.column_index(column)?;
        self.cells.get(idx)
    }

    /// Integer cell by column name.
    pub fn int(&self, column: &str) -> Option<i64> {
        self.get(column)?.as_int()
    }

    /// Text cell by column name.
    pub fn text(&self, column: &str) -> Option<&str> {
        self.get(column)?.as_text()
    }

    /// Float cell by column name.
    pub fn real(&self, column: &str) -> Option<f64> {
        self.get(column)?.as_real()
    }

    /// Boolean cell by column name.
    pub fn bool(&self, column: &str) -> Option<bool> {
        self.get(column)?.as_bool()
    }

    /// All cells in schema order.
    pub fn cells(&self) -> &[CellValue] {
        &self.cells
    }

    pub(crate) fn from_parts(schema: Arc<Schema>, cells: Vec<CellValue>) -> Row {
        Row { schema, cells }
    }

    /// The row's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

#[derive(Debug)]
struct Table {
    schema: Arc<Schema>,
    pk_index: usize,
    rows: BTreeMap<CellValue, Vec<CellValue>>,
}

impl Table {
    fn validate(&self, values: &[CellValue]) -> Result<(), RelError> {
        if values.len() != self.schema.columns().len() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.columns().len(),
                got: values.len(),
            });
        }
        for (col, val) in self.schema.columns().iter().zip(values) {
            if !val.fits(col.ty()) || (val.is_null() && !col.is_nullable()) {
                return Err(RelError::TypeMismatch {
                    column: col.name().to_string(),
                });
            }
        }
        Ok(())
    }
}

/// An embedded relational database standing in for the main registry
/// database and the SQLite web database of the paper's deployment.
/// Cheap to clone; all clones share state.
///
/// ```
/// use safeweb_relstore::{CellValue, ColumnDef, ColumnType, Database, Schema};
///
/// let db = Database::new("registry");
/// db.create_table("patients", Schema::new(vec![
///     ColumnDef::new("id", ColumnType::Int),
///     ColumnDef::new("name", ColumnType::Text),
/// ], "id"))?;
/// db.insert("patients", vec![1i64.into(), "A. Patient".into()])?;
/// let row = db.get("patients", &CellValue::Int(1))?.expect("row");
/// assert_eq!(row.text("name"), Some("A. Patient"));
/// # Ok::<(), safeweb_relstore::RelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    name: String,
    tables: Arc<RwLock<BTreeMap<String, Table>>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: &str) -> Database {
        Database {
            name: name.to_string(),
            tables: Arc::new(RwLock::new(BTreeMap::new())),
        }
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// [`RelError::TableExists`] if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<(), RelError> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(RelError::TableExists(name.to_string()));
        }
        let pk_index = schema
            .column_index(schema.primary_key())
            .expect("validated by Schema::new");
        tables.insert(
            name.to_string(),
            Table {
                schema: Arc::new(schema),
                pk_index,
                rows: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Lists table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Inserts a row (values in schema column order).
    ///
    /// # Errors
    ///
    /// Type/arity violations, duplicate primary keys, unknown table.
    pub fn insert(&self, table: &str, values: Vec<CellValue>) -> Result<(), RelError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        t.validate(&values)?;
        let key = values[t.pk_index].clone();
        if t.rows.contains_key(&key) {
            return Err(RelError::DuplicateKey(key));
        }
        t.rows.insert(key, values);
        Ok(())
    }

    /// Fetches a row by primary key.
    ///
    /// # Errors
    ///
    /// [`RelError::UnknownTable`].
    pub fn get(&self, table: &str, key: &CellValue) -> Result<Option<Row>, RelError> {
        let tables = self.tables.read();
        let t = tables
            .get(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        Ok(t.rows.get(key).map(|cells| Row {
            schema: Arc::clone(&t.schema),
            cells: cells.clone(),
        }))
    }

    /// Replaces a row by primary key.
    ///
    /// # Errors
    ///
    /// [`RelError::NotFound`] if the key is absent, plus validation errors.
    pub fn update(&self, table: &str, values: Vec<CellValue>) -> Result<(), RelError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        t.validate(&values)?;
        let key = values[t.pk_index].clone();
        if !t.rows.contains_key(&key) {
            return Err(RelError::NotFound(key));
        }
        t.rows.insert(key, values);
        Ok(())
    }

    /// Deletes by primary key. Returns whether a row was removed.
    ///
    /// # Errors
    ///
    /// [`RelError::UnknownTable`].
    pub fn delete(&self, table: &str, key: &CellValue) -> Result<bool, RelError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        Ok(t.rows.remove(key).is_some())
    }

    /// Selects rows matching a predicate (snapshot semantics: the result is
    /// an owned copy).
    ///
    /// # Errors
    ///
    /// [`RelError::UnknownTable`].
    pub fn select(
        &self,
        table: &str,
        mut predicate: impl FnMut(&Row) -> bool,
    ) -> Result<Vec<Row>, RelError> {
        let tables = self.tables.read();
        let t = tables
            .get(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        let mut out = Vec::new();
        for cells in t.rows.values() {
            let row = Row {
                schema: Arc::clone(&t.schema),
                cells: cells.clone(),
            };
            if predicate(&row) {
                out.push(row);
            }
        }
        Ok(out)
    }

    /// Runs `f` over one table's schema and row storage under a single
    /// read-lock acquisition — the shared fast path for index-resolved
    /// scans ([`Database::select_eq`], [`Database::select_spec`]).
    ///
    /// # Errors
    ///
    /// [`RelError::UnknownTable`].
    pub(crate) fn with_table<R>(
        &self,
        table: &str,
        f: impl FnOnce(&Arc<Schema>, &BTreeMap<CellValue, Vec<CellValue>>) -> R,
    ) -> Result<R, RelError> {
        let tables = self.tables.read();
        let t = tables
            .get(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        Ok(f(&t.schema, &t.rows))
    }

    /// Selects rows where `column == value`: the column index is resolved
    /// once against the schema and every row compares by index, all under
    /// one table-map lock acquisition.
    ///
    /// # Errors
    ///
    /// [`RelError::UnknownTable`], [`RelError::UnknownColumn`].
    pub fn select_eq(
        &self,
        table: &str,
        column: &str,
        value: &CellValue,
    ) -> Result<Vec<Row>, RelError> {
        self.with_table(table, |schema, rows| {
            let idx = schema
                .column_index(column)
                .ok_or_else(|| RelError::UnknownColumn(column.to_string()))?;
            let mut out = Vec::new();
            for cells in rows.values() {
                if cells.get(idx) == Some(value) {
                    out.push(Row::from_parts(Arc::clone(schema), cells.clone()));
                }
            }
            Ok(out)
        })?
    }

    /// Row count of a table.
    ///
    /// # Errors
    ///
    /// [`RelError::UnknownTable`].
    pub fn count(&self, table: &str) -> Result<usize, RelError> {
        let tables = self.tables.read();
        let t = tables
            .get(table)
            .ok_or_else(|| RelError::UnknownTable(table.to_string()))?;
        Ok(t.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ColumnDef, ColumnType};

    fn patients_db() -> Database {
        let db = Database::new("t");
        db.create_table(
            "patients",
            Schema::new(
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("name", ColumnType::Text),
                    ColumnDef::nullable("age", ColumnType::Int),
                ],
                "id",
            ),
        )
        .unwrap();
        db
    }

    #[test]
    fn insert_get_update_delete() {
        let db = patients_db();
        db.insert("patients", vec![1i64.into(), "Ann".into(), 61i64.into()])
            .unwrap();
        let row = db.get("patients", &CellValue::Int(1)).unwrap().unwrap();
        assert_eq!(row.text("name"), Some("Ann"));
        assert_eq!(row.int("age"), Some(61));

        db.update(
            "patients",
            vec![1i64.into(), "Ann B".into(), CellValue::Null],
        )
        .unwrap();
        let row = db.get("patients", &CellValue::Int(1)).unwrap().unwrap();
        assert_eq!(row.text("name"), Some("Ann B"));
        assert!(row.get("age").unwrap().is_null());

        assert!(db.delete("patients", &CellValue::Int(1)).unwrap());
        assert!(!db.delete("patients", &CellValue::Int(1)).unwrap());
        assert!(db.get("patients", &CellValue::Int(1)).unwrap().is_none());
    }

    #[test]
    fn constraints_enforced() {
        let db = patients_db();
        db.insert("patients", vec![1i64.into(), "Ann".into(), CellValue::Null])
            .unwrap();
        // Duplicate key.
        assert!(matches!(
            db.insert("patients", vec![1i64.into(), "Bob".into(), CellValue::Null]),
            Err(RelError::DuplicateKey(_))
        ));
        // Type mismatch.
        assert!(matches!(
            db.insert("patients", vec![2i64.into(), 42i64.into(), CellValue::Null]),
            Err(RelError::TypeMismatch { .. })
        ));
        // NULL in non-nullable.
        assert!(matches!(
            db.insert(
                "patients",
                vec![CellValue::Null, "X".into(), CellValue::Null]
            ),
            Err(RelError::TypeMismatch { .. })
        ));
        // Arity.
        assert!(matches!(
            db.insert("patients", vec![2i64.into()]),
            Err(RelError::ArityMismatch { .. })
        ));
        // Update of a missing row.
        assert!(matches!(
            db.update("patients", vec![9i64.into(), "X".into(), CellValue::Null]),
            Err(RelError::NotFound(_))
        ));
    }

    #[test]
    fn select_with_predicates() {
        let db = patients_db();
        for (id, name, age) in [(1, "Ann", 61), (2, "Bob", 45), (3, "Cyd", 61)] {
            db.insert(
                "patients",
                vec![(id as i64).into(), name.into(), (age as i64).into()],
            )
            .unwrap();
        }
        let aged = db.select("patients", |r| r.int("age") == Some(61)).unwrap();
        assert_eq!(aged.len(), 2);
        let bob = db
            .select_eq("patients", "name", &CellValue::from("Bob"))
            .unwrap();
        assert_eq!(bob.len(), 1);
        assert_eq!(bob[0].int("id"), Some(2));
        assert!(db.select_eq("patients", "nope", &CellValue::Null).is_err());
        assert_eq!(db.count("patients").unwrap(), 3);
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new("t");
        assert!(db.insert("x", vec![]).is_err());
        assert!(db.get("x", &CellValue::Int(1)).is_err());
        assert!(db.select("x", |_| true).is_err());
        assert!(db.count("x").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = patients_db();
        assert!(matches!(
            db.create_table(
                "patients",
                Schema::new(vec![ColumnDef::new("id", ColumnType::Int)], "id")
            ),
            Err(RelError::TableExists(_))
        ));
    }
}
