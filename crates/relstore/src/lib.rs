//! # safeweb-relstore
//!
//! A small embedded relational store with typed columns, primary keys and
//! predicate queries. It stands in for two databases of the paper's
//! deployment (Figure 4):
//!
//! * the **main cancer registration database** inside the ECRIC Intranet,
//!   from which the data-producer unit periodically reads patient records
//!   (the paper's is NHS-internal; the MDT crate generates a synthetic one
//!   with the same schema — see DESIGN.md §5), and
//! * the **web database** (SQLite in the paper) holding the frontend's
//!   user accounts, privileges and session state.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod db;
mod query;
mod types;

pub use db::{Database, RelError, Row};
pub use query::{Filter, QuerySpec, SpecOp};
pub use types::{CellValue, ColumnDef, ColumnType, Schema};
