//! Cell values, column types and table schemas.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Real,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Real(f64),
    /// Text value.
    Text(String),
    /// Boolean value.
    Bool(bool),
}

impl CellValue {
    /// Whether this value inhabits `ty` (NULL inhabits every type).
    pub fn fits(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (CellValue::Null, _)
                | (CellValue::Int(_), ColumnType::Int)
                | (CellValue::Real(_), ColumnType::Real)
                | (CellValue::Text(_), ColumnType::Text)
                | (CellValue::Bool(_), ColumnType::Bool)
        )
    }

    /// Integer payload.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            CellValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float payload (integers widen).
    pub fn as_real(&self) -> Option<f64> {
        match self {
            CellValue::Real(f) => Some(*f),
            CellValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Text payload.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            CellValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            CellValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, CellValue::Null)
    }
}

impl Eq for CellValue {}

impl Ord for CellValue {
    /// Total order across variants (NULL < Bool < Int/Real < Text), with
    /// floats ordered by total ordering of bits for NaN safety. Used for
    /// primary-key storage.
    fn cmp(&self, other: &CellValue) -> Ordering {
        fn rank(v: &CellValue) -> u8 {
            match v {
                CellValue::Null => 0,
                CellValue::Bool(_) => 1,
                CellValue::Int(_) | CellValue::Real(_) => 2,
                CellValue::Text(_) => 3,
            }
        }
        match (self, other) {
            (CellValue::Null, CellValue::Null) => Ordering::Equal,
            (CellValue::Bool(a), CellValue::Bool(b)) => a.cmp(b),
            (CellValue::Int(a), CellValue::Int(b)) => a.cmp(b),
            (CellValue::Real(a), CellValue::Real(b)) => a.total_cmp(b),
            (CellValue::Int(a), CellValue::Real(b)) => (*a as f64).total_cmp(b),
            (CellValue::Real(a), CellValue::Int(b)) => a.total_cmp(&(*b as f64)),
            (CellValue::Text(a), CellValue::Text(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialOrd for CellValue {
    fn partial_cmp(&self, other: &CellValue) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::hash::Hash for CellValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            CellValue::Null => 0u8.hash(state),
            CellValue::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            CellValue::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            CellValue::Real(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            CellValue::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellValue::Null => write!(f, "NULL"),
            CellValue::Int(i) => write!(f, "{i}"),
            CellValue::Real(r) => write!(f, "{r}"),
            CellValue::Text(s) => write!(f, "{s}"),
            CellValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for CellValue {
    fn from(v: i64) -> CellValue {
        CellValue::Int(v)
    }
}

impl From<f64> for CellValue {
    fn from(v: f64) -> CellValue {
        CellValue::Real(v)
    }
}

impl From<&str> for CellValue {
    fn from(v: &str) -> CellValue {
        CellValue::Text(v.to_string())
    }
}

impl From<String> for CellValue {
    fn from(v: String) -> CellValue {
        CellValue::Text(v)
    }
}

impl From<bool> for CellValue {
    fn from(v: bool) -> CellValue {
        CellValue::Bool(v)
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    name: String,
    ty: ColumnType,
    nullable: bool,
}

impl ColumnDef {
    /// A non-nullable column.
    pub fn new(name: &str, ty: ColumnType) -> ColumnDef {
        ColumnDef {
            name: name.to_string(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: &str, ty: ColumnType) -> ColumnDef {
        ColumnDef {
            name: name.to_string(),
            ty,
            nullable: true,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column type.
    pub fn ty(&self) -> ColumnType {
        self.ty
    }

    /// Whether NULL is allowed.
    pub fn is_nullable(&self) -> bool {
        self.nullable
    }
}

/// A table schema: ordered columns plus the primary-key column name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    primary_key: String,
}

impl Schema {
    /// Creates a schema.
    ///
    /// # Panics
    ///
    /// Panics if `primary_key` names no column, a column name repeats, or
    /// the key column is nullable — schema definitions are compile-time
    /// artefacts of the application, so this fails fast.
    pub fn new(columns: Vec<ColumnDef>, primary_key: &str) -> Schema {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            assert!(seen.insert(c.name.clone()), "duplicate column {}", c.name);
        }
        let pk = columns
            .iter()
            .find(|c| c.name == primary_key)
            .unwrap_or_else(|| panic!("primary key {primary_key:?} not in columns"));
        assert!(!pk.nullable, "primary key must not be nullable");
        Schema {
            columns,
            primary_key: primary_key.to_string(),
        }
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// The primary-key column name.
    pub fn primary_key(&self) -> &str {
        &self.primary_key
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_type_checks() {
        assert!(CellValue::Int(1).fits(ColumnType::Int));
        assert!(!CellValue::Int(1).fits(ColumnType::Text));
        assert!(CellValue::Null.fits(ColumnType::Text));
        assert!(CellValue::Bool(true).fits(ColumnType::Bool));
    }

    #[test]
    fn ordering_is_total() {
        let mut vals = [
            CellValue::Text("b".into()),
            CellValue::Int(5),
            CellValue::Null,
            CellValue::Real(2.5),
            CellValue::Bool(false),
            CellValue::Text("a".into()),
        ];
        vals.sort();
        assert_eq!(vals[0], CellValue::Null);
        assert_eq!(vals.last().unwrap().as_text(), Some("b"));
    }

    #[test]
    fn numeric_cross_type_ordering() {
        assert!(CellValue::Int(1) < CellValue::Real(1.5));
        assert!(CellValue::Real(0.5) < CellValue::Int(1));
    }

    #[test]
    #[should_panic(expected = "primary key")]
    fn schema_requires_existing_pk() {
        Schema::new(vec![ColumnDef::new("a", ColumnType::Int)], "missing");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn schema_rejects_duplicates() {
        Schema::new(
            vec![
                ColumnDef::new("a", ColumnType::Int),
                ColumnDef::new("a", ColumnType::Text),
            ],
            "a",
        );
    }
}
