//! The embedded IFC-aware broker core (§4.2).
//!
//! The broker matches published events against subscriptions by topic and
//! optional SQL-92 selector, **then filters by security label**: an event is
//! delivered to a subscriber only if the subscriber's clearance privileges
//! cover every confidentiality label on the event. This is the property the
//! paper relies on to keep jailed units from ever observing data they are
//! not cleared for.
//!
//! # Routing architecture
//!
//! Routing state is partitioned into [`SHARD_COUNT`] shards keyed by a
//! deterministic hash of the event topic, so concurrent publishers on
//! different topics never contend on one lock. Each shard holds two
//! indexes:
//!
//! * an **exact-topic hash index** (`topic → subscriber list`) for
//!   [`TopicPattern::Exact`] subscriptions, stored only in the shard the
//!   topic hashes to — a publish probes exactly one map entry instead of
//!   scanning every subscription;
//! * a **prefix trie** over `/`-separated topic segments for
//!   [`TopicPattern::Prefix`] subscriptions (`/reports/*`). Prefix
//!   subscriptions must be visible to publishes on *any* matching topic,
//!   whose hashes are unrelated to the pattern's, so prefix entries are
//!   **replicated into every shard's trie**. Registration is rare and
//!   fan-in cheap (entries are shared `Arc`s); publishing stays
//!   single-shard and lock-local.
//!
//! A publish therefore takes one shard read lock, probes the exact index,
//! walks at most `segments(topic)` trie nodes, and touches only
//! subscriptions whose pattern actually matches: O(matching) instead of
//! the previous O(total subscriptions) scan.
//!
//! A separate **directory** (`SubscriptionKey → entry`) serializes
//! subscribe/unsubscribe bookkeeping; publishers never take it.
//!
//! # Delivery
//!
//! A matched event is delivered as a [`Delivery`] carrying
//! `Arc<LabelledEvent>`: one allocation per published event, not one deep
//! clone per matching subscriber. Matching (topic, selector, clearance)
//! runs under the shard read lock; the delivery targets themselves are
//! invoked **after** it drops, so a target that blocks — the scheduled
//! engine's sink exerting inbox backpressure — never holds routing state
//! while a subscribe's write lock queues behind it.
//! [`Broker::publish_batch`] amortizes shard locking and stats updates
//! across a batch by grouping events per shard before acquiring any
//! lock.
//!
//! # Invariant
//!
//! **Label filtering is applied after routing, never skipped**: the
//! sharded indexes only narrow the candidate set by topic; every candidate
//! still passes through the selector and the clearance check
//! (`labels.flows_to(clearance)`) before its channel sees the event. The
//! [`oracle::LinearBroker`] reference implementation states these
//! semantics as executable code, and `tests/routing_equivalence.rs` holds
//! the sharded path to it property-by-property.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use safeweb_events::LabelledEvent;
use safeweb_labels::PrivilegeSet;
use safeweb_obs::{record_span, tracer, Counter, MetricsRegistry, TraceId};
use safeweb_selector::Selector;

/// Number of routing shards (power of two; topic hash picks the shard).
pub const SHARD_COUNT: usize = 16;

/// A topic pattern: exact (`/patient_report`) or prefix (`/reports/*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicPattern {
    /// Matches exactly one topic.
    Exact(String),
    /// Matches the prefix itself and any topic below it.
    Prefix(String),
}

impl TopicPattern {
    /// Parses a destination string; a trailing `/*` makes it a prefix
    /// pattern (an extension over the paper's exact topics, used by the
    /// monitoring examples).
    pub fn parse(s: &str) -> TopicPattern {
        match s.strip_suffix("/*") {
            Some(prefix) => TopicPattern::Prefix(prefix.to_string()),
            None => TopicPattern::Exact(s.to_string()),
        }
    }

    /// Whether `topic` is matched.
    pub fn matches(&self, topic: &str) -> bool {
        match self {
            TopicPattern::Exact(t) => t == topic,
            TopicPattern::Prefix(p) => {
                topic == p
                    || topic
                        .strip_prefix(p.as_str())
                        .is_some_and(|r| r.starts_with('/'))
            }
        }
    }
}

impl fmt::Display for TopicPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicPattern::Exact(t) => write!(f, "{t}"),
            TopicPattern::Prefix(p) => write!(f, "{p}/*"),
        }
    }
}

/// Identifies a subscription: (client name, subscription id). Subscription
/// ids disambiguate multiple subscriptions from one unit (§4.2:
/// "subscriptions include unique identifiers").
pub type SubscriptionKey = (String, String);

/// Where a subscription's deliveries go.
///
/// The engine and in-process consumers use channels; the reactor-based
/// STOMP frontend registers a callback that serialises the frame straight
/// into the connection's bounded outbound queue — no per-subscription
/// pump thread.
enum DeliveryTarget {
    /// A channel endpoint owned by the subscriber.
    Channel(Sender<Delivery>),
    /// A callback invoked on the publisher's thread. Returns whether the
    /// subscriber is still alive; a dead sink stops counting as a
    /// delivery (like a disconnected channel).
    Sink(Box<dyn Fn(Delivery) -> bool + Send + Sync>),
}

impl fmt::Debug for DeliveryTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryTarget::Channel(_) => f.write_str("Channel"),
            DeliveryTarget::Sink(_) => f.write_str("Sink"),
        }
    }
}

impl DeliveryTarget {
    fn deliver(&self, delivery: Delivery) -> bool {
        match self {
            DeliveryTarget::Channel(sender) => sender.send(delivery).is_ok(),
            DeliveryTarget::Sink(sink) => sink(delivery),
        }
    }
}

/// One registered subscription, shared between the directory and every
/// index slot that routes to it.
#[derive(Debug)]
struct SubEntry {
    sub_id: Arc<str>,
    topic: TopicPattern,
    selector: Option<Selector>,
    clearance: PrivilegeSet,
    target: DeliveryTarget,
}

/// An event as delivered to one subscriber: tagged with the subscription id
/// that matched. The event is shared (`Arc`), not cloned per subscriber.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Which subscription this delivery belongs to.
    pub subscription_id: Arc<str>,
    /// The labelled event (shared across all receiving subscribers).
    pub event: Arc<LabelledEvent>,
}

/// Broker counters: a thin view over [`safeweb_obs`] registry counters.
///
/// Standalone brokers get detached counters (`Default`); a broker built
/// with [`Broker::with_metrics`] registers them as `broker.published`,
/// `broker.delivered`, `broker.label_filtered` and
/// `broker.selector_filtered` in the deployment's shared registry, so
/// the same atomics back both these accessors and the
/// `deployment.metrics()` snapshot.
#[derive(Debug, Default)]
pub struct BrokerStats {
    published: Counter,
    delivered: Counter,
    label_filtered: Counter,
    selector_filtered: Counter,
}

impl BrokerStats {
    fn registered(registry: &MetricsRegistry) -> BrokerStats {
        BrokerStats {
            published: registry.counter("broker.published"),
            delivered: registry.counter("broker.delivered"),
            label_filtered: registry.counter("broker.label_filtered"),
            selector_filtered: registry.counter("broker.selector_filtered"),
        }
    }

    /// Events published.
    pub fn published(&self) -> u64 {
        self.published.get()
    }

    /// Deliveries made (one per matching subscription).
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Deliveries suppressed because the subscriber lacked clearance.
    pub fn label_filtered(&self) -> u64 {
        self.label_filtered.get()
    }

    /// Deliveries suppressed by a content selector.
    pub fn selector_filtered(&self) -> u64 {
        self.selector_filtered.get()
    }
}

/// Per-batch counter accumulator: one atomic RMW per counter per batch
/// instead of one per delivery.
#[derive(Default)]
struct LocalStats {
    delivered: u64,
    label_filtered: u64,
    selector_filtered: u64,
}

impl LocalStats {
    fn flush(self, stats: &BrokerStats, published: u64) {
        if published > 0 {
            stats.published.add(published);
        }
        if self.delivered > 0 {
            stats.delivered.add(self.delivered);
        }
        if self.label_filtered > 0 {
            stats.label_filtered.add(self.label_filtered);
        }
        if self.selector_filtered > 0 {
            stats.selector_filtered.add(self.selector_filtered);
        }
    }
}

/// Configuration for [`Broker`]. Immutable after construction — the hot
/// publish path reads it as a plain field, never through a lock.
#[derive(Debug, Clone)]
pub struct BrokerOptions {
    /// When `false`, label clearance filtering is skipped entirely. This
    /// exists **only** for the paper's baseline measurements (§5.3 measures
    /// throughput with and without label tracking); production deployments
    /// must leave it on.
    pub label_filtering: bool,
}

impl Default for BrokerOptions {
    fn default() -> BrokerOptions {
        BrokerOptions {
            label_filtering: true,
        }
    }
}

/// A node of the per-shard prefix trie, keyed by topic segment.
#[derive(Debug, Default)]
struct TrieNode {
    children: HashMap<String, TrieNode>,
    subs: Vec<Arc<SubEntry>>,
}

impl TrieNode {
    fn insert(&mut self, segments: &[&str], entry: &Arc<SubEntry>) {
        match segments.split_first() {
            None => self.subs.push(Arc::clone(entry)),
            Some((head, rest)) => self
                .children
                .entry((*head).to_string())
                .or_default()
                .insert(rest, entry),
        }
    }

    /// Removes `entry` along `segments`, pruning nodes left empty.
    fn remove(&mut self, segments: &[&str], entry: &Arc<SubEntry>) {
        match segments.split_first() {
            None => self.subs.retain(|e| !Arc::ptr_eq(e, entry)),
            Some((head, rest)) => {
                if let Some(child) = self.children.get_mut(*head) {
                    child.remove(rest, entry);
                    if child.subs.is_empty() && child.children.is_empty() {
                        self.children.remove(*head);
                    }
                }
            }
        }
    }
}

/// One routing shard: the slice of both indexes for topics hashing here.
#[derive(Debug, Default)]
struct ShardState {
    exact: HashMap<String, Vec<Arc<SubEntry>>>,
    prefix: TrieNode,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<RwLock<ShardState>>,
    directory: RwLock<HashMap<SubscriptionKey, Arc<SubEntry>>>,
    stats: BrokerStats,
    options: BrokerOptions,
}

/// The embedded broker. Cheap to clone (shared state behind an [`Arc`]).
#[derive(Debug, Clone)]
pub struct Broker {
    inner: Arc<Inner>,
}

impl Default for Broker {
    fn default() -> Broker {
        Broker::new()
    }
}

/// Deterministic topic→shard hash (FNV-1a); must agree between subscribe
/// and publish, so it cannot use per-process-randomized hashers.
fn shard_of(topic: &str) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in topic.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARD_COUNT - 1)
}

impl Broker {
    /// Creates a broker with default options (label filtering on).
    pub fn new() -> Broker {
        Broker::with_options(BrokerOptions::default())
    }

    /// Creates a broker with explicit options.
    pub fn with_options(options: BrokerOptions) -> Broker {
        Broker {
            inner: Arc::new(Inner {
                shards: (0..SHARD_COUNT).map(|_| RwLock::default()).collect(),
                directory: RwLock::default(),
                stats: BrokerStats::default(),
                options,
            }),
        }
    }

    /// Creates a broker whose counters live in `registry` (under
    /// `broker.*`), so a deployment-wide snapshot sees them.
    pub fn with_metrics(options: BrokerOptions, registry: &MetricsRegistry) -> Broker {
        Broker {
            inner: Arc::new(Inner {
                shards: (0..SHARD_COUNT).map(|_| RwLock::default()).collect(),
                directory: RwLock::default(),
                stats: BrokerStats::registered(registry),
                options,
            }),
        }
    }

    /// Registers a subscription and returns the receiving end of its
    /// delivery channel.
    ///
    /// `clearance` is the privilege set of the *subscribing principal* — in
    /// the deployed system this comes from the policy file, never from the
    /// subscriber itself. Re-subscribing with the same key replaces the
    /// previous subscription.
    pub fn subscribe(
        &self,
        client: &str,
        subscription_id: &str,
        topic: &str,
        selector: Option<Selector>,
        clearance: PrivilegeSet,
    ) -> Receiver<Delivery> {
        let (tx, rx) = unbounded();
        self.register(
            client,
            subscription_id,
            topic,
            selector,
            clearance,
            DeliveryTarget::Channel(tx),
        );
        rx
    }

    /// Registers a subscription whose deliveries are pushed through
    /// `sink` **on the publisher's thread** instead of a channel. The
    /// sink returns whether the subscriber is still alive; `false` makes
    /// the delivery count as suppressed, exactly like a disconnected
    /// channel (the entry itself is removed by
    /// [`Broker::unsubscribe`]/[`Broker::unsubscribe_all`]).
    ///
    /// This is the delivery path of the reactor STOMP frontend: the sink
    /// serialises the frame into the connection's bounded outbound queue,
    /// so ten thousand idle subscribers cost ten thousand parked *fds*,
    /// not ten thousand parked threads. Sinks must not block.
    pub fn subscribe_sink(
        &self,
        client: &str,
        subscription_id: &str,
        topic: &str,
        selector: Option<Selector>,
        clearance: PrivilegeSet,
        sink: impl Fn(Delivery) -> bool + Send + Sync + 'static,
    ) {
        self.register(
            client,
            subscription_id,
            topic,
            selector,
            clearance,
            DeliveryTarget::Sink(Box::new(sink)),
        );
    }

    fn register(
        &self,
        client: &str,
        subscription_id: &str,
        topic: &str,
        selector: Option<Selector>,
        clearance: PrivilegeSet,
        target: DeliveryTarget,
    ) {
        let entry = Arc::new(SubEntry {
            sub_id: Arc::from(subscription_id),
            topic: TopicPattern::parse(topic),
            selector,
            clearance,
            target,
        });
        let key = (client.to_string(), subscription_id.to_string());
        // Index updates happen while the directory lock is held so that
        // racing subscribe/unsubscribe calls on the same key cannot
        // interleave their shard updates (which could strand an
        // unreachable entry in the routing indexes). Publishers never
        // take the directory lock, so the publish path is unaffected;
        // lock order is always directory → shard.
        let mut directory = self.inner.directory.write();
        let replaced = directory.insert(key, Arc::clone(&entry));
        self.reindex(Some(&entry), replaced.as_ref());
        drop(directory);
    }

    /// Whether `entry` is indexed in shard `index`.
    fn touches_shard(entry: &SubEntry, index: usize) -> bool {
        match &entry.topic {
            TopicPattern::Exact(topic) => shard_of(topic) == index,
            TopicPattern::Prefix(_) => true,
        }
    }

    /// Adds and/or removes index entries, applying both mutations to each
    /// affected shard under **one** write-lock acquisition. A publisher
    /// reads exactly one shard, so per-shard combined updates mean it
    /// observes either the old or the new subscription state for any
    /// topic — a replacement can never deliver one event to both the old
    /// and the new channel, and never to neither.
    fn reindex(&self, add: Option<&Arc<SubEntry>>, remove: Option<&Arc<SubEntry>>) {
        for (index, slot) in self.inner.shards.iter().enumerate() {
            let add_here = add.is_some_and(|e| Self::touches_shard(e, index));
            let remove_here = remove.is_some_and(|e| Self::touches_shard(e, index));
            if !add_here && !remove_here {
                continue;
            }
            let mut shard = slot.write();
            if let (true, Some(entry)) = (add_here, add) {
                match &entry.topic {
                    TopicPattern::Exact(topic) => shard
                        .exact
                        .entry(topic.clone())
                        .or_default()
                        .push(Arc::clone(entry)),
                    TopicPattern::Prefix(prefix) => {
                        let segments: Vec<&str> = prefix.split('/').collect();
                        shard.prefix.insert(&segments, entry);
                    }
                }
            }
            if let (true, Some(entry)) = (remove_here, remove) {
                match &entry.topic {
                    TopicPattern::Exact(topic) => {
                        if let Some(list) = shard.exact.get_mut(topic) {
                            list.retain(|e| !Arc::ptr_eq(e, entry));
                            if list.is_empty() {
                                shard.exact.remove(topic);
                            }
                        }
                    }
                    TopicPattern::Prefix(prefix) => {
                        let segments: Vec<&str> = prefix.split('/').collect();
                        shard.prefix.remove(&segments, entry);
                    }
                }
            }
        }
    }

    /// Removes a subscription. Returns whether it existed.
    pub fn unsubscribe(&self, client: &str, subscription_id: &str) -> bool {
        let mut directory = self.inner.directory.write();
        let removed = directory.remove(&(client.to_string(), subscription_id.to_string()));
        match removed {
            Some(entry) => {
                // Unindexed under the directory lock; see `subscribe`.
                self.reindex(None, Some(&entry));
                true
            }
            None => false,
        }
    }

    /// Removes every subscription belonging to `client` (used when a
    /// connection drops).
    pub fn unsubscribe_all(&self, client: &str) -> usize {
        let mut directory = self.inner.directory.write();
        let keys: Vec<SubscriptionKey> = directory
            .keys()
            .filter(|(c, _)| c == client)
            .cloned()
            .collect();
        let removed: Vec<Arc<SubEntry>> = keys.iter().filter_map(|k| directory.remove(k)).collect();
        for entry in &removed {
            // Unindexed under the directory lock; see `subscribe`.
            self.reindex(None, Some(entry));
        }
        removed.len()
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.directory.read().len()
    }

    /// Routes one event within an already-locked shard, applying the
    /// selector and clearance filters to each candidate and collecting
    /// the matches. Candidates come only from index slots whose pattern
    /// matches the topic.
    ///
    /// Delivery happens **after** the shard lock drops
    /// ([`Broker::deliver_matches`]): a delivery target may block — the
    /// scheduled engine's sink exerts inbox backpressure on publishers —
    /// and blocking under the read lock would let a concurrent
    /// subscribe's queued write lock wedge every other publisher on the
    /// shard behind the stalled one.
    fn match_in_shard(
        &self,
        shard: &ShardState,
        event: &Arc<LabelledEvent>,
        local: &mut LocalStats,
        matches: &mut Vec<(Arc<SubEntry>, Arc<LabelledEvent>)>,
    ) {
        let topic = event.topic();
        if let Some(list) = shard.exact.get(topic) {
            for entry in list {
                self.filter_match(entry, event, local, matches);
            }
        }
        let mut node = &shard.prefix;
        for segment in topic.split('/') {
            match node.children.get(segment) {
                Some(child) => {
                    node = child;
                    for entry in &node.subs {
                        self.filter_match(entry, event, local, matches);
                    }
                }
                None => break,
            }
        }
    }

    fn filter_match(
        &self,
        entry: &Arc<SubEntry>,
        event: &Arc<LabelledEvent>,
        local: &mut LocalStats,
        matches: &mut Vec<(Arc<SubEntry>, Arc<LabelledEvent>)>,
    ) {
        debug_assert!(
            entry.topic.matches(event.topic()),
            "index routed a non-match"
        );
        if let Some(selector) = &entry.selector {
            if !selector.matches(event.event()) {
                local.selector_filtered += 1;
                return;
            }
        }
        if self.inner.options.label_filtering && !event.labels().flows_to(&entry.clearance) {
            local.label_filtered += 1;
            return;
        }
        matches.push((Arc::clone(entry), Arc::clone(event)));
    }

    /// Invokes the collected matches' delivery targets, lock-free, in
    /// match order. Returns the deliveries made (dead targets —
    /// disconnected channels, gone sinks — count as suppressed).
    fn deliver_matches(
        matches: &mut Vec<(Arc<SubEntry>, Arc<LabelledEvent>)>,
        local: &mut LocalStats,
    ) -> usize {
        let mut delivered = 0;
        for (entry, event) in matches.drain(..) {
            let delivery = Delivery {
                subscription_id: Arc::clone(&entry.sub_id),
                event,
            };
            if entry.target.deliver(delivery) {
                local.delivered += 1;
                delivered += 1;
            }
        }
        delivered
    }

    /// Publishes an event: fan-out to every subscription whose topic and
    /// selector match **and** whose clearance covers the event's
    /// confidentiality labels.
    ///
    /// Returns the number of deliveries made.
    pub fn publish(&self, event: &LabelledEvent) -> usize {
        self.publish_arc(Arc::new(event.clone()))
    }

    /// Like [`Broker::publish`] for an event already behind an [`Arc`]
    /// (avoids the defensive clone of the borrowed-event entry point).
    pub fn publish_arc(&self, mut event: Arc<LabelledEvent>) -> usize {
        // Engine-originated events reach their first publish untraced;
        // mint here so the rest of the pipeline (scheduler activation,
        // docstore write) stitches onto one id. A shared `Arc` cannot be
        // retraced in place, but every in-process path wraps immediately
        // before publishing, so uniqueness is the common case.
        if !event.trace_id().is_set() {
            if let Some(owned) = Arc::get_mut(&mut event) {
                owned.set_trace_id(TraceId::mint());
            }
        }
        let start = safeweb_obs::now_ns();
        let mut local = LocalStats::default();
        let mut matches = Vec::new();
        {
            let shard = self.inner.shards[shard_of(event.topic())].read();
            self.match_in_shard(&shard, &event, &mut local, &mut matches);
        }
        let delivered = Self::deliver_matches(&mut matches, &mut local);
        local.flush(&self.inner.stats, 1);
        record_span(
            "broker",
            event.topic(),
            event.trace_id(),
            start,
            Some(event.labels().id().as_u32()),
        );
        delivered
    }

    /// Publishes a batch in one broker pass: events are grouped by shard
    /// so each shard lock is taken at most once, and stats counters are
    /// flushed once for the whole batch.
    ///
    /// Events within one topic keep their relative order; cross-topic
    /// ordering across the batch is unspecified (as it already is between
    /// independent publishers).
    ///
    /// Returns the total number of deliveries made.
    pub fn publish_batch(&self, mut events: Vec<LabelledEvent>) -> usize {
        // Fast path for the common flush-one-event case (a unit callback
        // that publishes once): skip the bucket allocation and scan.
        if events.len() == 1 {
            return self.publish_arc(Arc::new(events.pop().expect("len checked")));
        }
        let published = events.len() as u64;
        let start = safeweb_obs::now_ns();
        let mut buckets: Vec<Vec<Arc<LabelledEvent>>> = Vec::new();
        buckets.resize_with(SHARD_COUNT, Vec::new);
        for mut event in events {
            // Same minting rule as `publish_arc`: every event leaves the
            // broker traced, even when its publisher never opened a scope.
            if !event.trace_id().is_set() {
                event.set_trace_id(TraceId::mint());
            }
            let event = Arc::new(event);
            buckets[shard_of(event.topic())].push(event);
        }
        let mut local = LocalStats::default();
        let mut delivered = 0;
        let mut matches = Vec::new();
        for (index, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            {
                let shard = self.inner.shards[index].read();
                for event in bucket {
                    self.match_in_shard(&shard, event, &mut local, &mut matches);
                }
            }
            // One lock acquisition per shard, all deliveries outside it.
            delivered += Self::deliver_matches(&mut matches, &mut local);
        }
        local.flush(&self.inner.stats, published);
        if tracer().enabled() {
            // Batch spans share the batch window: per-event timing inside
            // a grouped fan-out is not separable without defeating the
            // one-lock-per-shard batching this path exists for.
            for event in buckets.iter().flatten() {
                record_span(
                    "broker",
                    event.topic(),
                    event.trace_id(),
                    start,
                    Some(event.labels().id().as_u32()),
                );
            }
        }
        delivered
    }

    /// Statistics counters.
    pub fn stats(&self) -> &BrokerStats {
        &self.inner.stats
    }
}

pub mod oracle {
    //! A deliberately naive reference broker: the executable
    //! specification of matching and filtering semantics.
    //!
    //! [`LinearBroker`] scans every subscription per publish and deep-
    //! clones per delivery — exactly the pre-sharding implementation.
    //! The routing-equivalence property test and the throughput bench
    //! both hold the production [`Broker`](super::Broker) to it: same
    //! delivery sets, same counters, only faster.

    use super::{BrokerOptions, BrokerStats, Delivery, LocalStats, SubscriptionKey, TopicPattern};
    use crossbeam::channel::{unbounded, Receiver, Sender};
    use safeweb_events::LabelledEvent;
    use safeweb_labels::PrivilegeSet;
    use safeweb_selector::Selector;
    use std::sync::Arc;

    struct LinearSub {
        key: SubscriptionKey,
        topic: TopicPattern,
        selector: Option<Selector>,
        clearance: PrivilegeSet,
        sender: Sender<Delivery>,
    }

    /// Single-threaded linear-scan reference broker.
    #[derive(Default)]
    pub struct LinearBroker {
        subs: Vec<LinearSub>,
        stats: BrokerStats,
        options: BrokerOptions,
    }

    impl LinearBroker {
        /// Creates a reference broker with default options.
        pub fn new() -> LinearBroker {
            LinearBroker::default()
        }

        /// Creates a reference broker with explicit options.
        pub fn with_options(options: BrokerOptions) -> LinearBroker {
            LinearBroker {
                options,
                ..LinearBroker::default()
            }
        }

        /// Registers a subscription (replacing any previous one under the
        /// same key) and returns its delivery channel.
        pub fn subscribe(
            &mut self,
            client: &str,
            subscription_id: &str,
            topic: &str,
            selector: Option<Selector>,
            clearance: PrivilegeSet,
        ) -> Receiver<Delivery> {
            let key = (client.to_string(), subscription_id.to_string());
            self.subs.retain(|s| s.key != key);
            let (tx, rx) = unbounded();
            self.subs.push(LinearSub {
                key,
                topic: TopicPattern::parse(topic),
                selector,
                clearance,
                sender: tx,
            });
            rx
        }

        /// Removes a subscription. Returns whether it existed.
        pub fn unsubscribe(&mut self, client: &str, subscription_id: &str) -> bool {
            let key = (client.to_string(), subscription_id.to_string());
            let before = self.subs.len();
            self.subs.retain(|s| s.key != key);
            self.subs.len() < before
        }

        /// Publishes one event by scanning every subscription.
        ///
        /// Returns the number of deliveries made.
        pub fn publish(&self, event: &LabelledEvent) -> usize {
            let mut local = LocalStats::default();
            let mut delivered = 0;
            for sub in &self.subs {
                if !sub.topic.matches(event.topic()) {
                    continue;
                }
                if let Some(selector) = &sub.selector {
                    if !selector.matches(event.event()) {
                        local.selector_filtered += 1;
                        continue;
                    }
                }
                if self.options.label_filtering && !event.labels().flows_to(&sub.clearance) {
                    local.label_filtered += 1;
                    continue;
                }
                let delivery = Delivery {
                    subscription_id: Arc::from(sub.key.1.as_str()),
                    // The deep per-subscriber clone the sharded broker
                    // exists to avoid.
                    event: Arc::new(event.clone()),
                };
                if sub.sender.send(delivery).is_ok() {
                    delivered += 1;
                    local.delivered += 1;
                }
            }
            local.flush(&self.stats, 1);
            delivered
        }

        /// Statistics counters (same semantics as the sharded broker's).
        pub fn stats(&self) -> &BrokerStats {
            &self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_events::Event;
    use safeweb_labels::{Label, Privilege};

    fn labelled(topic: &str, labels: &[Label]) -> LabelledEvent {
        Event::new(topic)
            .unwrap()
            .with_labels(labels.iter().cloned())
    }

    fn clearance_for(labels: &[Label]) -> PrivilegeSet {
        labels.iter().cloned().map(Privilege::clearance).collect()
    }

    #[test]
    fn topic_matching() {
        let broker = Broker::new();
        let rx = broker.subscribe("u", "1", "/a", None, PrivilegeSet::new());
        assert_eq!(broker.publish(&labelled("/a", &[])), 1);
        assert_eq!(broker.publish(&labelled("/b", &[])), 0);
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn prefix_topic_matching() {
        let broker = Broker::new();
        let _rx = broker.subscribe("u", "1", "/reports/*", None, PrivilegeSet::new());
        assert_eq!(broker.publish(&labelled("/reports/daily", &[])), 1);
        assert_eq!(broker.publish(&labelled("/reports", &[])), 1);
        assert_eq!(broker.publish(&labelled("/reportsX", &[])), 0);
    }

    #[test]
    fn label_filtering_blocks_uncleared_subscribers() {
        let broker = Broker::new();
        let patient = Label::conf("e", "patient/1");
        let cleared = broker.subscribe(
            "ok",
            "1",
            "/t",
            None,
            clearance_for(std::slice::from_ref(&patient)),
        );
        let uncleared = broker.subscribe("no", "1", "/t", None, PrivilegeSet::new());

        let n = broker.publish(&labelled("/t", std::slice::from_ref(&patient)));
        assert_eq!(n, 1);
        assert_eq!(cleared.len(), 1);
        assert_eq!(uncleared.len(), 0);
        assert_eq!(broker.stats().label_filtered(), 1);
    }

    #[test]
    fn integrity_labels_do_not_block_delivery() {
        let broker = Broker::new();
        let rx = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        assert_eq!(broker.publish(&labelled("/t", &[Label::int("e", "ok")])), 1);
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn selector_filtering() {
        let broker = Broker::new();
        let sel = Selector::parse("type = 'cancer'").unwrap();
        let rx = broker.subscribe("u", "1", "/t", Some(sel), PrivilegeSet::new());
        let hit = Event::new("/t")
            .unwrap()
            .with_attr("type", "cancer")
            .with_labels([]);
        let miss = Event::new("/t")
            .unwrap()
            .with_attr("type", "benign")
            .with_labels([]);
        broker.publish(&hit);
        broker.publish(&miss);
        assert_eq!(rx.len(), 1);
        assert_eq!(broker.stats().selector_filtered(), 1);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker = Broker::new();
        let rx = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        assert!(broker.unsubscribe("u", "1"));
        assert!(!broker.unsubscribe("u", "1"));
        assert_eq!(broker.publish(&labelled("/t", &[])), 0);
        assert_eq!(rx.len(), 0);
    }

    #[test]
    fn unsubscribe_all_on_disconnect() {
        let broker = Broker::new();
        broker.subscribe("u", "1", "/a", None, PrivilegeSet::new());
        broker.subscribe("u", "2", "/b", None, PrivilegeSet::new());
        broker.subscribe("v", "1", "/c", None, PrivilegeSet::new());
        assert_eq!(broker.unsubscribe_all("u"), 2);
        assert_eq!(broker.subscription_count(), 1);
    }

    #[test]
    fn multiple_subscriptions_same_client() {
        let broker = Broker::new();
        let rx1 = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        let rx2 = broker.subscribe("u", "2", "/t", None, PrivilegeSet::new());
        assert_eq!(broker.publish(&labelled("/t", &[])), 2);
        assert_eq!(&*rx1.recv().unwrap().subscription_id, "1");
        assert_eq!(&*rx2.recv().unwrap().subscription_id, "2");
    }

    #[test]
    fn disabling_label_filtering_is_explicit_baseline_mode() {
        let broker = Broker::with_options(BrokerOptions {
            label_filtering: false,
        });
        let rx = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        broker.publish(&labelled("/t", &[Label::conf("e", "p/1")]));
        // Baseline mode delivers even without clearance.
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn resubscribing_replaces_previous_subscription() {
        let broker = Broker::new();
        let old_rx = broker.subscribe("u", "1", "/old", None, PrivilegeSet::new());
        let new_rx = broker.subscribe("u", "1", "/new", None, PrivilegeSet::new());
        assert_eq!(broker.subscription_count(), 1);
        assert_eq!(broker.publish(&labelled("/old", &[])), 0);
        assert_eq!(broker.publish(&labelled("/new", &[])), 1);
        assert_eq!(old_rx.len(), 0);
        assert_eq!(new_rx.len(), 1);
    }

    #[test]
    fn deliveries_share_one_event_allocation() {
        let broker = Broker::new();
        let rx1 = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        let rx2 = broker.subscribe("u", "2", "/t", None, PrivilegeSet::new());
        broker.publish(&labelled("/t", &[]));
        let a = rx1.recv().unwrap().event;
        let b = rx2.recv().unwrap().event;
        assert!(Arc::ptr_eq(&a, &b), "subscribers must share the Arc");
    }

    #[test]
    fn sink_subscriptions_deliver_inline_and_report_liveness() {
        let broker = Broker::new();
        let got: Arc<parking_lot::Mutex<Vec<String>>> = Arc::default();
        let alive = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let sink_got = Arc::clone(&got);
        let sink_alive = Arc::clone(&alive);
        broker.subscribe_sink("u", "1", "/t", None, PrivilegeSet::new(), move |delivery| {
            sink_got.lock().push(delivery.event.topic().to_string());
            sink_alive.load(std::sync::atomic::Ordering::SeqCst)
        });
        assert_eq!(broker.publish(&labelled("/t", &[])), 1);
        assert_eq!(got.lock().as_slice(), ["/t".to_string()]);
        assert_eq!(broker.stats().delivered(), 1);

        // A dead sink no longer counts as a delivery (like a dropped
        // channel receiver), and label filtering still precedes it.
        alive.store(false, std::sync::atomic::Ordering::SeqCst);
        assert_eq!(broker.publish(&labelled("/t", &[])), 0);
        assert_eq!(
            broker.publish(&labelled("/t", &[Label::conf("e", "p/1")])),
            0
        );
        assert_eq!(got.lock().len(), 2, "uncleared event must not reach sink");
        assert_eq!(broker.stats().label_filtered(), 1);
        assert!(broker.unsubscribe("u", "1"));
    }

    #[test]
    fn publish_batch_delivers_and_counts_once() {
        let broker = Broker::new();
        let rx = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        let other = broker.subscribe("u", "2", "/elsewhere", None, PrivilegeSet::new());
        let batch = vec![
            labelled("/t", &[]),
            labelled("/elsewhere", &[]),
            labelled("/t", &[]),
            labelled("/nomatch", &[]),
        ];
        assert_eq!(broker.publish_batch(batch), 3);
        assert_eq!(rx.len(), 2);
        assert_eq!(other.len(), 1);
        assert_eq!(broker.stats().published(), 4);
        assert_eq!(broker.stats().delivered(), 3);
    }

    #[test]
    fn publish_batch_preserves_per_topic_order() {
        let broker = Broker::new();
        let rx = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        let batch: Vec<LabelledEvent> = (0..5)
            .map(|i| {
                Event::new("/t")
                    .unwrap()
                    .with_attr("seq", &i.to_string())
                    .with_labels([])
            })
            .collect();
        broker.publish_batch(batch);
        for i in 0..5 {
            let got = rx.recv().unwrap();
            assert_eq!(got.event.attr("seq"), Some(i.to_string().as_str()));
        }
    }

    #[test]
    fn exact_subscriptions_on_other_topics_are_not_scanned() {
        // Behavioural proxy for the structural claim: a publish must not
        // route to (or count filter stats for) subscriptions on other
        // exact topics, even when those would fail the label filter.
        let broker = Broker::new();
        let secret = Label::conf("e", "p/1");
        for i in 0..50 {
            broker.subscribe(
                "u",
                &i.to_string(),
                &format!("/other/{i}"),
                None,
                PrivilegeSet::new(),
            );
        }
        let rx = broker.subscribe(
            "u",
            "hit",
            "/t",
            None,
            clearance_for(std::slice::from_ref(&secret)),
        );
        assert_eq!(broker.publish(&labelled("/t", &[secret])), 1);
        assert_eq!(rx.len(), 1);
        assert_eq!(broker.stats().label_filtered(), 0);
        assert_eq!(broker.stats().selector_filtered(), 0);
    }

    #[test]
    fn nested_prefix_subscriptions_all_match() {
        let broker = Broker::new();
        let top = broker.subscribe("u", "1", "/a/*", None, PrivilegeSet::new());
        let mid = broker.subscribe("u", "2", "/a/b/*", None, PrivilegeSet::new());
        let deep = broker.subscribe("u", "3", "/a/b/c/*", None, PrivilegeSet::new());
        assert_eq!(broker.publish(&labelled("/a/b/c", &[])), 3);
        assert_eq!(top.len(), 1);
        assert_eq!(mid.len(), 1);
        assert_eq!(deep.len(), 1);
        assert_eq!(broker.publish(&labelled("/a/x", &[])), 1);
    }

    #[test]
    fn oracle_matches_on_basics() {
        let mut oracle = oracle::LinearBroker::new();
        let broker = Broker::new();
        let orx = oracle.subscribe("u", "1", "/r/*", None, PrivilegeSet::new());
        let brx = broker.subscribe("u", "1", "/r/*", None, PrivilegeSet::new());
        let event = labelled("/r/x", &[]);
        assert_eq!(oracle.publish(&event), broker.publish(&event));
        assert_eq!(orx.len(), brx.len());
    }
}
