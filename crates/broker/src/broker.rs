//! The embedded IFC-aware broker core (§4.2).
//!
//! The broker matches published events against subscriptions by topic and
//! optional SQL-92 selector, **then filters by security label**: an event is
//! delivered to a subscriber only if the subscriber's clearance privileges
//! cover every confidentiality label on the event. This is the property the
//! paper relies on to keep jailed units from ever observing data they are
//! not cleared for.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use safeweb_events::LabelledEvent;
use safeweb_labels::PrivilegeSet;
use safeweb_selector::Selector;

/// A topic pattern: exact (`/patient_report`) or prefix (`/reports/*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicPattern {
    /// Matches exactly one topic.
    Exact(String),
    /// Matches the prefix itself and any topic below it.
    Prefix(String),
}

impl TopicPattern {
    /// Parses a destination string; a trailing `/*` makes it a prefix
    /// pattern (an extension over the paper's exact topics, used by the
    /// monitoring examples).
    pub fn parse(s: &str) -> TopicPattern {
        match s.strip_suffix("/*") {
            Some(prefix) => TopicPattern::Prefix(prefix.to_string()),
            None => TopicPattern::Exact(s.to_string()),
        }
    }

    /// Whether `topic` is matched.
    pub fn matches(&self, topic: &str) -> bool {
        match self {
            TopicPattern::Exact(t) => t == topic,
            TopicPattern::Prefix(p) => {
                topic == p || topic.strip_prefix(p.as_str()).is_some_and(|r| r.starts_with('/'))
            }
        }
    }
}

impl fmt::Display for TopicPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicPattern::Exact(t) => write!(f, "{t}"),
            TopicPattern::Prefix(p) => write!(f, "{p}/*"),
        }
    }
}

/// Identifies a subscription: (client name, subscription id). Subscription
/// ids disambiguate multiple subscriptions from one unit (§4.2:
/// "subscriptions include unique identifiers").
pub type SubscriptionKey = (String, String);

#[derive(Debug)]
struct Subscription {
    topic: TopicPattern,
    selector: Option<Selector>,
    clearance: PrivilegeSet,
    sender: Sender<Delivery>,
}

/// An event as delivered to one subscriber: tagged with the subscription id
/// that matched.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Which subscription this delivery belongs to.
    pub subscription_id: String,
    /// The labelled event.
    pub event: LabelledEvent,
}

/// Counters exposed for the evaluation benches.
#[derive(Debug, Default)]
pub struct BrokerStats {
    published: AtomicU64,
    delivered: AtomicU64,
    label_filtered: AtomicU64,
    selector_filtered: AtomicU64,
}

impl BrokerStats {
    /// Events published.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Deliveries made (one per matching subscription).
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Deliveries suppressed because the subscriber lacked clearance.
    pub fn label_filtered(&self) -> u64 {
        self.label_filtered.load(Ordering::Relaxed)
    }

    /// Deliveries suppressed by a content selector.
    pub fn selector_filtered(&self) -> u64 {
        self.selector_filtered.load(Ordering::Relaxed)
    }
}

/// Configuration for [`Broker`].
#[derive(Debug, Clone)]
pub struct BrokerOptions {
    /// When `false`, label clearance filtering is skipped entirely. This
    /// exists **only** for the paper's baseline measurements (§5.3 measures
    /// throughput with and without label tracking); production deployments
    /// must leave it on.
    pub label_filtering: bool,
}

impl Default for BrokerOptions {
    fn default() -> BrokerOptions {
        BrokerOptions {
            label_filtering: true,
        }
    }
}

/// The embedded broker. Cheap to clone (shared state behind an [`Arc`]).
#[derive(Debug, Clone, Default)]
pub struct Broker {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    subs: RwLock<HashMap<SubscriptionKey, Subscription>>,
    stats: BrokerStats,
    options: RwLock<BrokerOptions>,
}

impl Broker {
    /// Creates a broker with default options (label filtering on).
    pub fn new() -> Broker {
        Broker::default()
    }

    /// Creates a broker with explicit options.
    pub fn with_options(options: BrokerOptions) -> Broker {
        let broker = Broker::new();
        *broker.inner.options.write() = options;
        broker
    }

    /// Registers a subscription and returns the receiving end of its
    /// delivery channel.
    ///
    /// `clearance` is the privilege set of the *subscribing principal* — in
    /// the deployed system this comes from the policy file, never from the
    /// subscriber itself. Re-subscribing with the same key replaces the
    /// previous subscription.
    pub fn subscribe(
        &self,
        client: &str,
        subscription_id: &str,
        topic: &str,
        selector: Option<Selector>,
        clearance: PrivilegeSet,
    ) -> Receiver<Delivery> {
        let (tx, rx) = unbounded();
        let sub = Subscription {
            topic: TopicPattern::parse(topic),
            selector,
            clearance,
            sender: tx,
        };
        self.inner
            .subs
            .write()
            .insert((client.to_string(), subscription_id.to_string()), sub);
        rx
    }

    /// Removes a subscription. Returns whether it existed.
    pub fn unsubscribe(&self, client: &str, subscription_id: &str) -> bool {
        self.inner
            .subs
            .write()
            .remove(&(client.to_string(), subscription_id.to_string()))
            .is_some()
    }

    /// Removes every subscription belonging to `client` (used when a
    /// connection drops).
    pub fn unsubscribe_all(&self, client: &str) -> usize {
        let mut subs = self.inner.subs.write();
        let before = subs.len();
        subs.retain(|(c, _), _| c != client);
        before - subs.len()
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.inner.subs.read().len()
    }

    /// Publishes an event: fan-out to every subscription whose topic and
    /// selector match **and** whose clearance covers the event's
    /// confidentiality labels.
    ///
    /// Returns the number of deliveries made.
    pub fn publish(&self, event: &LabelledEvent) -> usize {
        let label_filtering = self.inner.options.read().label_filtering;
        self.inner.stats.published.fetch_add(1, Ordering::Relaxed);
        let subs = self.inner.subs.read();
        let mut delivered = 0;
        for ((_, sub_id), sub) in subs.iter() {
            if !sub.topic.matches(event.topic()) {
                continue;
            }
            if let Some(sel) = &sub.selector {
                if !sel.matches(event.event()) {
                    self.inner
                        .stats
                        .selector_filtered
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            if label_filtering && !event.labels().flows_to(&sub.clearance) {
                self.inner
                    .stats
                    .label_filtered
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let delivery = Delivery {
                subscription_id: sub_id.clone(),
                event: event.clone(),
            };
            if sub.sender.send(delivery).is_ok() {
                delivered += 1;
                self.inner.stats.delivered.fetch_add(1, Ordering::Relaxed);
            }
        }
        delivered
    }

    /// Statistics counters.
    pub fn stats(&self) -> &BrokerStats {
        &self.inner.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_events::Event;
    use safeweb_labels::{Label, Privilege};

    fn labelled(topic: &str, labels: &[Label]) -> LabelledEvent {
        Event::new(topic)
            .unwrap()
            .with_labels(labels.iter().cloned())
    }

    fn clearance_for(labels: &[Label]) -> PrivilegeSet {
        labels
            .iter()
            .cloned()
            .map(Privilege::clearance)
            .collect()
    }

    #[test]
    fn topic_matching() {
        let broker = Broker::new();
        let rx = broker.subscribe("u", "1", "/a", None, PrivilegeSet::new());
        assert_eq!(broker.publish(&labelled("/a", &[])), 1);
        assert_eq!(broker.publish(&labelled("/b", &[])), 0);
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn prefix_topic_matching() {
        let broker = Broker::new();
        let _rx = broker.subscribe("u", "1", "/reports/*", None, PrivilegeSet::new());
        assert_eq!(broker.publish(&labelled("/reports/daily", &[])), 1);
        assert_eq!(broker.publish(&labelled("/reports", &[])), 1);
        assert_eq!(broker.publish(&labelled("/reportsX", &[])), 0);
    }

    #[test]
    fn label_filtering_blocks_uncleared_subscribers() {
        let broker = Broker::new();
        let patient = Label::conf("e", "patient/1");
        let cleared = broker.subscribe("ok", "1", "/t", None, clearance_for(&[patient.clone()]));
        let uncleared = broker.subscribe("no", "1", "/t", None, PrivilegeSet::new());

        let n = broker.publish(&labelled("/t", &[patient.clone()]));
        assert_eq!(n, 1);
        assert_eq!(cleared.len(), 1);
        assert_eq!(uncleared.len(), 0);
        assert_eq!(broker.stats().label_filtered(), 1);
    }

    #[test]
    fn integrity_labels_do_not_block_delivery() {
        let broker = Broker::new();
        let rx = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        assert_eq!(broker.publish(&labelled("/t", &[Label::int("e", "ok")])), 1);
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn selector_filtering() {
        let broker = Broker::new();
        let sel = Selector::parse("type = 'cancer'").unwrap();
        let rx = broker.subscribe("u", "1", "/t", Some(sel), PrivilegeSet::new());
        let hit = Event::new("/t").unwrap().with_attr("type", "cancer").with_labels([]);
        let miss = Event::new("/t").unwrap().with_attr("type", "benign").with_labels([]);
        broker.publish(&hit);
        broker.publish(&miss);
        assert_eq!(rx.len(), 1);
        assert_eq!(broker.stats().selector_filtered(), 1);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let broker = Broker::new();
        let rx = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        assert!(broker.unsubscribe("u", "1"));
        assert!(!broker.unsubscribe("u", "1"));
        assert_eq!(broker.publish(&labelled("/t", &[])), 0);
        assert_eq!(rx.len(), 0);
    }

    #[test]
    fn unsubscribe_all_on_disconnect() {
        let broker = Broker::new();
        broker.subscribe("u", "1", "/a", None, PrivilegeSet::new());
        broker.subscribe("u", "2", "/b", None, PrivilegeSet::new());
        broker.subscribe("v", "1", "/c", None, PrivilegeSet::new());
        assert_eq!(broker.unsubscribe_all("u"), 2);
        assert_eq!(broker.subscription_count(), 1);
    }

    #[test]
    fn multiple_subscriptions_same_client() {
        let broker = Broker::new();
        let rx1 = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        let rx2 = broker.subscribe("u", "2", "/t", None, PrivilegeSet::new());
        assert_eq!(broker.publish(&labelled("/t", &[])), 2);
        assert_eq!(rx1.recv().unwrap().subscription_id, "1");
        assert_eq!(rx2.recv().unwrap().subscription_id, "2");
    }

    #[test]
    fn disabling_label_filtering_is_explicit_baseline_mode() {
        let broker = Broker::with_options(BrokerOptions {
            label_filtering: false,
        });
        let rx = broker.subscribe("u", "1", "/t", None, PrivilegeSet::new());
        broker.publish(&labelled("/t", &[Label::conf("e", "p/1")]));
        // Baseline mode delivers even without clearance.
        assert_eq!(rx.len(), 1);
    }
}
