//! The networked broker: serves the STOMP dialect over TCP, assigning each
//! connection the privileges its `login` principal holds in the policy file
//! (§4.1: "privileges associated with labels are assigned directly to units
//! ... through a policy specification file").
//!
//! # Connection model
//!
//! The seed held every subscriber on three parked threads (reader, writer,
//! delivery pump); ten thousand idle subscribers meant thirty thousand
//! threads. This version multiplexes all connections over one
//! `safeweb-reactor` epoll loop:
//!
//! * frames are decoded incrementally on the reactor thread and their
//!   effects (login, subscribe, publish) run as per-connection FIFO jobs
//!   on the bounded worker pool, so frame order is preserved without a
//!   reader thread;
//! * broker deliveries reach a subscriber through a **sink**
//!   ([`Broker::subscribe_sink`]): the publisher's thread serialises the
//!   `MESSAGE` frame straight into the connection's bounded outbound
//!   queue and the reactor flushes it with nonblocking writes — an idle
//!   subscriber is a registered fd, not a parked thread;
//! * the outbound queue is capped ([`OUTBOX_CAP`]); a subscriber that
//!   stops reading while deliveries accumulate is disconnected rather
//!   than allowed to buffer unbounded memory in the broker process.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use safeweb_labels::{Policy, PrincipalKind, PrivilegeSet};
use safeweb_reactor::{ConnHandle, Protocol, Reactor, ReactorConfig, SendError};
use safeweb_selector::Selector;
use safeweb_stomp::codec::{encode, Decoder};
use safeweb_stomp::{Command, Frame};

use crate::broker::Broker;
use crate::wire::{
    event_to_frame, frame_to_event, DESTINATION_HEADER, SELECTOR_HEADER, SUBSCRIPTION_HEADER,
};

/// Per-connection outbound queue cap. A subscriber further behind than
/// this is a slow consumer and is disconnected (the alternative is the
/// broker buffering without bound on its behalf).
pub const OUTBOX_CAP: usize = 4 * 1024 * 1024;

/// A running broker server; dropping it stops the reactor and closes all
/// connections.
#[derive(Debug)]
pub struct BrokerServer {
    addr: SocketAddr,
    broker: Broker,
    reactor: Reactor,
}

impl BrokerServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving connections, validating logins against `policy`.
    ///
    /// # Errors
    ///
    /// Propagates bind and reactor setup errors.
    pub fn bind(addr: &str, broker: Broker, policy: Policy) -> io::Result<BrokerServer> {
        BrokerServer::bind_sharded(addr, 1, broker, policy)
    }

    /// Like [`BrokerServer::bind`], but decodes frames and flushes
    /// deliveries on `shards` reactor event-loop threads (clamped to
    /// ≥ 1): shard 0 accepts and round-robins connections, so a fan-out
    /// burst to tens of thousands of subscribers flushes from several
    /// cores instead of one.
    ///
    /// # Errors
    ///
    /// Propagates bind and reactor setup errors.
    pub fn bind_sharded(
        addr: &str,
        shards: usize,
        broker: Broker,
        policy: Policy,
    ) -> io::Result<BrokerServer> {
        let policy = Arc::new(policy);
        let conn_broker = broker.clone();
        let config = ReactorConfig {
            name: "safeweb-broker".to_string(),
            outbox_cap: OUTBOX_CAP,
            shards,
            // Idle subscribers are the working set here: never reap them.
            idle_timeout: None,
            ..ReactorConfig::default()
        };
        let reactor = Reactor::bind(addr, config, move || {
            Box::new(StompConn::new(conn_broker.clone(), Arc::clone(&policy)))
        })?;
        Ok(BrokerServer {
            addr: reactor.addr(),
            broker,
            reactor,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying embedded broker (shared with all connections).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Connections currently held by the reactor.
    pub fn active_connections(&self) -> usize {
        self.reactor.active_connections()
    }

    /// Outbound bytes queued across every connection (aggregate outbox
    /// depth): a persistently high value means subscribers are draining
    /// slower than publishers are fanning out.
    pub fn queued_bytes(&self) -> usize {
        self.reactor.queued_bytes()
    }

    /// Stops the server: no new connections, existing ones closed and
    /// their subscriptions cleaned up. Idempotent.
    pub fn shutdown(&mut self) {
        self.reactor.shutdown();
    }
}

/// Connection-unique client names: `login` alone would let two instances of
/// the same unit clobber each other's subscriptions.
static CONN_SEQ: AtomicU64 = AtomicU64::new(1);

/// Session state established by `CONNECT`, shared between the reactor-side
/// protocol and the worker jobs that apply frame effects.
struct Session {
    client_id: String,
    privileges: PrivilegeSet,
}

struct SessionShared {
    broker: Broker,
    policy: Arc<Policy>,
    session: Mutex<Option<Session>>,
}

/// Per-connection STOMP state machine (decoding on the reactor thread,
/// frame effects on the pool through the connection FIFO).
struct StompConn {
    decoder: Decoder,
    shared: Arc<SessionShared>,
    dead: bool,
}

impl StompConn {
    fn new(broker: Broker, policy: Arc<Policy>) -> StompConn {
        StompConn {
            decoder: Decoder::new(),
            shared: Arc::new(SessionShared {
                broker,
                policy,
                session: Mutex::new(None),
            }),
            dead: false,
        }
    }
}

impl Protocol for StompConn {
    fn on_bytes(&mut self, data: &[u8], conn: &ConnHandle) {
        if self.dead {
            return;
        }
        self.decoder.feed(data);
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => {
                    let disconnect = frame.command() == Command::Disconnect;
                    let shared = Arc::clone(&self.shared);
                    let io = conn.clone();
                    conn.dispatch(move || handle_frame(&shared, frame, &io));
                    if disconnect {
                        // Per STOMP, nothing meaningful follows DISCONNECT.
                        self.dead = true;
                        return;
                    }
                }
                Ok(None) => return,
                Err(error) => {
                    self.dead = true;
                    let io = conn.clone();
                    conn.dispatch(move || {
                        let _ = io.send(encode(&error_frame(&error.to_string())));
                        io.close_after_flush();
                    });
                    return;
                }
            }
        }
    }

    fn on_eof(&mut self, conn: &ConnHandle) {
        self.dead = true;
        let io = conn.clone();
        // Through the FIFO: effects of frames already dispatched (e.g. a
        // receipt for a final SEND) still go out.
        conn.dispatch(move || io.close_after_flush());
    }

    fn on_close(&mut self, conn: &ConnHandle) {
        let shared = Arc::clone(&self.shared);
        // FIFO-ordered after any in-flight frame jobs, so a queued
        // SUBSCRIBE cannot resurrect state after this cleanup.
        conn.dispatch(move || {
            let session = shared.session.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(session) = session.as_ref() {
                shared.broker.unsubscribe_all(&session.client_id);
            }
        });
    }
}

fn handle_frame(shared: &Arc<SessionShared>, frame: Frame, io: &ConnHandle) {
    let mut session = shared.session.lock().unwrap_or_else(|e| e.into_inner());
    match (frame.command(), session.as_ref()) {
        (Command::Connect, None) => {
            let login = frame.header("login").unwrap_or("anonymous");
            let privileges = shared.policy.privileges(PrincipalKind::Unit, login);
            let client_id = format!("{login}#{}", CONN_SEQ.fetch_add(1, Ordering::Relaxed));
            let connected = Frame::new(Command::Connected).with_header("session", &client_id);
            *session = Some(Session {
                client_id,
                privileges,
            });
            let _ = io.send(encode(&connected));
        }
        (_, None) => {
            let _ = io.send(encode(&error_frame("expected CONNECT")));
            io.close_after_flush();
        }
        (Command::Disconnect, Some(_)) => {
            io.close_after_flush();
        }
        (Command::Subscribe, Some(session)) => {
            let Some(dest) = frame.header(DESTINATION_HEADER) else {
                let _ = io.send(encode(&error_frame("SUBSCRIBE requires destination")));
                return;
            };
            let sub_id = frame.header("id").unwrap_or("0");
            let selector = match frame.header(SELECTOR_HEADER) {
                Some(src) => match Selector::parse(src) {
                    Ok(sel) => Some(sel),
                    Err(e) => {
                        let _ = io.send(encode(&error_frame(&format!("bad selector: {e}"))));
                        return;
                    }
                },
                None => None,
            };
            let sink_io = io.clone();
            shared.broker.subscribe_sink(
                &session.client_id,
                sub_id,
                dest,
                selector,
                session.privileges,
                move |delivery| {
                    let mut frame = event_to_frame(&delivery.event, Command::Message);
                    frame.push_header(SUBSCRIPTION_HEADER, delivery.subscription_id.to_string());
                    match sink_io.send(encode(&frame)) {
                        Ok(()) => true,
                        Err(SendError::Overflow) => {
                            // Backpressure policy: a subscriber this far
                            // behind is disconnected, not buffered for.
                            sink_io.close();
                            false
                        }
                        Err(SendError::Closed) => false,
                    }
                },
            );
        }
        (Command::Unsubscribe, Some(session)) => {
            let sub_id = frame.header("id").unwrap_or("0");
            shared.broker.unsubscribe(&session.client_id, sub_id);
        }
        (Command::Send, Some(_)) => match frame_to_event(&frame) {
            Ok(event) => {
                // The event is owned here: hand it straight to the
                // Arc-based path instead of the defensive-clone
                // `publish(&event)` entry point.
                shared.broker.publish_arc(std::sync::Arc::new(event));
                if let Some(receipt) = frame.header("receipt") {
                    let receipt_frame =
                        Frame::new(Command::Receipt).with_header("receipt-id", receipt);
                    let _ = io.send(encode(&receipt_frame));
                }
            }
            Err(e) => {
                let _ = io.send(encode(&error_frame(&format!("bad SEND: {e}"))));
            }
        },
        (other, Some(_)) => {
            let _ = io.send(encode(&error_frame(&format!("unexpected {other}"))));
        }
    }
}

fn error_frame(message: &str) -> Frame {
    Frame::new(Command::Error).with_header("message", message)
}
