//! STOMP client used by event-processing units to talk to a networked
//! broker (the paper's client side used the EventMachine-based Ruby STOMP
//! client; here it is a thin blocking wrapper over [`TcpTransport`]).

use std::fmt;
use std::io;
use std::time::Duration;

use safeweb_events::LabelledEvent;
use safeweb_stomp::{Command, Frame, TcpTransport, Transport};

use crate::wire::{event_to_frame, frame_to_event, SELECTOR_HEADER, SUBSCRIPTION_HEADER};

/// Error from client operations.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(io::Error),
    /// The broker sent an `ERROR` frame; contains its `message` header.
    Broker(String),
    /// The broker closed the connection.
    Disconnected,
    /// A received frame was not convertible to an event.
    BadFrame(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Broker(m) => write!(f, "broker error: {m}"),
            ClientError::Disconnected => write!(f, "broker disconnected"),
            ClientError::BadFrame(m) => write!(f, "bad frame from broker: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A delivery received from the broker.
#[derive(Debug, Clone)]
pub struct ClientDelivery {
    /// The subscription id the event matched.
    pub subscription_id: String,
    /// The labelled event.
    pub event: LabelledEvent,
}

/// A blocking STOMP event client.
#[derive(Debug)]
pub struct EventClient {
    transport: TcpTransport,
    session: String,
    next_sub_id: u64,
}

impl EventClient {
    /// Connects and logs in as `login` (a unit name from the policy file).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on connection failure or if the broker
    /// rejects the session.
    pub fn connect(addr: &str, login: &str) -> Result<EventClient, ClientError> {
        let mut transport = TcpTransport::connect(addr)?;
        transport.send_frame(&Frame::new(Command::Connect).with_header("login", login))?;
        match transport.recv_frame()? {
            Some(f) if f.command() == Command::Connected => {
                let session = f.header("session").unwrap_or_default().to_string();
                Ok(EventClient {
                    transport,
                    session,
                    next_sub_id: 1,
                })
            }
            Some(f) if f.command() == Command::Error => Err(ClientError::Broker(
                f.header("message").unwrap_or("unknown").to_string(),
            )),
            Some(f) => Err(ClientError::BadFrame(format!(
                "expected CONNECTED, got {}",
                f.command()
            ))),
            None => Err(ClientError::Disconnected),
        }
    }

    /// The broker-assigned session identifier.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// Subscribes to `topic`, optionally with a selector; returns the
    /// subscription id.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure.
    pub fn subscribe(
        &mut self,
        topic: &str,
        selector: Option<&str>,
    ) -> Result<String, ClientError> {
        let id = self.next_sub_id.to_string();
        self.next_sub_id += 1;
        let mut frame = Frame::new(Command::Subscribe)
            .with_header("destination", topic)
            .with_header("id", &id);
        if let Some(sel) = selector {
            frame.push_header(SELECTOR_HEADER, sel);
        }
        self.transport.send_frame(&frame)?;
        Ok(id)
    }

    /// Cancels a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure.
    pub fn unsubscribe(&mut self, subscription_id: &str) -> Result<(), ClientError> {
        self.transport
            .send_frame(&Frame::new(Command::Unsubscribe).with_header("id", subscription_id))?;
        Ok(())
    }

    /// Publishes a labelled event.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport failure.
    pub fn publish(&mut self, event: &LabelledEvent) -> Result<(), ClientError> {
        self.transport
            .send_frame(&event_to_frame(event, Command::Send))?;
        Ok(())
    }

    /// Blocks until the next delivery arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Disconnected`] on EOF, [`ClientError::Broker`]
    /// if the broker reports an error, or transport errors.
    pub fn next_delivery(&mut self) -> Result<ClientDelivery, ClientError> {
        loop {
            match self.transport.recv_frame()? {
                None => return Err(ClientError::Disconnected),
                Some(f) => match f.command() {
                    Command::Message => {
                        let subscription_id =
                            f.header(SUBSCRIPTION_HEADER).unwrap_or("0").to_string();
                        let event =
                            frame_to_event(&f).map_err(|e| ClientError::BadFrame(e.to_string()))?;
                        return Ok(ClientDelivery {
                            subscription_id,
                            event,
                        });
                    }
                    Command::Error => {
                        return Err(ClientError::Broker(
                            f.header("message").unwrap_or("unknown").to_string(),
                        ))
                    }
                    Command::Receipt => continue,
                    other => {
                        return Err(ClientError::BadFrame(format!("unexpected {other}")));
                    }
                },
            }
        }
    }

    /// Like [`EventClient::next_delivery`] but gives up after `timeout`,
    /// returning `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Same as [`EventClient::next_delivery`] for non-timeout failures.
    pub fn next_delivery_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<ClientDelivery>, ClientError> {
        self.transport.set_read_timeout(Some(timeout))?;
        let result = match self.next_delivery() {
            Ok(d) => Ok(Some(d)),
            Err(ClientError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        };
        self.transport.set_read_timeout(None)?;
        result
    }

    /// Sends `DISCONNECT` and drops the connection.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] if the frame cannot be sent.
    pub fn disconnect(mut self) -> Result<(), ClientError> {
        self.transport
            .send_frame(&Frame::new(Command::Disconnect))?;
        Ok(())
    }
}
