//! The pre-reactor thread-per-connection STOMP server, retained as the
//! baseline the idle-connection benches compare against.
//!
//! Every connection costs a reader thread, a writer thread, and one
//! delivery-pump thread per subscription — the scaling wall that
//! motivated the reactor frontend (`crates/reactor`). Protocol semantics
//! are identical to [`crate::BrokerServer`]; only the connection model
//! differs. The historic accept-loop fragility (one transient `accept()`
//! error permanently stopped the server) is fixed here too: errors are
//! logged and retried after a short backoff.
//!
//! New code should use [`crate::BrokerServer`].

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use safeweb_labels::{Policy, PrincipalKind};
use safeweb_selector::Selector;
use safeweb_stomp::{Command, Frame, TcpTransport, Transport};

use crate::broker::{Broker, Delivery};
use crate::wire::{
    event_to_frame, frame_to_event, DESTINATION_HEADER, SELECTOR_HEADER, SUBSCRIPTION_HEADER,
};

/// A running thread-per-connection broker server; dropping it stops
/// accepting new connections.
#[derive(Debug)]
pub struct ThreadedBrokerServer {
    addr: SocketAddr,
    broker: Broker,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ThreadedBrokerServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, validating logins against `policy`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(addr: &str, broker: Broker, policy: Policy) -> io::Result<ThreadedBrokerServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_broker = broker.clone();
        let policy = Arc::new(policy);
        let accept_thread = std::thread::Builder::new()
            .name("safeweb-broker-accept".to_string())
            .spawn(move || {
                loop {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let broker = accept_broker.clone();
                            let policy = Arc::clone(&policy);
                            std::thread::Builder::new()
                                .name("safeweb-broker-conn".to_string())
                                .spawn(move || {
                                    let _ = serve_connection(stream, broker, &policy);
                                })
                                .expect("spawn connection thread");
                        }
                        Err(e) => {
                            // Transient errors (EMFILE, ECONNABORTED, ...)
                            // must not kill the server; back off and retry.
                            eprintln!("safeweb-broker (threaded): accept error (retrying): {e}");
                            std::thread::sleep(Duration::from_millis(50));
                        }
                    }
                }
            })
            .expect("spawn accept thread");
        Ok(ThreadedBrokerServer {
            addr: local,
            broker,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying embedded broker (shared with all connections).
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Stops accepting connections. Existing connections continue until
    /// their peers disconnect.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ThreadedBrokerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Connection-unique client names (separate sequence from the reactor
/// server's; ids only need process-local uniqueness).
static CONN_SEQ: AtomicU64 = AtomicU64::new(1);

fn serve_connection(stream: TcpStream, broker: Broker, policy: &Policy) -> io::Result<()> {
    let mut transport = TcpTransport::new(stream.try_clone()?);

    // Expect CONNECT first.
    let connect = match transport.recv_frame()? {
        Some(f) if f.command() == Command::Connect => f,
        Some(_) => {
            let _ = transport
                .send_frame(&Frame::new(Command::Error).with_header("message", "expected CONNECT"));
            return Ok(());
        }
        None => return Ok(()),
    };
    let login = connect.header("login").unwrap_or("anonymous").to_string();
    let privileges = policy.privileges(PrincipalKind::Unit, &login);
    let client_id = format!("{login}#t{}", CONN_SEQ.fetch_add(1, Ordering::Relaxed));

    transport.send_frame(&Frame::new(Command::Connected).with_header("session", &client_id))?;

    // Writer thread: serialises outbound MESSAGE frames.
    let (out_tx, out_rx): (Sender<Frame>, Receiver<Frame>) = unbounded();
    let writer_stream = stream.try_clone()?;
    let writer = std::thread::Builder::new()
        .name("safeweb-broker-writer".to_string())
        .spawn(move || {
            let mut t = TcpTransport::new(writer_stream);
            while let Ok(frame) = out_rx.recv() {
                if t.send_frame(&frame).is_err() {
                    break;
                }
            }
        })
        .expect("spawn writer thread");

    let result = reader_loop(&mut transport, &broker, &privileges, &client_id, &out_tx);

    broker.unsubscribe_all(&client_id);
    drop(out_tx);
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let _ = writer.join();
    result
}

fn reader_loop(
    transport: &mut TcpTransport,
    broker: &Broker,
    privileges: &safeweb_labels::PrivilegeSet,
    client_id: &str,
    out_tx: &Sender<Frame>,
) -> io::Result<()> {
    loop {
        let frame = match transport.recv_frame() {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ =
                    out_tx.send(Frame::new(Command::Error).with_header("message", e.to_string()));
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        match frame.command() {
            Command::Disconnect => return Ok(()),
            Command::Subscribe => {
                let Some(dest) = frame.header(DESTINATION_HEADER) else {
                    let _ = out_tx.send(error_frame("SUBSCRIBE requires destination"));
                    continue;
                };
                let sub_id = frame.header("id").unwrap_or("0").to_string();
                let selector = match frame.header(SELECTOR_HEADER) {
                    Some(src) => match Selector::parse(src) {
                        Ok(sel) => Some(sel),
                        Err(e) => {
                            let _ = out_tx.send(error_frame(&format!("bad selector: {e}")));
                            continue;
                        }
                    },
                    None => None,
                };
                let rx = broker.subscribe(client_id, &sub_id, dest, selector, *privileges);
                spawn_delivery_pump(rx, out_tx.clone());
            }
            Command::Unsubscribe => {
                let sub_id = frame.header("id").unwrap_or("0");
                broker.unsubscribe(client_id, sub_id);
            }
            Command::Send => match frame_to_event(&frame) {
                Ok(event) => {
                    broker.publish_arc(std::sync::Arc::new(event));
                    if let Some(receipt) = frame.header("receipt") {
                        let _ = out_tx
                            .send(Frame::new(Command::Receipt).with_header("receipt-id", receipt));
                    }
                }
                Err(e) => {
                    let _ = out_tx.send(error_frame(&format!("bad SEND: {e}")));
                }
            },
            other => {
                let _ = out_tx.send(error_frame(&format!("unexpected {other}")));
            }
        }
    }
}

fn spawn_delivery_pump(rx: crossbeam::channel::Receiver<Delivery>, out_tx: Sender<Frame>) {
    std::thread::Builder::new()
        .name("safeweb-broker-pump".to_string())
        .spawn(move || {
            while let Ok(delivery) = rx.recv() {
                let mut frame = event_to_frame(&delivery.event, Command::Message);
                frame.push_header(SUBSCRIPTION_HEADER, delivery.subscription_id.to_string());
                if out_tx.send(frame).is_err() {
                    break;
                }
            }
        })
        .expect("spawn delivery pump");
}

fn error_frame(message: &str) -> Frame {
    Frame::new(Command::Error).with_header("message", message)
}
