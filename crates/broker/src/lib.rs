//! # safeweb-broker
//!
//! SafeWeb's IFC-aware event broker (§4.2): topic-based publish/subscribe
//! with optional SQL-92 content selectors, where delivery additionally
//! requires the subscriber's **clearance privileges** to cover every
//! confidentiality label on the event.
//!
//! Three layers:
//!
//! * [`Broker`] — the embedded matching/filtering core (usable in-process),
//! * [`BrokerServer`] — the networked broker speaking the STOMP dialect of
//!   `safeweb-stomp` over TCP, assigning privileges per the policy file,
//! * [`EventClient`] — the blocking client units use to publish/subscribe.
//!
//! ```
//! use safeweb_broker::Broker;
//! use safeweb_events::Event;
//! use safeweb_labels::{Label, Privilege, PrivilegeSet};
//!
//! let broker = Broker::new();
//! let patient = Label::conf("ecric.org.uk", "patient/1");
//! let mut clearance = PrivilegeSet::new();
//! clearance.grant(Privilege::clearance(patient.clone()));
//!
//! let rx = broker.subscribe("mdt_unit", "1", "/patient_report", None, clearance);
//! let event = Event::new("/patient_report")?.with_labels([patient]);
//! assert_eq!(broker.publish(&event), 1);
//! assert_eq!(rx.recv().unwrap().event.topic(), "/patient_report");
//! # Ok::<(), safeweb_events::EventError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod broker;
mod client;
mod server;
mod threaded;
pub mod wire;

pub use broker::{
    oracle, Broker, BrokerOptions, BrokerStats, Delivery, SubscriptionKey, TopicPattern,
    SHARD_COUNT,
};
pub use client::{ClientDelivery, ClientError, EventClient};
pub use server::{BrokerServer, OUTBOX_CAP};
pub use threaded::ThreadedBrokerServer;
