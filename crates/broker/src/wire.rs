//! Mapping between [`LabelledEvent`]s and STOMP frames.
//!
//! Event attributes travel as ordinary headers; the middleware adds the
//! protected headers `x-safeweb-id` and `x-safeweb-labels` (§4.2: "labels
//! ... are encoded as event headers with special semantics").

use std::fmt;

use safeweb_events::{Event, EventError, EventId, LabelledEvent};
use safeweb_labels::LabelSet;
use safeweb_stomp::{Command, Frame};

/// Header carrying the label set on the wire.
pub const LABELS_HEADER: &str = "x-safeweb-labels";
/// Header carrying the event id on the wire.
pub const ID_HEADER: &str = "x-safeweb-id";
/// Header carrying the destination topic.
pub const DESTINATION_HEADER: &str = "destination";
/// Header identifying which subscription a MESSAGE belongs to.
pub const SUBSCRIPTION_HEADER: &str = "subscription";
/// Header carrying a content-based subscription selector.
pub const SELECTOR_HEADER: &str = "selector";

/// Error converting a frame into an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame has no `destination` header.
    MissingDestination,
    /// The labels header did not parse.
    BadLabels(String),
    /// The body is not valid UTF-8 (event payloads are untyped *strings*).
    BadBody,
    /// The attributes were invalid as event attributes.
    BadEvent(EventError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::MissingDestination => write!(f, "frame has no destination header"),
            WireError::BadLabels(s) => write!(f, "malformed labels header: {s}"),
            WireError::BadBody => write!(f, "event body is not valid UTF-8"),
            WireError::BadEvent(e) => write!(f, "invalid event: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<EventError> for WireError {
    fn from(e: EventError) -> WireError {
        WireError::BadEvent(e)
    }
}

/// Encodes a labelled event as a frame with the given command
/// (`SEND` from publishers, `MESSAGE` from the broker).
pub fn event_to_frame(event: &LabelledEvent, command: Command) -> Frame {
    let mut frame = Frame::new(command)
        .with_header(DESTINATION_HEADER, event.topic())
        .with_header(ID_HEADER, event.event().id().to_string())
        .with_header(LABELS_HEADER, event.labels().to_wire());
    for (k, v) in event.event().attributes() {
        frame.push_header(k.clone(), v.clone());
    }
    if let Some(payload) = event.event().payload() {
        frame.set_body(payload.as_bytes().to_vec());
    }
    frame
}

/// Decodes a `SEND`/`MESSAGE` frame back into a labelled event.
///
/// Unknown non-protected headers become event attributes. A missing labels
/// header decodes as the empty label set (public data).
///
/// # Errors
///
/// Returns [`WireError`] when the destination is missing, the labels
/// header is malformed, the body is not UTF-8, or an attribute is invalid.
pub fn frame_to_event(frame: &Frame) -> Result<LabelledEvent, WireError> {
    let topic = frame
        .header(DESTINATION_HEADER)
        .ok_or(WireError::MissingDestination)?;
    let mut event = Event::new(topic).map_err(WireError::BadEvent)?;

    if let Some(id) = frame.header(ID_HEADER) {
        if let Ok(id) = id.parse::<EventId>() {
            event.set_id(id);
        }
    }

    for (k, v) in frame.headers() {
        match k.as_str() {
            DESTINATION_HEADER | ID_HEADER | LABELS_HEADER | SUBSCRIPTION_HEADER
            | SELECTOR_HEADER | "content-length" | "receipt" | "id" => {}
            _ => event.set_attr(k, v)?,
        }
    }

    if !frame.body().is_empty() {
        let body = frame.body_str().ok_or(WireError::BadBody)?;
        event.set_payload(body);
    }

    let labels = match frame.header(LABELS_HEADER) {
        Some(wire) => LabelSet::from_wire(wire).map_err(|e| WireError::BadLabels(e.to_string()))?,
        None => LabelSet::new(),
    };
    Ok(event.with_label_set(labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_labels::Label;

    #[test]
    fn event_frame_roundtrip() {
        let event = Event::new("/patient_report")
            .unwrap()
            .with_attr("type", "cancer")
            .with_attr("patient_id", "42")
            .with_payload("details")
            .with_labels([Label::conf("ecric.org.uk", "patient/42")]);
        let frame = event_to_frame(&event, Command::Send);
        let back = frame_to_event(&frame).unwrap();
        assert_eq!(back.topic(), "/patient_report");
        assert_eq!(back.attr("type"), Some("cancer"));
        assert_eq!(back.attr("patient_id"), Some("42"));
        assert_eq!(back.event().payload(), Some("details"));
        assert_eq!(back.labels(), event.labels());
        assert_eq!(back.event().id(), event.event().id());
    }

    #[test]
    fn missing_labels_header_is_public() {
        let frame = Frame::new(Command::Send).with_header(DESTINATION_HEADER, "/t");
        let event = frame_to_event(&frame).unwrap();
        assert!(event.labels().is_empty());
    }

    #[test]
    fn missing_destination_rejected() {
        let frame = Frame::new(Command::Send);
        assert_eq!(frame_to_event(&frame), Err(WireError::MissingDestination));
    }

    #[test]
    fn malformed_labels_rejected() {
        let frame = Frame::new(Command::Send)
            .with_header(DESTINATION_HEADER, "/t")
            .with_header(LABELS_HEADER, "not-a-label");
        assert!(matches!(
            frame_to_event(&frame),
            Err(WireError::BadLabels(_))
        ));
    }

    #[test]
    fn non_utf8_body_rejected() {
        let frame = Frame::new(Command::Send)
            .with_header(DESTINATION_HEADER, "/t")
            .with_body(vec![0xff, 0xfe]);
        assert_eq!(frame_to_event(&frame), Err(WireError::BadBody));
    }
}
