//! Oracle equivalence: the sharded exact-index/prefix-trie broker must be
//! observationally identical to the linear-scan reference
//! ([`safeweb_broker::oracle::LinearBroker`]) — same delivery sets per
//! subscription, same publish return values, same [`BrokerStats`]
//! counters — across random mixes of exact/prefix topics, selectors,
//! labels, clearances, replacements and unsubscribes. Only the complexity
//! may differ.

use std::collections::BTreeMap;

use proptest::prelude::*;
use safeweb_broker::{oracle::LinearBroker, Broker, BrokerOptions, Delivery};
use safeweb_events::{Event, LabelledEvent};
use safeweb_labels::{Label, Privilege, PrivilegeSet};
use safeweb_selector::Selector;

/// Topic paths over a tiny segment alphabet so exact topics, prefixes
/// and near-miss siblings (`/a` vs `/ab`) all collide interestingly.
fn arb_topic() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("/a".to_string()),
        Just("/ab".to_string()),
        Just("/a/b".to_string()),
        Just("/a/b/c".to_string()),
        Just("/a/c".to_string()),
        Just("/b".to_string()),
        Just("/b/c".to_string()),
        Just("/c/a/b".to_string()),
    ]
}

/// A destination string: an exact topic or a prefix pattern over one.
fn arb_destination() -> impl Strategy<Value = String> {
    prop_oneof![arb_topic(), arb_topic().prop_map(|t| format!("{t}/*")),]
}

fn arb_label() -> impl Strategy<Value = Label> {
    prop_oneof![
        Just(Label::conf("e", "p/1")),
        Just(Label::conf("e", "p/2")),
        Just(Label::conf("e", "mdt/a")),
        Just(Label::int("e", "ok")),
    ]
}

fn arb_labels() -> impl Strategy<Value = Vec<Label>> {
    proptest::collection::vec(arb_label(), 0..3)
}

/// Selector sources over the attributes events carry.
fn arb_selector() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        Just(None),
        Just(Some("type = 'cancer'".to_string())),
        Just(Some("n > 5".to_string())),
        Just(Some("type = 'benign' AND n <= 3".to_string())),
        Just(Some("missing IS NULL".to_string())),
    ]
}

#[derive(Debug, Clone)]
struct SubSpec {
    client: &'static str,
    id: u8,
    destination: String,
    selector: Option<String>,
    clearance: Vec<Label>,
}

fn arb_sub() -> impl Strategy<Value = SubSpec> {
    (
        prop_oneof![Just("u"), Just("v")],
        0u8..5,
        arb_destination(),
        arb_selector(),
        arb_labels(),
    )
        .prop_map(|(client, id, destination, selector, clearance)| SubSpec {
            client,
            id,
            destination,
            selector,
            clearance,
        })
}

/// Events get a unique `seq` attribute so delivery sequences can be
/// compared exactly across both brokers.
fn arb_events() -> impl Strategy<Value = Vec<LabelledEvent>> {
    proptest::collection::vec(
        (
            arb_topic(),
            0i64..10,
            prop_oneof![Just("cancer"), Just("benign")],
            arb_labels(),
        ),
        0..25,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(seq, (topic, n, kind, labels))| {
                Event::new(&topic)
                    .unwrap()
                    .with_attr("seq", &seq.to_string())
                    .with_attr("n", &n.to_string())
                    .with_attr("type", kind)
                    .with_labels(labels)
            })
            .collect()
    })
}

fn clearance_set(labels: &[Label]) -> PrivilegeSet {
    labels.iter().cloned().map(Privilege::clearance).collect()
}

/// Drains a receiver into the sequence of `seq` attributes delivered.
fn drain(rx: &crossbeam::channel::Receiver<Delivery>) -> Vec<String> {
    let mut seqs = Vec::new();
    while let Ok(d) = rx.try_recv() {
        seqs.push(d.event.attr("seq").unwrap_or("?").to_string());
    }
    seqs
}

/// Builds both brokers from the same spec and returns per-key receivers.
#[allow(clippy::type_complexity)]
fn build(
    subs: &[SubSpec],
    unsub_mask: u32,
    options: &BrokerOptions,
) -> (
    Broker,
    LinearBroker,
    BTreeMap<
        (String, String),
        (
            crossbeam::channel::Receiver<Delivery>,
            crossbeam::channel::Receiver<Delivery>,
        ),
    >,
) {
    let sharded = Broker::with_options(options.clone());
    let mut linear = LinearBroker::with_options(options.clone());
    let mut receivers = BTreeMap::new();
    for spec in subs {
        let id = spec.id.to_string();
        let selector = spec
            .selector
            .as_deref()
            .map(|src| Selector::parse(src).expect("pool selectors parse"));
        let srx = sharded.subscribe(
            spec.client,
            &id,
            &spec.destination,
            selector.clone(),
            clearance_set(&spec.clearance),
        );
        let lrx = linear.subscribe(
            spec.client,
            &id,
            &spec.destination,
            selector,
            clearance_set(&spec.clearance),
        );
        receivers.insert((spec.client.to_string(), id), (srx, lrx));
    }
    // Unsubscribe the same pseudo-random subset from both sides.
    let keys: Vec<(String, String)> = receivers.keys().cloned().collect();
    for (i, (client, id)) in keys.iter().enumerate() {
        if unsub_mask & (1 << (i % 32)) != 0 {
            assert_eq!(
                sharded.unsubscribe(client, id),
                linear.unsubscribe(client, id),
                "unsubscribe({client}, {id}) existence must agree"
            );
            receivers.remove(&(client.clone(), id.clone()));
        }
    }
    (sharded, linear, receivers)
}

fn assert_stats_equal(sharded: &Broker, linear: &LinearBroker) -> Result<(), TestCaseError> {
    prop_assert_eq!(sharded.stats().published(), linear.stats().published());
    prop_assert_eq!(sharded.stats().delivered(), linear.stats().delivered());
    prop_assert_eq!(
        sharded.stats().label_filtered(),
        linear.stats().label_filtered()
    );
    prop_assert_eq!(
        sharded.stats().selector_filtered(),
        linear.stats().selector_filtered()
    );
    Ok(())
}

proptest! {
    /// Event-by-event publishing: identical per-subscription delivery
    /// sequences, publish return values, and stats counters.
    #[test]
    fn single_publish_matches_oracle(
        subs in proptest::collection::vec(arb_sub(), 0..12),
        events in arb_events(),
        unsub_mask in any::<u32>(),
    ) {
        let (sharded, linear, receivers) = build(&subs, unsub_mask, &BrokerOptions::default());
        for event in &events {
            prop_assert_eq!(sharded.publish(event), linear.publish(event));
        }
        for ((client, id), (srx, lrx)) in &receivers {
            prop_assert_eq!(drain(srx), drain(lrx), "deliveries for ({}, {})", client, id);
        }
        assert_stats_equal(&sharded, &linear)?;
    }

    /// Batch publishing delivers the same multiset per subscription as
    /// the oracle's event-by-event scan (order is only guaranteed within
    /// one topic, so sequences are compared sorted) with the same
    /// counters.
    #[test]
    fn batch_publish_matches_oracle(
        subs in proptest::collection::vec(arb_sub(), 0..12),
        events in arb_events(),
        unsub_mask in any::<u32>(),
    ) {
        let (sharded, linear, receivers) = build(&subs, unsub_mask, &BrokerOptions::default());
        let mut linear_total = 0;
        for event in &events {
            linear_total += linear.publish(event);
        }
        prop_assert_eq!(sharded.publish_batch(events), linear_total);
        for ((client, id), (srx, lrx)) in &receivers {
            let mut got = drain(srx);
            let mut want = drain(lrx);
            got.sort();
            want.sort();
            prop_assert_eq!(got, want, "deliveries for ({}, {})", client, id);
        }
        assert_stats_equal(&sharded, &linear)?;
    }

    /// The §5.3 baseline mode (label filtering off) stays equivalent too:
    /// routing and selector behaviour are unchanged, only the clearance
    /// check is skipped — on both sides.
    #[test]
    fn baseline_mode_matches_oracle(
        subs in proptest::collection::vec(arb_sub(), 0..8),
        events in arb_events(),
    ) {
        let options = BrokerOptions { label_filtering: false };
        let (sharded, linear, receivers) = build(&subs, 0, &options);
        for event in &events {
            prop_assert_eq!(sharded.publish(event), linear.publish(event));
        }
        for ((client, id), (srx, lrx)) in &receivers {
            prop_assert_eq!(drain(srx), drain(lrx), "deliveries for ({}, {})", client, id);
        }
        assert_stats_equal(&sharded, &linear)?;
    }
}
