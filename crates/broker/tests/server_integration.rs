//! Integration tests: full client ↔ TCP server ↔ broker flows, including
//! label filtering across the network and failure handling.

use std::time::Duration;

use safeweb_broker::{Broker, BrokerServer, ClientError, EventClient};
use safeweb_events::Event;
use safeweb_labels::{Label, Policy};

fn policy() -> Policy {
    "
    unit producer {
        clearance label:conf:ecric.org.uk/*
    }
    unit mdt_a {
        clearance label:conf:ecric.org.uk/mdt/a
    }
    unit nosy {
    }
    "
    .parse()
    .unwrap()
}

fn start_server() -> BrokerServer {
    BrokerServer::bind("127.0.0.1:0", Broker::new(), policy()).unwrap()
}

#[test]
fn end_to_end_publish_subscribe() {
    let server = start_server();
    let addr = server.addr().to_string();

    let mut consumer = EventClient::connect(&addr, "mdt_a").unwrap();
    consumer.subscribe("/patient_report", None).unwrap();
    // Give the subscription time to register before publishing.
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    let event = Event::new("/patient_report")
        .unwrap()
        .with_attr("type", "cancer")
        .with_payload("record")
        .with_labels([Label::conf("ecric.org.uk", "mdt/a")]);
    producer.publish(&event).unwrap();

    let delivery = consumer.next_delivery().unwrap();
    assert_eq!(delivery.event.topic(), "/patient_report");
    assert_eq!(delivery.event.attr("type"), Some("cancer"));
    assert_eq!(delivery.event.event().payload(), Some("record"));
    assert_eq!(
        delivery.event.labels().to_wire(),
        "label:conf:ecric.org.uk/mdt/a"
    );
}

#[test]
fn label_filtering_enforced_over_network() {
    let server = start_server();
    let addr = server.addr().to_string();

    let mut nosy = EventClient::connect(&addr, "nosy").unwrap();
    nosy.subscribe("/patient_report", None).unwrap();
    let mut cleared = EventClient::connect(&addr, "mdt_a").unwrap();
    cleared.subscribe("/patient_report", None).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    producer
        .publish(
            &Event::new("/patient_report")
                .unwrap()
                .with_labels([Label::conf("ecric.org.uk", "mdt/a")]),
        )
        .unwrap();

    // The cleared client receives it; the nosy one times out.
    assert!(cleared.next_delivery().is_ok());
    let got = nosy
        .next_delivery_timeout(Duration::from_millis(200))
        .unwrap();
    assert!(
        got.is_none(),
        "uncleared subscriber must not receive labelled events"
    );
}

#[test]
fn selector_filtering_over_network() {
    let server = start_server();
    let addr = server.addr().to_string();

    let mut consumer = EventClient::connect(&addr, "producer").unwrap();
    consumer
        .subscribe("/patient_report", Some("type = 'cancer'"))
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    for t in ["benign", "cancer"] {
        producer
            .publish(
                &Event::new("/patient_report")
                    .unwrap()
                    .with_attr("type", t)
                    .with_labels([]),
            )
            .unwrap();
    }
    let d = consumer.next_delivery().unwrap();
    assert_eq!(d.event.attr("type"), Some("cancer"));
}

#[test]
fn bad_selector_produces_broker_error() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut client = EventClient::connect(&addr, "producer").unwrap();
    client.subscribe("/t", Some("type = = 'x'")).unwrap();
    match client.next_delivery() {
        Err(ClientError::Broker(msg)) => assert!(msg.contains("selector"), "{msg}"),
        other => panic!("expected broker error, got {other:?}"),
    }
}

#[test]
fn unsubscribe_stops_flow() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut consumer = EventClient::connect(&addr, "producer").unwrap();
    let sub = consumer.subscribe("/t", None).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    consumer.unsubscribe(&sub).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    producer
        .publish(&Event::new("/t").unwrap().with_labels([]))
        .unwrap();
    let got = consumer
        .next_delivery_timeout(Duration::from_millis(200))
        .unwrap();
    assert!(got.is_none());
}

#[test]
fn disconnect_cleans_up_subscriptions() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut consumer = EventClient::connect(&addr, "mdt_a").unwrap();
    consumer.subscribe("/t", None).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(server.broker().subscription_count(), 1);
    consumer.disconnect().unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(server.broker().subscription_count(), 0);
}

use safeweb_reactor::sys::os_thread_count as thread_count;

#[test]
fn idle_subscribers_do_not_cost_threads() {
    let server = start_server();
    let addr = server.addr().to_string();

    let mut active = EventClient::connect(&addr, "mdt_a").unwrap();
    active.subscribe("/patient_report", None).unwrap();

    let before = thread_count();
    let idle: Vec<EventClient> = (0..100)
        .map(|_| {
            let mut c = EventClient::connect(&addr, "nosy").unwrap();
            c.subscribe("/patient_report", None).unwrap();
            c
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(server.broker().subscription_count(), 101);

    // The seed spent ≥3 threads per connection; the reactor holds them
    // as registered fds. Allow generous slack for unrelated test threads.
    let after = thread_count();
    assert!(
        after < before + 20,
        "100 idle subscribers grew threads {before} -> {after}"
    );

    // The crowd being parked must not break delivery to a live consumer.
    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    producer
        .publish(
            &Event::new("/patient_report")
                .unwrap()
                .with_labels([Label::conf("ecric.org.uk", "mdt/a")]),
        )
        .unwrap();
    assert!(active.next_delivery().is_ok());
    drop(idle);
}

#[test]
fn abrupt_disconnects_do_not_stop_the_accept_loop() {
    // Regression companion to the reactor-level EMFILE test
    // (`safeweb-reactor/tests/accept_resilience.rs`): a burst of
    // connections torn down abruptly (RST via SO_LINGER-like drop before
    // the server touches them) must leave the server accepting. The seed
    // broke its accept loop on the first `accept()` error.
    let server = start_server();
    let addr = server.addr().to_string();
    for _ in 0..50 {
        let s = std::net::TcpStream::connect(server.addr()).unwrap();
        drop(s);
    }
    std::thread::sleep(Duration::from_millis(100));

    let mut consumer = EventClient::connect(&addr, "mdt_a").unwrap();
    consumer.subscribe("/t", None).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    producer
        .publish(&Event::new("/t").unwrap().with_labels([]))
        .unwrap();
    assert!(consumer.next_delivery().is_ok());
}

#[test]
fn slow_consumer_is_disconnected_not_buffered_unboundedly() {
    use safeweb_stomp::{Command, Frame, TcpTransport, Transport};

    let server = start_server();
    let addr = server.addr().to_string();

    // A raw subscriber that never reads deliveries.
    let mut slow = TcpTransport::connect(&addr).unwrap();
    slow.send_frame(&Frame::new(Command::Connect).with_header("login", "producer"))
        .unwrap();
    assert_eq!(
        slow.recv_frame().unwrap().unwrap().command(),
        Command::Connected
    );
    slow.send_frame(
        &Frame::new(Command::Subscribe)
            .with_header("destination", "/flood")
            .with_header("id", "1"),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(server.broker().subscription_count(), 1);

    // Flood well past the outbound cap without the subscriber reading.
    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    let payload = "x".repeat(64 * 1024);
    let total = (2 * safeweb_broker::OUTBOX_CAP / payload.len()) + 64;
    for _ in 0..total {
        producer
            .publish(
                &Event::new("/flood")
                    .unwrap()
                    .with_payload(payload.clone())
                    .with_labels([]),
            )
            .unwrap();
    }

    // Backpressure policy: the slow consumer is dropped and its
    // subscription cleaned up, rather than the broker buffering ~entire
    // flood on its behalf.
    let mut gone = false;
    for _ in 0..100 {
        if server.broker().subscription_count() == 0 {
            gone = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(gone, "slow consumer was never disconnected");
}

#[test]
fn threaded_baseline_still_serves_the_same_protocol() {
    // The pre-reactor server is kept as the bench baseline; hold it to
    // the same core flow so comparisons stay apples-to-apples.
    let broker = Broker::new();
    let mut server =
        safeweb_broker::ThreadedBrokerServer::bind("127.0.0.1:0", broker, policy()).unwrap();
    let addr = server.addr().to_string();

    let mut consumer = EventClient::connect(&addr, "mdt_a").unwrap();
    consumer.subscribe("/patient_report", None).unwrap();
    let mut nosy = EventClient::connect(&addr, "nosy").unwrap();
    nosy.subscribe("/patient_report", None).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    producer
        .publish(
            &Event::new("/patient_report")
                .unwrap()
                .with_attr("type", "cancer")
                .with_labels([Label::conf("ecric.org.uk", "mdt/a")]),
        )
        .unwrap();

    let delivery = consumer.next_delivery().unwrap();
    assert_eq!(delivery.event.topic(), "/patient_report");
    assert!(nosy
        .next_delivery_timeout(Duration::from_millis(200))
        .unwrap()
        .is_none());
    server.shutdown();
}

#[test]
fn multiple_subscriptions_are_disambiguated_by_id() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut consumer = EventClient::connect(&addr, "producer").unwrap();
    let sub_a = consumer.subscribe("/a", None).unwrap();
    let sub_b = consumer.subscribe("/b", None).unwrap();
    assert_ne!(sub_a, sub_b);
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    producer
        .publish(&Event::new("/b").unwrap().with_labels([]))
        .unwrap();
    let d = consumer.next_delivery().unwrap();
    assert_eq!(d.subscription_id, sub_b);
}
