//! Integration tests: full client ↔ TCP server ↔ broker flows, including
//! label filtering across the network and failure handling.

use std::time::Duration;

use safeweb_broker::{Broker, BrokerServer, ClientError, EventClient};
use safeweb_events::Event;
use safeweb_labels::{Label, Policy};

fn policy() -> Policy {
    "
    unit producer {
        clearance label:conf:ecric.org.uk/*
    }
    unit mdt_a {
        clearance label:conf:ecric.org.uk/mdt/a
    }
    unit nosy {
    }
    "
    .parse()
    .unwrap()
}

fn start_server() -> BrokerServer {
    BrokerServer::bind("127.0.0.1:0", Broker::new(), policy()).unwrap()
}

#[test]
fn end_to_end_publish_subscribe() {
    let server = start_server();
    let addr = server.addr().to_string();

    let mut consumer = EventClient::connect(&addr, "mdt_a").unwrap();
    consumer.subscribe("/patient_report", None).unwrap();
    // Give the subscription time to register before publishing.
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    let event = Event::new("/patient_report")
        .unwrap()
        .with_attr("type", "cancer")
        .with_payload("record")
        .with_labels([Label::conf("ecric.org.uk", "mdt/a")]);
    producer.publish(&event).unwrap();

    let delivery = consumer.next_delivery().unwrap();
    assert_eq!(delivery.event.topic(), "/patient_report");
    assert_eq!(delivery.event.attr("type"), Some("cancer"));
    assert_eq!(delivery.event.event().payload(), Some("record"));
    assert_eq!(
        delivery.event.labels().to_wire(),
        "label:conf:ecric.org.uk/mdt/a"
    );
}

#[test]
fn label_filtering_enforced_over_network() {
    let server = start_server();
    let addr = server.addr().to_string();

    let mut nosy = EventClient::connect(&addr, "nosy").unwrap();
    nosy.subscribe("/patient_report", None).unwrap();
    let mut cleared = EventClient::connect(&addr, "mdt_a").unwrap();
    cleared.subscribe("/patient_report", None).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    producer
        .publish(
            &Event::new("/patient_report")
                .unwrap()
                .with_labels([Label::conf("ecric.org.uk", "mdt/a")]),
        )
        .unwrap();

    // The cleared client receives it; the nosy one times out.
    assert!(cleared.next_delivery().is_ok());
    let got = nosy
        .next_delivery_timeout(Duration::from_millis(200))
        .unwrap();
    assert!(
        got.is_none(),
        "uncleared subscriber must not receive labelled events"
    );
}

#[test]
fn selector_filtering_over_network() {
    let server = start_server();
    let addr = server.addr().to_string();

    let mut consumer = EventClient::connect(&addr, "producer").unwrap();
    consumer
        .subscribe("/patient_report", Some("type = 'cancer'"))
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    for t in ["benign", "cancer"] {
        producer
            .publish(
                &Event::new("/patient_report")
                    .unwrap()
                    .with_attr("type", t)
                    .with_labels([]),
            )
            .unwrap();
    }
    let d = consumer.next_delivery().unwrap();
    assert_eq!(d.event.attr("type"), Some("cancer"));
}

#[test]
fn bad_selector_produces_broker_error() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut client = EventClient::connect(&addr, "producer").unwrap();
    client.subscribe("/t", Some("type = = 'x'")).unwrap();
    match client.next_delivery() {
        Err(ClientError::Broker(msg)) => assert!(msg.contains("selector"), "{msg}"),
        other => panic!("expected broker error, got {other:?}"),
    }
}

#[test]
fn unsubscribe_stops_flow() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut consumer = EventClient::connect(&addr, "producer").unwrap();
    let sub = consumer.subscribe("/t", None).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    consumer.unsubscribe(&sub).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    producer
        .publish(&Event::new("/t").unwrap().with_labels([]))
        .unwrap();
    let got = consumer
        .next_delivery_timeout(Duration::from_millis(200))
        .unwrap();
    assert!(got.is_none());
}

#[test]
fn disconnect_cleans_up_subscriptions() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut consumer = EventClient::connect(&addr, "mdt_a").unwrap();
    consumer.subscribe("/t", None).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(server.broker().subscription_count(), 1);
    consumer.disconnect().unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(server.broker().subscription_count(), 0);
}

#[test]
fn multiple_subscriptions_are_disambiguated_by_id() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut consumer = EventClient::connect(&addr, "producer").unwrap();
    let sub_a = consumer.subscribe("/a", None).unwrap();
    let sub_b = consumer.subscribe("/b", None).unwrap();
    assert_ne!(sub_a, sub_b);
    std::thread::sleep(Duration::from_millis(50));

    let mut producer = EventClient::connect(&addr, "producer").unwrap();
    producer
        .publish(&Event::new("/b").unwrap().with_labels([]))
        .unwrap();
    let d = consumer.next_delivery().unwrap();
    assert_eq!(d.subscription_id, sub_b);
}
