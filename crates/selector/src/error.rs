//! Error type for selector parsing.

use std::fmt;

/// Error produced when a selector expression fails to tokenise or parse.
/// Carries the approximate position (byte offset during lexing, token index
/// during parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSelectorError {
    position: usize,
    message: String,
}

impl ParseSelectorError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> ParseSelectorError {
        ParseSelectorError {
            position,
            message: message.into(),
        }
    }

    /// The position where parsing failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseSelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "selector error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseSelectorError {}
