//! Three-valued-logic evaluator over string attribute maps.
//!
//! Event attributes are untyped strings (§4.1), so the evaluator coerces in
//! the SQL style: a comparison is numeric when **both** operands parse as
//! numbers, string-wise otherwise. Missing attributes evaluate to SQL
//! `NULL`, and `NULL` propagates through comparisons and arithmetic with
//! Kleene three-valued logic — a selector only *matches* when it evaluates
//! to definite `TRUE`.

use crate::ast::{ArithOp, CmpOp, Expr};

/// The lattice of evaluation results for boolean contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true — the event matches.
    True,
    /// Definitely false.
    False,
    /// NULL was encountered; indeterminate.
    Unknown,
}

impl Truth {
    fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    fn of(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

/// Runtime value produced by evaluating a sub-expression.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
}

/// Provides attribute values for identifiers in a selector. Implemented for
/// plain maps and by the event type in `safeweb-events`.
pub trait AttributeSource {
    /// The value of the named attribute, or `None` if absent (SQL `NULL`).
    fn attribute(&self, name: &str) -> Option<&str>;
}

impl AttributeSource for std::collections::BTreeMap<String, String> {
    fn attribute(&self, name: &str) -> Option<&str> {
        self.get(name).map(String::as_str)
    }
}

impl AttributeSource for std::collections::HashMap<String, String> {
    fn attribute(&self, name: &str) -> Option<&str> {
        self.get(name).map(String::as_str)
    }
}

impl<T: AttributeSource + ?Sized> AttributeSource for &T {
    fn attribute(&self, name: &str) -> Option<&str> {
        (**self).attribute(name)
    }
}

pub(crate) fn eval_truth<S: AttributeSource>(expr: &Expr, source: &S) -> Truth {
    match eval(expr, source) {
        Val::Null => Truth::Unknown,
        Val::Bool(b) => Truth::of(b),
        // Non-boolean top-level results do not constitute a match.
        _ => Truth::Unknown,
    }
}

fn eval<S: AttributeSource>(expr: &Expr, source: &S) -> Val {
    match expr {
        Expr::Ident(name) => match source.attribute(name) {
            Some(s) => Val::Str(s.to_string()),
            None => Val::Null,
        },
        Expr::Str(s) => Val::Str(s.clone()),
        Expr::Num(n) => Val::Num(*n),
        Expr::Bool(b) => Val::Bool(*b),
        Expr::Not(e) => truth_val(eval_truth(e, source).not()),
        Expr::And(a, b) => truth_val(eval_truth(a, source).and(eval_truth(b, source))),
        Expr::Or(a, b) => truth_val(eval_truth(a, source).or(eval_truth(b, source))),
        Expr::Cmp(op, a, b) => {
            let (va, vb) = (eval(a, source), eval(b, source));
            truth_val(compare(*op, &va, &vb))
        }
        Expr::Arith(op, a, b) => {
            let (va, vb) = (eval(a, source), eval(b, source));
            match (as_num(&va), as_num(&vb)) {
                (Some(x), Some(y)) => {
                    let r = match op {
                        ArithOp::Add => x + y,
                        ArithOp::Sub => x - y,
                        ArithOp::Mul => x * y,
                        ArithOp::Div => x / y,
                    };
                    if r.is_finite() {
                        Val::Num(r)
                    } else {
                        Val::Null
                    }
                }
                _ => Val::Null,
            }
        }
        Expr::Neg(e) => match as_num(&eval(e, source)) {
            Some(x) => Val::Num(-x),
            None => Val::Null,
        },
        Expr::Like {
            expr,
            pattern,
            escape,
            negated,
        } => {
            let t = match eval(expr, source) {
                Val::Str(s) => Truth::of(like_match(&s, pattern, *escape)),
                Val::Null => Truth::Unknown,
                // LIKE on numbers applies to their string form, mirroring
                // the untyped-string event model.
                Val::Num(n) => Truth::of(like_match(&format_num(n), pattern, *escape)),
                Val::Bool(_) => Truth::Unknown,
            };
            truth_val(if *negated { t.not() } else { t })
        }
        Expr::In {
            expr,
            items,
            negated,
        } => {
            let t = match eval(expr, source) {
                Val::Str(s) => Truth::of(items.contains(&s)),
                Val::Num(n) => {
                    let s = format_num(n);
                    Truth::of(items.contains(&s))
                }
                Val::Null => Truth::Unknown,
                Val::Bool(_) => Truth::Unknown,
            };
            truth_val(if *negated { t.not() } else { t })
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(expr, source);
            let l = eval(lo, source);
            let h = eval(hi, source);
            let t = compare(CmpOp::Ge, &v, &l).and(compare(CmpOp::Le, &v, &h));
            truth_val(if *negated { t.not() } else { t })
        }
        Expr::IsNull { expr, negated } => {
            let is_null = matches!(eval(expr, source), Val::Null);
            truth_val(Truth::of(is_null != *negated))
        }
    }
}

fn truth_val(t: Truth) -> Val {
    match t {
        Truth::True => Val::Bool(true),
        Truth::False => Val::Bool(false),
        Truth::Unknown => Val::Null,
    }
}

fn as_num(v: &Val) -> Option<f64> {
    match v {
        Val::Num(n) => Some(*n),
        Val::Str(s) => s.trim().parse().ok(),
        _ => None,
    }
}

/// Formats a number the way untyped string attributes would store it:
/// integral values without a decimal point.
fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn compare(op: CmpOp, a: &Val, b: &Val) -> Truth {
    if matches!(a, Val::Null) || matches!(b, Val::Null) {
        return Truth::Unknown;
    }
    // Numeric comparison when both sides are numeric (or numeric strings);
    // otherwise lexicographic string comparison.
    let ord = match (as_num(a), as_num(b)) {
        (Some(x), Some(y)) => x.partial_cmp(&y),
        _ => match (a, b) {
            (Val::Str(x), Val::Str(y)) => Some(x.cmp(y)),
            (Val::Bool(x), Val::Bool(y)) => Some(x.cmp(y)),
            _ => None,
        },
    };
    let Some(ord) = ord else {
        return Truth::Unknown;
    };
    Truth::of(match op {
        CmpOp::Eq => ord == std::cmp::Ordering::Equal,
        CmpOp::Ne => ord != std::cmp::Ordering::Equal,
        CmpOp::Lt => ord == std::cmp::Ordering::Less,
        CmpOp::Le => ord != std::cmp::Ordering::Greater,
        CmpOp::Gt => ord == std::cmp::Ordering::Greater,
        CmpOp::Ge => ord != std::cmp::Ordering::Less,
    })
}

/// SQL LIKE matching: `%` matches any run (including empty), `_` matches a
/// single character; `escape` makes the following pattern character literal.
fn like_match(text: &str, pattern: &str, escape: Option<char>) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    like_rec(&t, &p, escape)
}

fn like_rec(text: &[char], pat: &[char], escape: Option<char>) -> bool {
    if pat.is_empty() {
        return text.is_empty();
    }
    match pat[0] {
        c if Some(c) == escape => {
            // Escaped character must match literally.
            match pat.get(1) {
                Some(&lit) => {
                    !text.is_empty() && text[0] == lit && like_rec(&text[1..], &pat[2..], escape)
                }
                None => false, // dangling escape never matches
            }
        }
        '%' => {
            // Try consuming 0..=len characters.
            for skip in 0..=text.len() {
                if like_rec(&text[skip..], &pat[1..], escape) {
                    return true;
                }
            }
            false
        }
        '_' => !text.is_empty() && like_rec(&text[1..], &pat[1..], escape),
        c => !text.is_empty() && text[0] == c && like_rec(&text[1..], &pat[1..], escape),
    }
}

#[cfg(test)]
mod tests {
    use crate::Selector;
    use std::collections::BTreeMap;

    fn attrs(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    fn matches(sel: &str, pairs: &[(&str, &str)]) -> bool {
        Selector::parse(sel).unwrap().matches(&attrs(pairs))
    }

    #[test]
    fn string_equality() {
        assert!(matches("type = 'cancer'", &[("type", "cancer")]));
        assert!(!matches("type = 'cancer'", &[("type", "benign")]));
    }

    #[test]
    fn numeric_coercion() {
        assert!(matches("age > 50", &[("age", "61")]));
        assert!(!matches("age > 50", &[("age", "7")]));
        // "7" > "50" lexicographically, but numeric coercion must win.
        assert!(matches("age < 50", &[("age", "7")]));
    }

    #[test]
    fn missing_attribute_is_null_not_match() {
        assert!(!matches("age > 50", &[]));
        assert!(!matches("NOT age > 50", &[])); // NOT UNKNOWN = UNKNOWN
        assert!(matches("age IS NULL", &[]));
        assert!(matches("age IS NOT NULL", &[("age", "1")]));
    }

    #[test]
    fn three_valued_logic() {
        // UNKNOWN OR TRUE = TRUE
        assert!(matches(
            "missing = 'x' OR type = 'cancer'",
            &[("type", "cancer")]
        ));
        // UNKNOWN AND TRUE = UNKNOWN → no match
        assert!(!matches(
            "missing = 'x' AND type = 'cancer'",
            &[("type", "cancer")]
        ));
        // FALSE AND UNKNOWN = FALSE
        assert!(matches(
            "NOT (type = 'benign' AND missing = 'x')",
            &[("type", "cancer")]
        ));
    }

    #[test]
    fn like_patterns() {
        assert!(matches("name LIKE 'J_n%'", &[("name", "Jones")]));
        assert!(!matches("name LIKE 'J_n%'", &[("name", "Smith")]));
        assert!(matches(
            "code LIKE '10!%26' ESCAPE '!'",
            &[("code", "10%26")]
        ));
        assert!(!matches(
            "code LIKE '10!%26' ESCAPE '!'",
            &[("code", "10x26")]
        ));
        assert!(matches("a LIKE '%'", &[("a", "")]));
        assert!(matches("a NOT LIKE 'x%'", &[("a", "y")]));
    }

    #[test]
    fn in_lists() {
        assert!(matches("mdt IN ('a','b')", &[("mdt", "b")]));
        assert!(!matches("mdt IN ('a','b')", &[("mdt", "c")]));
        assert!(matches("mdt NOT IN ('a','b')", &[("mdt", "c")]));
        assert!(!matches("mdt IN ('a')", &[]));
    }

    #[test]
    fn between_is_inclusive() {
        assert!(matches("age BETWEEN 40 AND 60", &[("age", "40")]));
        assert!(matches("age BETWEEN 40 AND 60", &[("age", "60")]));
        assert!(!matches("age BETWEEN 40 AND 60", &[("age", "61")]));
        assert!(matches("age NOT BETWEEN 40 AND 60", &[("age", "61")]));
    }

    #[test]
    fn arithmetic() {
        assert!(matches("dose * 2 = 10", &[("dose", "5")]));
        assert!(matches("a + b > 10", &[("a", "6"), ("b", "5")]));
        assert!(!matches("a / 0 = 1", &[("a", "5")])); // div-by-zero → NULL
        assert!(matches("-a < 0", &[("a", "3")]));
    }

    #[test]
    fn non_numeric_arith_is_null() {
        assert!(!matches("name + 1 = 2", &[("name", "bob")]));
        assert!(matches("(name + 1) IS NULL", &[("name", "bob")]));
    }

    #[test]
    fn boolean_literals() {
        assert!(matches("TRUE", &[]));
        assert!(!matches("FALSE", &[]));
        assert!(!matches("NOT TRUE", &[]));
    }
}
