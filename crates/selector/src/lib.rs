//! # safeweb-selector
//!
//! The SQL-92 content-filtering language used by SafeWeb's event broker
//! (§4.2 of the paper): STOMP `SUBSCRIBE` frames may carry a `selector`
//! header such as `type = 'cancer' AND age > 50`, and the broker delivers
//! only events whose attributes satisfy it.
//!
//! The dialect follows JMS message selectors: identifiers name event
//! attributes, comparisons, `AND`/`OR`/`NOT` with three-valued logic,
//! `LIKE` (with `ESCAPE`), `IN`, `BETWEEN`, `IS [NOT] NULL` and arithmetic.
//! Because SafeWeb event attributes are untyped strings, comparisons coerce
//! numerically when both operands look numeric.
//!
//! ```
//! use std::collections::BTreeMap;
//! use safeweb_selector::Selector;
//!
//! let sel = Selector::parse("type = 'cancer' AND age BETWEEN 50 AND 70")?;
//! let mut attrs = BTreeMap::new();
//! attrs.insert("type".to_string(), "cancer".to_string());
//! attrs.insert("age".to_string(), "61".to_string());
//! assert!(sel.matches(&attrs));
//! # Ok::<(), safeweb_selector::ParseSelectorError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod ast;
mod error;
mod eval;
mod parser;
mod token;

pub use ast::{ArithOp, CmpOp, Expr};
pub use error::ParseSelectorError;
pub use eval::{AttributeSource, Truth};

use std::fmt;
use std::str::FromStr;

use safeweb_safeq::{Param, Rejected, TrustedLiteral};
use safeweb_taint::SStr;

use crate::token::{tokenize, Token};

/// Maximum nesting depth (`NOT` chains, unary minus, parentheses) the
/// parser accepts before returning a typed error instead of recursing.
pub const MAX_NESTING_DEPTH: usize = parser::MAX_DEPTH;

/// Errors from the trusted selector constructors ([`Selector::bind`],
/// [`Selector::parse_untrusted`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SelectorError {
    /// User-tainted input was refused where selector structure is formed.
    Rejected(Rejected),
    /// The template (or untrusted expression) failed to parse.
    Parse(ParseSelectorError),
    /// A bind template's placeholder count does not match the parameters.
    Arity {
        /// Placeholders in the template.
        expected: usize,
        /// Parameters supplied.
        got: usize,
    },
    /// `Param::Null` cannot be bound: the selector grammar has no `NULL`
    /// literal (test for absence with `IS NULL` instead).
    NullParam,
}

impl fmt::Display for SelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectorError::Rejected(r) => r.fmt(f),
            SelectorError::Parse(e) => e.fmt(f),
            SelectorError::Arity { expected, got } => write!(
                f,
                "bind template has {expected} placeholder(s) but {got} parameter(s) were supplied"
            ),
            SelectorError::NullParam => f.write_str(
                "cannot bind NULL into a selector (the grammar has no NULL literal; use IS NULL)",
            ),
        }
    }
}

impl std::error::Error for SelectorError {}

impl From<Rejected> for SelectorError {
    fn from(r: Rejected) -> SelectorError {
        SelectorError::Rejected(r)
    }
}

impl From<ParseSelectorError> for SelectorError {
    fn from(e: ParseSelectorError) -> SelectorError {
        SelectorError::Parse(e)
    }
}

/// A parsed, reusable selector expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Selector {
    expr: Expr,
    source: String,
}

impl Selector {
    /// Parses a selector expression.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSelectorError`] when the expression is not valid
    /// selector syntax.
    pub fn parse(input: &str) -> Result<Selector, ParseSelectorError> {
        let expr = parser::parse(input)?;
        Ok(Selector {
            expr,
            source: input.to_string(),
        })
    }

    /// Parses a selector whose text is trusted query structure — a
    /// compile-time literal, a taint-checked string or an audited
    /// declassify (see [`safeweb_safeq::TrustedLiteral`]).
    ///
    /// # Errors
    ///
    /// [`ParseSelectorError`] on invalid syntax.
    pub fn parse_trusted(template: &TrustedLiteral) -> Result<Selector, ParseSelectorError> {
        Selector::parse(template.as_str())
    }

    /// Parses a labelled string as a selector after checking it is not
    /// user-tainted. This is the checked runtime path for expression text
    /// assembled by trusted server code; raw user input is refused with
    /// [`SelectorError::Rejected`] — bind it as a parameter via
    /// [`Selector::bind`] instead.
    ///
    /// # Errors
    ///
    /// [`SelectorError::Rejected`] for tainted input,
    /// [`SelectorError::Parse`] on invalid syntax.
    pub fn parse_untrusted(text: &SStr) -> Result<Selector, SelectorError> {
        let lit = TrustedLiteral::checked(text)?;
        Ok(Selector::parse_trusted(&lit)?)
    }

    /// Parses a trusted template containing `?` placeholders and binds
    /// one [`Param`] to each, in order.
    ///
    /// Substitution happens **after** tokenisation: each placeholder
    /// becomes a single string/number/boolean token, so quoting
    /// metacharacters inside a bound value can never change the
    /// expression's structure — `Selector::bind("name = ?", ...)` with
    /// the value `x' OR 'a' = 'a` compares `name` against that exact
    /// 16-character string:
    ///
    /// ```
    /// use std::collections::BTreeMap;
    /// use safeweb_selector::Selector;
    ///
    /// let hostile = "x' OR 'a' = 'a";
    /// let sel = Selector::bind("name = ?", &[hostile.into()])?;
    /// let mut attrs = BTreeMap::new();
    /// attrs.insert("name".to_string(), "anything".to_string());
    /// assert!(!sel.matches(&attrs));
    /// attrs.insert("name".to_string(), hostile.to_string());
    /// assert!(sel.matches(&attrs));
    /// # Ok::<(), safeweb_selector::SelectorError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SelectorError::Arity`] when placeholder and parameter counts
    /// differ, [`SelectorError::NullParam`] for `Param::Null`, and
    /// [`SelectorError::Parse`] when the substituted template is not
    /// valid selector syntax.
    pub fn bind(
        template: impl Into<TrustedLiteral>,
        params: &[Param],
    ) -> Result<Selector, SelectorError> {
        let template = template.into();
        let tokens = tokenize(template.as_str())?;
        let expected = tokens.iter().filter(|t| matches!(t, Token::Param)).count();
        if expected != params.len() {
            return Err(SelectorError::Arity {
                expected,
                got: params.len(),
            });
        }
        let mut next = params.iter();
        let mut bound = Vec::with_capacity(tokens.len());
        for token in tokens {
            bound.push(match token {
                Token::Param => match next.next().expect("arity checked above") {
                    Param::Null => return Err(SelectorError::NullParam),
                    Param::Bool(true) => Token::True,
                    Param::Bool(false) => Token::False,
                    Param::Int(n) => Token::Num(*n as f64),
                    Param::Real(n) => Token::Num(*n),
                    Param::Text(s) => Token::Str(s.clone()),
                },
                other => other,
            });
        }
        let expr = parser::parse_tokens(bound)?;
        // The canonical printed form (string tokens re-escaped) is the
        // bound selector's source text.
        let source = expr.to_string();
        Ok(Selector { expr, source })
    }

    /// Whether the attributes satisfy this selector (evaluates to definite
    /// `TRUE`; `UNKNOWN` — e.g. from missing attributes — does not match).
    pub fn matches<S: AttributeSource>(&self, source: &S) -> bool {
        self.evaluate(source) == Truth::True
    }

    /// Full three-valued evaluation result.
    pub fn evaluate<S: AttributeSource>(&self, source: &S) -> Truth {
        eval::eval_truth(&self.expr, source)
    }

    /// The parsed expression tree.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

impl FromStr for Selector {
    type Err = ParseSelectorError;

    fn from_str(s: &str) -> Result<Selector, ParseSelectorError> {
        Selector::parse(s)
    }
}
