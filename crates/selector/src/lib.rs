//! # safeweb-selector
//!
//! The SQL-92 content-filtering language used by SafeWeb's event broker
//! (§4.2 of the paper): STOMP `SUBSCRIBE` frames may carry a `selector`
//! header such as `type = 'cancer' AND age > 50`, and the broker delivers
//! only events whose attributes satisfy it.
//!
//! The dialect follows JMS message selectors: identifiers name event
//! attributes, comparisons, `AND`/`OR`/`NOT` with three-valued logic,
//! `LIKE` (with `ESCAPE`), `IN`, `BETWEEN`, `IS [NOT] NULL` and arithmetic.
//! Because SafeWeb event attributes are untyped strings, comparisons coerce
//! numerically when both operands look numeric.
//!
//! ```
//! use std::collections::BTreeMap;
//! use safeweb_selector::Selector;
//!
//! let sel = Selector::parse("type = 'cancer' AND age BETWEEN 50 AND 70")?;
//! let mut attrs = BTreeMap::new();
//! attrs.insert("type".to_string(), "cancer".to_string());
//! attrs.insert("age".to_string(), "61".to_string());
//! assert!(sel.matches(&attrs));
//! # Ok::<(), safeweb_selector::ParseSelectorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod eval;
mod parser;
mod token;

pub use ast::{ArithOp, CmpOp, Expr};
pub use error::ParseSelectorError;
pub use eval::{AttributeSource, Truth};

use std::fmt;
use std::str::FromStr;

/// A parsed, reusable selector expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Selector {
    expr: Expr,
    source: String,
}

impl Selector {
    /// Parses a selector expression.
    ///
    /// # Errors
    ///
    /// Returns [`ParseSelectorError`] when the expression is not valid
    /// selector syntax.
    pub fn parse(input: &str) -> Result<Selector, ParseSelectorError> {
        let expr = parser::parse(input)?;
        Ok(Selector {
            expr,
            source: input.to_string(),
        })
    }

    /// Whether the attributes satisfy this selector (evaluates to definite
    /// `TRUE`; `UNKNOWN` — e.g. from missing attributes — does not match).
    pub fn matches<S: AttributeSource>(&self, source: &S) -> bool {
        self.evaluate(source) == Truth::True
    }

    /// Full three-valued evaluation result.
    pub fn evaluate<S: AttributeSource>(&self, source: &S) -> Truth {
        eval::eval_truth(&self.expr, source)
    }

    /// The parsed expression tree.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

impl FromStr for Selector {
    type Err = ParseSelectorError;

    fn from_str(s: &str) -> Result<Selector, ParseSelectorError> {
        Selector::parse(s)
    }
}
