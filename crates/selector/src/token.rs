//! Lexer for the SQL-92 selector subset.

use std::fmt;

use crate::error::ParseSelectorError;

/// A lexical token in a selector expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An attribute identifier, e.g. `type` or `patient_id`.
    Ident(String),
    /// A single-quoted string literal with `''` escapes.
    Str(String),
    /// A numeric literal.
    Num(f64),
    /// `TRUE` keyword.
    True,
    /// `FALSE` keyword.
    False,
    /// `AND` keyword.
    And,
    /// `OR` keyword.
    Or,
    /// `NOT` keyword.
    Not,
    /// `LIKE` keyword.
    Like,
    /// `ESCAPE` keyword.
    Escape,
    /// `IN` keyword.
    In,
    /// `BETWEEN` keyword.
    Between,
    /// `IS` keyword.
    Is,
    /// `NULL` keyword.
    Null,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `?` — a bind-parameter placeholder, valid only in templates given
    /// to `Selector::bind`; reaching the parser unbound is an error.
    Param,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Token::Num(n) => write!(f, "{n}"),
            Token::True => write!(f, "TRUE"),
            Token::False => write!(f, "FALSE"),
            Token::And => write!(f, "AND"),
            Token::Or => write!(f, "OR"),
            Token::Not => write!(f, "NOT"),
            Token::Like => write!(f, "LIKE"),
            Token::Escape => write!(f, "ESCAPE"),
            Token::In => write!(f, "IN"),
            Token::Between => write!(f, "BETWEEN"),
            Token::Is => write!(f, "IS"),
            Token::Null => write!(f, "NULL"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Param => write!(f, "?"),
        }
    }
}

/// Tokenises a selector expression.
///
/// # Errors
///
/// Returns [`ParseSelectorError`] on unterminated string literals, malformed
/// numbers or unexpected characters.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseSelectorError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            b')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            b',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            b'?' => {
                tokens.push(Token::Param);
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            b'+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            b'/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseSelectorError::new(i, "unterminated string literal"))
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Track UTF-8 boundaries via the source string.
                            let ch_start = i;
                            let ch = input[ch_start..].chars().next().expect("in-bounds char");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && matches!(bytes.get(i - 1), Some(b'e' | b'E'))))
                {
                    i += 1;
                }
                let text = &input[start..i];
                let n: f64 = text.parse().map_err(|_| {
                    ParseSelectorError::new(start, format!("invalid number {text:?}"))
                })?;
                tokens.push(Token::Num(n));
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                let word = &input[start..i];
                tokens.push(keyword_or_ident(word));
            }
            other => {
                return Err(ParseSelectorError::new(
                    i,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        }
    }
    Ok(tokens)
}

fn keyword_or_ident(word: &str) -> Token {
    match word.to_ascii_uppercase().as_str() {
        "TRUE" => Token::True,
        "FALSE" => Token::False,
        "AND" => Token::And,
        "OR" => Token::Or,
        "NOT" => Token::Not,
        "LIKE" => Token::Like,
        "ESCAPE" => Token::Escape,
        "IN" => Token::In,
        "BETWEEN" => Token::Between,
        "IS" => Token::Is,
        "NULL" => Token::Null,
        _ => Token::Ident(word.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_comparison() {
        let t = tokenize("type = 'cancer' AND age >= 50").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("type".into()),
                Token::Eq,
                Token::Str("cancer".into()),
                Token::And,
                Token::Ident("age".into()),
                Token::Ge,
                Token::Num(50.0),
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let t = tokenize("name = 'O''Brien'").unwrap();
        assert_eq!(t[2], Token::Str("O'Brien".into()));
    }

    #[test]
    fn keywords_case_insensitive() {
        let t = tokenize("a like 'x' and b is not null").unwrap();
        assert!(t.contains(&Token::Like));
        assert!(t.contains(&Token::And));
        assert!(t.contains(&Token::Is));
        assert!(t.contains(&Token::Not));
        assert!(t.contains(&Token::Null));
    }

    #[test]
    fn numbers() {
        assert_eq!(tokenize("1.5").unwrap(), vec![Token::Num(1.5)]);
        assert_eq!(tokenize("2e3").unwrap(), vec![Token::Num(2000.0)]);
        assert!(tokenize("1.2.3").is_err());
    }

    #[test]
    fn rejects_junk() {
        assert!(tokenize("a = 'unterminated").is_err());
        assert!(tokenize("a ; b").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let t = tokenize("x = 'héllo✓'").unwrap();
        assert_eq!(t[2], Token::Str("héllo✓".into()));
    }
}
