//! Abstract syntax tree for selector expressions.

use std::fmt;

/// A selector expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to an event attribute by name.
    Ident(String),
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// Boolean literal.
    Bool(bool),
    /// `NOT e`
    Not(Box<Expr>),
    /// `a AND b`
    And(Box<Expr>, Box<Expr>),
    /// `a OR b`
    Or(Box<Expr>, Box<Expr>),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Binary arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `e LIKE 'pattern' [ESCAPE 'c']`, possibly negated.
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// SQL LIKE pattern (`%` any run, `_` any single character).
        pattern: String,
        /// Optional escape character.
        escape: Option<char>,
        /// Whether written as `NOT LIKE`.
        negated: bool,
    },
    /// `e IN ('a', 'b', ...)`, possibly negated.
    In {
        /// The tested expression.
        expr: Box<Expr>,
        /// Candidate string values.
        items: Vec<String>,
        /// Whether written as `NOT IN`.
        negated: bool,
    },
    /// `e BETWEEN lo AND hi`, possibly negated.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// Whether written as `NOT BETWEEN`.
        negated: bool,
    },
    /// `e IS NULL`, possibly `IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// Whether written as `IS NOT NULL`.
        negated: bool,
    },
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    /// Renders the expression back to (fully parenthesised) selector syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Ident(name) => write!(f, "{name}"),
            Expr::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Bool(true) => write!(f, "TRUE"),
            Expr::Bool(false) => write!(f, "FALSE"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Like {
                expr,
                pattern,
                escape,
                negated,
            } => {
                let not = if *negated { " NOT" } else { "" };
                write!(f, "({expr}{not} LIKE '{}'", pattern.replace('\'', "''"))?;
                if let Some(c) = escape {
                    write!(f, " ESCAPE '{c}'")?;
                }
                write!(f, ")")
            }
            Expr::In {
                expr,
                items,
                negated,
            } => {
                let not = if *negated { " NOT" } else { "" };
                let list: Vec<String> = items
                    .iter()
                    .map(|s| format!("'{}'", s.replace('\'', "''")))
                    .collect();
                write!(f, "({expr}{not} IN ({}))", list.join(", "))
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let not = if *negated { " NOT" } else { "" };
                write!(f, "({expr}{not} BETWEEN {lo} AND {hi})")
            }
            Expr::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "({expr} IS NOT NULL)")
                } else {
                    write!(f, "({expr} IS NULL)")
                }
            }
        }
    }
}
