//! Recursive-descent parser for the selector grammar.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! or      := and (OR and)*
//! and     := not (AND not)*
//! not     := NOT not | predicate
//! predicate := sum ( cmp sum
//!                  | [NOT] LIKE str [ESCAPE str]
//!                  | [NOT] IN '(' str (',' str)* ')'
//!                  | [NOT] BETWEEN sum AND sum
//!                  | IS [NOT] NULL )?
//! sum     := product (('+'|'-') product)*
//! product := unary (('*'|'/') unary)*
//! unary   := '-' unary | atom
//! atom    := ident | string | number | TRUE | FALSE | '(' or ')'
//! ```

use crate::ast::{ArithOp, CmpOp, Expr};
use crate::error::ParseSelectorError;
use crate::token::{tokenize, Token};

/// Maximum nesting depth of `NOT` chains, unary minus chains and
/// parenthesised groups. Parsing (and therefore the produced expression
/// tree) is recursive; adversarial inputs like `((((…))))` or
/// `NOT NOT NOT …` would otherwise walk the stack arbitrarily deep —
/// in the parser here, and again in `Drop`/`Display`/evaluation of the
/// resulting tree. 200 levels is far beyond any legitimate subscription
/// filter while keeping worst-case recursion a few thousand frames.
pub(crate) const MAX_DEPTH: usize = 200;

pub(crate) fn parse(input: &str) -> Result<Expr, ParseSelectorError> {
    parse_tokens(tokenize(input)?)
}

/// Parses an already-tokenised expression — the entry `Selector::bind`
/// uses after substituting bind parameters for placeholder tokens.
pub(crate) fn parse_tokens(tokens: Vec<Token>) -> Result<Expr, ParseSelectorError> {
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let expr = p.or_expr()?;
    if p.pos != p.tokens.len() {
        return Err(ParseSelectorError::new(
            p.pos,
            format!("unexpected trailing token `{}`", p.tokens[p.pos]),
        ));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseSelectorError {
        ParseSelectorError::new(self.pos, message)
    }

    fn enter(&mut self) -> Result<(), ParseSelectorError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!(
                "expression nesting exceeds the {MAX_DEPTH}-level limit"
            )));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseSelectorError> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{token}`, found {}",
                self.peek()
                    .map_or("end of input".to_string(), |t| format!("`{t}`"))
            )))
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseSelectorError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseSelectorError> {
        let mut lhs = self.not_expr()?;
        while self.eat(&Token::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseSelectorError> {
        if self.eat(&Token::Not) {
            self.enter()?;
            let inner = self.not_expr();
            self.leave();
            Ok(Expr::Not(Box::new(inner?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr, ParseSelectorError> {
        let lhs = self.sum()?;

        let negated = if self.peek() == Some(&Token::Not)
            && matches!(
                self.tokens.get(self.pos + 1),
                Some(Token::Like | Token::In | Token::Between)
            ) {
            self.pos += 1;
            true
        } else {
            false
        };

        match self.peek() {
            Some(Token::Eq) => self.cmp_rest(CmpOp::Eq, lhs),
            Some(Token::Ne) => self.cmp_rest(CmpOp::Ne, lhs),
            Some(Token::Lt) => self.cmp_rest(CmpOp::Lt, lhs),
            Some(Token::Le) => self.cmp_rest(CmpOp::Le, lhs),
            Some(Token::Gt) => self.cmp_rest(CmpOp::Gt, lhs),
            Some(Token::Ge) => self.cmp_rest(CmpOp::Ge, lhs),
            Some(Token::Like) => {
                self.pos += 1;
                let pattern = match self.bump() {
                    Some(Token::Str(s)) => s,
                    _ => return Err(self.err("LIKE requires a string pattern")),
                };
                let escape = if self.eat(&Token::Escape) {
                    match self.bump() {
                        Some(Token::Str(s)) if s.chars().count() == 1 => s.chars().next(),
                        _ => return Err(self.err("ESCAPE requires a single-character string")),
                    }
                } else {
                    None
                };
                Ok(Expr::Like {
                    expr: Box::new(lhs),
                    pattern,
                    escape,
                    negated,
                })
            }
            Some(Token::In) => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let mut items = Vec::new();
                loop {
                    match self.bump() {
                        Some(Token::Str(s)) => items.push(s),
                        _ => return Err(self.err("IN list elements must be string literals")),
                    }
                    if self.eat(&Token::Comma) {
                        continue;
                    }
                    self.expect(&Token::RParen)?;
                    break;
                }
                Ok(Expr::In {
                    expr: Box::new(lhs),
                    items,
                    negated,
                })
            }
            Some(Token::Between) => {
                self.pos += 1;
                let lo = self.sum()?;
                self.expect(&Token::And)?;
                let hi = self.sum()?;
                Ok(Expr::Between {
                    expr: Box::new(lhs),
                    lo: Box::new(lo),
                    hi: Box::new(hi),
                    negated,
                })
            }
            Some(Token::Is) => {
                self.pos += 1;
                let negated = self.eat(&Token::Not);
                self.expect(&Token::Null)?;
                Ok(Expr::IsNull {
                    expr: Box::new(lhs),
                    negated,
                })
            }
            _ if negated => Err(self.err("expected LIKE, IN or BETWEEN after NOT")),
            _ => Ok(lhs),
        }
    }

    fn cmp_rest(&mut self, op: CmpOp, lhs: Expr) -> Result<Expr, ParseSelectorError> {
        self.pos += 1;
        let rhs = self.sum()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn sum(&mut self) -> Result<Expr, ParseSelectorError> {
        let mut lhs = self.product()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => ArithOp::Add,
                Some(Token::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.product()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn product(&mut self) -> Result<Expr, ParseSelectorError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => ArithOp::Mul,
                Some(Token::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseSelectorError> {
        if self.eat(&Token::Minus) {
            self.enter()?;
            let inner = self.unary();
            self.leave();
            return Ok(Expr::Neg(Box::new(inner?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseSelectorError> {
        match self.bump() {
            Some(Token::Ident(name)) => Ok(Expr::Ident(name)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Num(n)) => Ok(Expr::Num(n)),
            Some(Token::True) => Ok(Expr::Bool(true)),
            Some(Token::False) => Ok(Expr::Bool(false)),
            Some(Token::LParen) => {
                self.enter()?;
                let inner = self.or_expr();
                self.leave();
                let inner = inner?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Param) => Err(self.err(
                "unbound parameter placeholder `?` (placeholders are only valid \
                 in templates given to Selector::bind)",
            )),
            Some(other) => Err(self.err(format!("unexpected token `{other}`"))),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Expr {
        parse(s).unwrap()
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let e = p("a = '1' OR b = '2' AND c = '3'");
        match e {
            Expr::Or(_, rhs) => assert!(matches!(*rhs, Expr::And(_, _))),
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = p("a + 2 * 3 = 7");
        match e {
            Expr::Cmp(CmpOp::Eq, lhs, _) => match *lhs {
                Expr::Arith(ArithOp::Add, _, rhs) => {
                    assert!(matches!(*rhs, Expr::Arith(ArithOp::Mul, _, _)))
                }
                other => panic!("expected Add, got {other:?}"),
            },
            other => panic!("expected Cmp, got {other:?}"),
        }
    }

    #[test]
    fn parses_not_like_in_between() {
        assert!(matches!(
            p("a NOT LIKE 'x%'"),
            Expr::Like { negated: true, .. }
        ));
        assert!(matches!(
            p("a NOT IN ('x','y')"),
            Expr::In { negated: true, .. }
        ));
        assert!(matches!(
            p("a NOT BETWEEN 1 AND 5"),
            Expr::Between { negated: true, .. }
        ));
        assert!(matches!(
            p("a IS NOT NULL"),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn parses_escape_clause() {
        match p("a LIKE '10!%' ESCAPE '!'") {
            Expr::Like { escape, .. } => assert_eq!(escape, Some('!')),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parenthesised_expressions() {
        let e = p("(a = '1' OR b = '2') AND c = '3'");
        assert!(matches!(e, Expr::And(_, _)));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "a =",
            "= 1",
            "a LIKE 5",
            "a IN (1)",
            "a IN ()",
            "a BETWEEN 1",
            "a IS",
            "a b",
            "(a = '1'",
            "a NOT 5",
            "a LIKE 'x' ESCAPE 'ab'",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Comfortably inside the limit: fine.
        let ok = format!("{}x = 1{}", "(".repeat(50), ")".repeat(50));
        assert!(parse(&ok).is_ok());
        let ok = format!("{}x = 1", "NOT ".repeat(50));
        assert!(parse(&ok).is_ok());

        // Past the limit: a typed error naming the bound, not a stack
        // overflow. (These inputs nest 4x the limit.)
        for pathological in [
            format!(
                "{}x = 1{}",
                "(".repeat(MAX_DEPTH * 4),
                ")".repeat(MAX_DEPTH * 4)
            ),
            format!("{}x = 1", "NOT ".repeat(MAX_DEPTH * 4)),
            format!("x = {}1", "-".repeat(MAX_DEPTH * 4)),
        ] {
            let err = parse(&pathological).expect_err("depth limit fires");
            assert!(
                err.to_string().contains("nesting exceeds"),
                "unexpected error: {err}"
            );
        }
    }

    #[test]
    fn unbound_placeholder_is_rejected() {
        let err = parse("name = ?").expect_err("placeholder must not parse");
        assert!(err.to_string().contains("Selector::bind"));
    }

    #[test]
    fn display_reparses_to_same_ast() {
        for src in [
            "a = '1' OR b = '2' AND NOT c = '3'",
            "price * 1.2 <= limit + 5",
            "name NOT LIKE 'J_n%' ESCAPE '!'",
            "mdt IN ('a', 'b', 'c')",
            "age BETWEEN 40 AND 60",
            "x IS NOT NULL AND -y < 3",
        ] {
            let e = p(src);
            let printed = e.to_string();
            assert_eq!(p(&printed), e, "roundtrip of {src}");
        }
    }
}
