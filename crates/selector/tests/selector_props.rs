//! Property tests for the selector language: printing round-trips, the
//! evaluator is total, and three-valued logic laws hold.

use proptest::prelude::*;
use safeweb_selector::{Selector, Truth};
use std::collections::BTreeMap;

fn arb_attrs() -> impl Strategy<Value = BTreeMap<String, String>> {
    proptest::collection::btree_map(
        prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
            Just("c".to_string())
        ],
        prop_oneof!["[0-9]{1,3}".prop_map(|s| s), "[a-z]{0,6}".prop_map(|s| s),],
        0..3,
    )
}

/// A generator of syntactically valid selector source strings.
fn arb_selector_src() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("a = 'x'".to_string()),
        Just("b <> '3'".to_string()),
        Just("c > 10".to_string()),
        Just("a LIKE '%x_'".to_string()),
        Just("b IN ('1','2','3')".to_string()),
        Just("c BETWEEN 2 AND 30".to_string()),
        Just("a IS NULL".to_string()),
        Just("b IS NOT NULL".to_string()),
        Just("c + 1 * 2 <= 20".to_string()),
        Just("TRUE".to_string()),
        Just("FALSE".to_string()),
    ];
    atom.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner).prop_flat_map(|(l, r)| {
            prop_oneof![
                Just(format!("({l}) AND ({r})")),
                Just(format!("({l}) OR ({r})")),
                Just(format!("NOT ({l})")),
            ]
        })
    })
}

proptest! {
    /// Pretty-printing a parsed selector re-parses to the same AST.
    #[test]
    fn display_roundtrip(src in arb_selector_src()) {
        let sel = Selector::parse(&src).unwrap();
        let printed = sel.expr().to_string();
        let again = Selector::parse(&printed).unwrap();
        prop_assert_eq!(again.expr(), sel.expr());
    }

    /// Evaluation is total (never panics) for valid selectors.
    #[test]
    fn eval_total(src in arb_selector_src(), attrs in arb_attrs()) {
        let sel = Selector::parse(&src).unwrap();
        let _ = sel.evaluate(&attrs);
    }

    /// Double negation preserves the three-valued result.
    #[test]
    fn double_negation(src in arb_selector_src(), attrs in arb_attrs()) {
        let sel = Selector::parse(&src).unwrap();
        let double = Selector::parse(&format!("NOT (NOT ({src}))")).unwrap();
        prop_assert_eq!(sel.evaluate(&attrs), double.evaluate(&attrs));
    }

    /// De Morgan: NOT (a AND b) === (NOT a) OR (NOT b).
    #[test]
    fn de_morgan(a in arb_selector_src(), b in arb_selector_src(), attrs in arb_attrs()) {
        let lhs = Selector::parse(&format!("NOT (({a}) AND ({b}))")).unwrap();
        let rhs = Selector::parse(&format!("(NOT ({a})) OR (NOT ({b}))")).unwrap();
        prop_assert_eq!(lhs.evaluate(&attrs), rhs.evaluate(&attrs));
    }

    /// AND with TRUE is identity; AND with FALSE is FALSE.
    #[test]
    fn and_identity(src in arb_selector_src(), attrs in arb_attrs()) {
        let sel = Selector::parse(&src).unwrap();
        let with_true = Selector::parse(&format!("({src}) AND TRUE")).unwrap();
        let with_false = Selector::parse(&format!("({src}) AND FALSE")).unwrap();
        prop_assert_eq!(with_true.evaluate(&attrs), sel.evaluate(&attrs));
        prop_assert_eq!(with_false.evaluate(&attrs), Truth::False);
    }

    /// The lexer/parser never panic on arbitrary garbage.
    #[test]
    fn parser_total_on_garbage(s in "\\PC{0,48}") {
        let _ = Selector::parse(&s);
    }
}
