//! Adversarial property tests for the selector parser: arbitrary and
//! pathological inputs must produce `Ok` or a typed
//! [`ParseSelectorError`] — never a panic, never unbounded recursion —
//! and bound parameters must be inert data regardless of content.

use std::collections::BTreeMap;

use proptest::prelude::*;
use safeweb_selector::{Selector, SelectorError, MAX_NESTING_DEPTH};

/// Calls the parser on `input` inside `catch_unwind`, proving "typed
/// error, not panic" for hostile bytes.
fn parse_never_panics(input: &str) -> Result<(), proptest::test_runner::TestCaseError> {
    let owned = input.to_string();
    let outcome = std::panic::catch_unwind(move || Selector::parse(&owned).map(|_| ()));
    prop_assert!(outcome.is_ok(), "parser panicked on {input:?}");
    Ok(())
}

proptest! {
    /// Printable garbage (ASCII + multibyte unicode) never panics.
    #[test]
    fn printable_garbage_never_panics(s in "\\PC{0,64}") {
        parse_never_panics(&s)?;
    }

    /// Selector-ish token soup — operators, quotes, keywords, digits in
    /// random order — never panics and errors are typed.
    #[test]
    fn token_soup_never_panics(s in "[a-zA-Z0-9_'()<>=+*/,.? -]{0,48}") {
        parse_never_panics(&s)?;
    }

    /// NUL bytes and other control characters are rejected with a typed
    /// error (the lexer only admits printable selector syntax).
    #[test]
    fn control_chars_yield_typed_errors(
        prefix in "[a-z]{0,4}",
        ctl in proptest::char::range('\u{0}', '\u{8}'),
        suffix in "[a-z]{0,4}",
    ) {
        let input = format!("{prefix}{ctl}{suffix}");
        let owned = input.clone();
        let outcome = std::panic::catch_unwind(move || Selector::parse(&owned));
        prop_assert!(outcome.is_ok(), "parser panicked on {input:?}");
        if let Ok(Err(err)) = outcome {
            // The error type carries a position; Display never panics.
            let _ = (err.position(), err.to_string());
        }
    }

    /// Deep `(`/`NOT`/`-` nesting beyond the limit returns the typed
    /// depth error; nesting inside the limit parses fine.
    #[test]
    fn nesting_depth_is_enforced(extra in 1usize..1000, shallow in 1usize..64) {
        let deep = MAX_NESTING_DEPTH + extra;
        for (open, close) in [("(", ")"), ("NOT ", ""), ("- ", "")] {
            let input = format!("{}1 = 1{}", open.repeat(deep), close.repeat(deep));
            let err = Selector::parse(&input).expect_err("over-deep input must fail");
            prop_assert!(
                err.to_string().contains("nesting exceeds"),
                "wanted depth error for {}x {open:?}, got: {err}", deep
            );

            let input = format!("{}1 = 1{}", open.repeat(shallow), close.repeat(shallow));
            prop_assert!(
                Selector::parse(&input).is_ok(),
                "shallow nesting ({shallow}) must parse"
            );
        }
    }

    /// A hostile payload bound via `Selector::bind` is inert: the bound
    /// selector matches exactly the attribute equal to the payload,
    /// regardless of quotes/keywords/operators in it.
    #[test]
    fn bound_params_are_inert(payload in "\\PC{0,32}") {
        let sel = Selector::bind("name = ?", &[payload.as_str().into()])
            .expect("binding any printable payload succeeds");

        let mut attrs = BTreeMap::new();
        attrs.insert("name".to_string(), payload.clone());
        prop_assert!(
            sel.matches(&attrs),
            "bound selector must match its own payload {payload:?}"
        );

        attrs.insert("name".to_string(), format!("{payload}-nope"));
        prop_assert!(
            !sel.matches(&attrs),
            "bound selector must not match a different value for {payload:?}"
        );
    }

    /// The classic concatenation bug, side by side: concatenating the
    /// same payload into quotes either fails to parse or — when the
    /// payload happens to close the quote and inject `OR` — matches rows
    /// the bound form does not. The bound form never over-matches.
    #[test]
    fn binding_beats_concatenation(name in "[a-z]{1,8}") {
        let payload = format!("{name}' OR 'a' = 'a");
        let mut attrs = BTreeMap::new();
        attrs.insert("name".to_string(), "somebody-else".to_string());

        // Concatenated: parses (the payload completes the quoting) and
        // matches EVERY row — the injection.
        let concatenated = format!("name = '{payload}'");
        let injected = Selector::parse(&concatenated).expect("payload completes the syntax");
        assert!(injected.matches(&attrs), "demonstrates the injection");

        // Bound: the payload is a 16-ish char string nobody matches.
        let bound = Selector::bind("name = ?", &[payload.as_str().into()]).unwrap();
        prop_assert!(!bound.matches(&attrs));
    }
}

#[test]
fn bind_checks_arity_and_null() {
    assert!(matches!(
        Selector::bind("a = ? AND b = ?", &["x".into()]),
        Err(SelectorError::Arity {
            expected: 2,
            got: 1
        })
    ));
    assert!(matches!(
        Selector::bind("a = ?", &["x".into(), "y".into()]),
        Err(SelectorError::Arity {
            expected: 1,
            got: 2
        })
    ));
    assert!(matches!(
        Selector::bind("a = ?", &[safeweb_safeq::Param::Null]),
        Err(SelectorError::NullParam)
    ));
}

#[test]
fn bind_supports_numbers_bools_and_positions() {
    let sel = Selector::bind(
        "age > ? AND active = ? AND score <= ?",
        &[40i64.into(), "yes".into(), 9.5f64.into()],
    )
    .unwrap();
    let mut attrs = BTreeMap::new();
    attrs.insert("age".to_string(), "61".to_string());
    attrs.insert("active".to_string(), "yes".to_string());
    attrs.insert("score".to_string(), "9.5".to_string());
    assert!(sel.matches(&attrs));
    attrs.insert("age".to_string(), "39".to_string());
    assert!(!sel.matches(&attrs));

    // Booleans bind to the TRUE/FALSE keywords (boolean contexts, not
    // string attributes — those are untyped strings in this dialect).
    let always = Selector::bind("? OR age > ?", &[true.into(), 40i64.into()]).unwrap();
    assert!(always.matches(&BTreeMap::new()));
    let gate = Selector::bind("? AND age > ?", &[false.into(), 40i64.into()]).unwrap();
    assert!(!gate.matches(&attrs));
}

#[test]
fn parse_untrusted_rejects_tainted_input() {
    use safeweb_taint::SStr;

    let hostile = SStr::from_user("name = 'x' OR 'a' = 'a'");
    assert!(matches!(
        Selector::parse_untrusted(&hostile),
        Err(SelectorError::Rejected(_))
    ));

    // The same text assembled by trusted server code is fine.
    let trusted = SStr::public("name = 'x'");
    assert!(Selector::parse_untrusted(&trusted).is_ok());
}

#[test]
fn bound_source_roundtrips() {
    let sel = Selector::bind("name = ?", &["O'Brien; DROP".into()]).unwrap();
    // The printed source re-escapes quotes, so reparsing it yields the
    // same expression rather than an injection.
    let reparsed = Selector::parse(sel.source()).unwrap();
    assert_eq!(reparsed.expr(), sel.expr());
}
