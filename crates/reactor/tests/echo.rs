//! End-to-end reactor tests over a line-echo protocol: framing across
//! partial reads, worker dispatch ordering, backpressure, close
//! semantics, idle timeouts, and shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use safeweb_reactor::{ConnHandle, Protocol, Reactor, ReactorConfig};

/// Echoes each `\n`-terminated line back, uppercased, via a pool job —
/// exercising the read → parse → dispatch → send → flush pipeline.
struct UpperEcho {
    buf: Vec<u8>,
}

impl UpperEcho {
    fn new() -> UpperEcho {
        UpperEcho { buf: Vec::new() }
    }
}

impl Protocol for UpperEcho {
    fn on_bytes(&mut self, data: &[u8], conn: &ConnHandle) {
        self.buf.extend_from_slice(data);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            let conn = conn.clone();
            let inner = conn.clone();
            conn.dispatch(move || {
                let _ = inner.send(line.to_ascii_uppercase());
            });
        }
    }
}

fn config() -> ReactorConfig {
    ReactorConfig {
        name: "echo-test".to_string(),
        workers: 2,
        ..ReactorConfig::default()
    }
}

fn start_echo(config: ReactorConfig) -> Reactor {
    Reactor::bind("127.0.0.1:0", config, || Box::new(UpperEcho::new())).unwrap()
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let n = stream.read(&mut byte).unwrap();
        if n == 0 || byte[0] == b'\n' {
            break;
        }
        out.push(byte[0]);
    }
    String::from_utf8(out).unwrap()
}

#[test]
fn echoes_lines_in_order() {
    let reactor = start_echo(config());
    let mut stream = TcpStream::connect(reactor.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    for i in 0..50 {
        writeln!(stream, "line {i}").unwrap();
    }
    for i in 0..50 {
        // Per-connection FIFO dispatch must preserve wire order even
        // though each line is a separate pool job.
        assert_eq!(read_line(&mut stream), format!("LINE {i}"));
    }
}

#[test]
fn handles_partial_and_coalesced_writes() {
    let reactor = start_echo(config());
    let mut stream = TcpStream::connect(reactor.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // One line dribbled byte by byte, then two lines in one write.
    for b in b"hello\n" {
        stream.write_all(&[*b]).unwrap();
    }
    assert_eq!(read_line(&mut stream), "HELLO");
    stream.write_all(b"a\nb\n").unwrap();
    assert_eq!(read_line(&mut stream), "A");
    assert_eq!(read_line(&mut stream), "B");
}

#[test]
fn many_concurrent_connections_with_bounded_threads() {
    let reactor = start_echo(config());
    let addr = reactor.addr();
    let mut clients: Vec<TcpStream> = (0..200)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();
    for (i, c) in clients.iter_mut().enumerate() {
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        writeln!(c, "client {i}").unwrap();
    }
    for (i, c) in clients.iter_mut().enumerate() {
        assert_eq!(read_line(c), format!("CLIENT {i}"));
    }
    assert_eq!(reactor.active_connections(), 200);
    drop(clients);
    // Disconnects are noticed by the event loop, not by parked threads.
    for _ in 0..100 {
        if reactor.active_connections() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(reactor.active_connections(), 0);
}

#[test]
fn sharded_reactor_spreads_connections_and_echoes() {
    // Four event-loop shards behind one listener: connections are
    // round-robined off shard 0, each lives on its adopting shard, and
    // the shared pool still preserves per-connection FIFO order.
    let mut reactor = start_echo(ReactorConfig {
        shards: 4,
        ..config()
    });
    let addr = reactor.addr();
    let mut clients: Vec<TcpStream> = (0..64).map(|_| TcpStream::connect(addr).unwrap()).collect();
    for (i, c) in clients.iter_mut().enumerate() {
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for j in 0..10 {
            writeln!(c, "conn {i} line {j}").unwrap();
        }
    }
    for (i, c) in clients.iter_mut().enumerate() {
        for j in 0..10 {
            assert_eq!(read_line(c), format!("CONN {i} LINE {j}"));
        }
    }
    // Adoption across shards must be counted exactly once per conn.
    for _ in 0..100 {
        if reactor.active_connections() == 64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(reactor.active_connections(), 64);
    // The depth counter is relaxed: give the last flush a moment to land.
    for _ in 0..200 {
        if reactor.queued_bytes() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(reactor.queued_bytes(), 0, "drained outboxes leak depth");
    drop(clients);
    reactor.shutdown();
}

#[test]
fn shutdown_closes_connections_and_joins() {
    let mut reactor = start_echo(config());
    let mut stream = TcpStream::connect(reactor.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    writeln!(stream, "ping").unwrap();
    assert_eq!(read_line(&mut stream), "PING");
    reactor.shutdown();
    // The peer observes EOF promptly.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
}

#[test]
fn idle_connections_are_reaped_when_configured() {
    let reactor = start_echo(ReactorConfig {
        idle_timeout: Some(Duration::from_millis(300)),
        ..config()
    });
    let mut stream = TcpStream::connect(reactor.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    writeln!(stream, "alive").unwrap();
    assert_eq!(read_line(&mut stream), "ALIVE");
    // Stay idle past the timeout: the sweep closes us (EOF).
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
}

/// A protocol that never reads its input queue down: every received byte
/// is answered with 1 KiB, overrunning a tiny outbox cap.
struct Flooder;

impl Protocol for Flooder {
    fn on_bytes(&mut self, data: &[u8], conn: &ConnHandle) {
        for _ in 0..data.len() {
            if conn.send(vec![b'x'; 1024]).is_err() {
                // Backpressure policy under test: drop the connection.
                conn.close();
                return;
            }
        }
    }
}

#[test]
fn outbox_overflow_surfaces_and_policy_closes() {
    let reactor = Reactor::bind(
        "127.0.0.1:0",
        ReactorConfig {
            name: "flood-test".to_string(),
            workers: 1,
            shards: 1,
            outbox_cap: 16 * 1024,
            idle_timeout: None,
        },
        || Box::new(Flooder),
    )
    .unwrap();
    let mut stream = TcpStream::connect(reactor.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Ask for far more than the cap without reading: the reactor cannot
    // flush (our receive window fills), send() overflows, conn closes.
    stream.write_all(&[b'?'; 4096]).unwrap();
    let mut drained = Vec::new();
    let got = stream.read_to_end(&mut drained);
    // Either a clean EOF after the cap's worth of data, or a reset.
    if got.is_ok() {
        assert!(
            drained.len() <= 64 * 1024,
            "cap not enforced: {}",
            drained.len()
        );
    }
}
