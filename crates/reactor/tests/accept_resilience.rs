//! Regression test for the accept-loop fragility fixed by the reactor:
//! the pre-reactor frontends broke their accept loop on the first
//! transient `accept()` error (e.g. `EMFILE`), permanently killing the
//! server. Here `EMFILE` is provoked for real by clamping the process's
//! open-file soft limit; the reactor must log-and-retry, then accept new
//! connections normally once descriptors free up.
//!
//! This lives in its own integration-test binary: the rlimit is process
//! state, and sharing a process with unrelated parallel tests would make
//! their socket use flaky.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use safeweb_reactor::{sys, ConnHandle, Protocol, Reactor, ReactorConfig};

struct Echo;

impl Protocol for Echo {
    fn on_bytes(&mut self, data: &[u8], conn: &ConnHandle) {
        let _ = conn.send(data.to_vec());
    }
}

fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count() as u64)
        .unwrap_or(64)
}

fn echo_roundtrip(addr: std::net::SocketAddr) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"ping")?;
    let mut buf = [0u8; 4];
    stream.read_exact(&mut buf)?;
    assert_eq!(&buf, b"ping");
    Ok(())
}

#[test]
fn accept_survives_emfile() {
    let reactor = Reactor::bind(
        "127.0.0.1:0",
        ReactorConfig {
            name: "emfile-test".to_string(),
            workers: 1,
            ..ReactorConfig::default()
        },
        || Box::new(Echo),
    )
    .unwrap();
    let addr = reactor.addr();
    echo_roundtrip(addr).expect("server healthy before fd pressure");

    // Clamp the soft limit to just above current usage, then burn the
    // headroom with held client sockets until connects start failing —
    // at that point the server's accept() is failing with EMFILE too
    // (each accept needs a free descriptor in this same process).
    let previous = sys::set_nofile_soft(open_fds() + 6).expect("setrlimit");
    let mut hoard = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut saw_exhaustion = false;
    while Instant::now() < deadline {
        match TcpStream::connect(addr) {
            Ok(stream) => hoard.push(stream),
            Err(_) => {
                saw_exhaustion = true;
                break;
            }
        }
    }
    // Give the reactor a beat to hit (and survive) the failing accepts
    // for the connections queued in the backlog.
    std::thread::sleep(Duration::from_millis(150));

    // Free the descriptors and restore the limit: the server must still
    // be accepting. Before the fix this locked the frontend up forever.
    drop(hoard);
    sys::set_nofile_soft(previous).expect("restore rlimit");
    std::thread::sleep(Duration::from_millis(100));

    assert!(
        saw_exhaustion,
        "test precondition: fd exhaustion was never reached"
    );
    let mut ok = false;
    for _ in 0..20 {
        if echo_roundtrip(addr).is_ok() {
            ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(ok, "server stopped accepting after transient EMFILE");
}
