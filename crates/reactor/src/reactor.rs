//! The reactor core: epoll threads multiplexing every connection of a
//! listener, with protocol state machines driven by readiness events.
//!
//! # Threading model
//!
//! * **N reactor shard threads** ([`ReactorConfig::shards`], default 1)
//!   each own an epoll instance and a partition of the connections —
//!   their sockets and protocol state machines. Shard 0 also owns the
//!   listener and round-robins accepted connections across the shards
//!   (a peer adopts a stream via its command mailbox), so event-loop
//!   work — nonblocking reads/writes and incremental protocol parsing —
//!   scales past one core.
//! * **A bounded worker pool**, shared by all shards, runs application
//!   work — HTTP handlers, STOMP frame effects — dispatched through
//!   per-connection FIFOs ([`ConnHandle::dispatch`]), so one process
//!   holds tens of thousands of idle connections with `workers + shards`
//!   threads instead of a thread per connection.
//! * **Everything else** (worker jobs, broker delivery sinks on
//!   publisher threads) reaches a connection only through [`ConnHandle`]:
//!   queue bytes, close, pause reads. Handles post commands to the
//!   owning shard's mailbox and wake it via an `eventfd`.
//!
//! # Robustness
//!
//! A transient `accept()` failure (`EMFILE`, `ECONNABORTED`, ...) is
//! logged and retried after a short backoff — it never stops the accept
//! loop (the pre-reactor frontends died on the first such error). Slow
//! consumers are bounded by per-connection outbound caps; exceeding the
//! cap surfaces as [`crate::SendError::Overflow`] to the protocol, which
//! picks the policy (the STOMP frontend disconnects the subscriber).

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use safeweb_obs::{Counter, MetricsRegistry};

use crate::conn::{Command, ConnHandle, ConnShared, Outbox, ReactorShared};
use crate::pool::WorkerPool;
use crate::sys::{
    self, Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};

/// Token of the wakeup eventfd.
const WAKE_TOKEN: u64 = u64::MAX;
/// Token of the listening socket.
const LISTEN_TOKEN: u64 = u64::MAX - 1;
/// Most bytes read from one connection per readiness event, for fairness
/// (level-triggered epoll re-reports whatever is left).
const READ_BUDGET: usize = 256 * 1024;
/// Most connections accepted per readiness event, for fairness.
const ACCEPT_BUDGET: usize = 256;
/// Backoff before re-arming the listener after an `accept()` error.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// A connection-oriented protocol state machine, driven by the reactor.
///
/// All callbacks run on the reactor thread and must not block: hand
/// anything heavier than parsing to the pool via
/// [`ConnHandle::dispatch`].
pub trait Protocol: Send {
    /// Bytes arrived from the peer.
    fn on_bytes(&mut self, data: &[u8], conn: &ConnHandle);

    /// The peer closed its writing half (clean EOF). The default closes
    /// the connection; override to flush pending output first (the
    /// reactor stops reading either way, so an override must still
    /// eventually close).
    fn on_eof(&mut self, conn: &ConnHandle) {
        conn.close();
    }

    /// The connection is gone (peer reset, error, close requested, or
    /// reactor shutdown). Last callback; dispatch cleanup work here.
    fn on_close(&mut self, conn: &ConnHandle) {
        let _ = conn;
    }
}

/// Tuning knobs for a [`Reactor`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Thread-name prefix for the reactor and worker threads.
    pub name: String,
    /// Worker pool size (clamped to ≥ 1).
    pub workers: usize,
    /// Reactor shard (event-loop thread) count, clamped to ≥ 1. Shard 0
    /// accepts and round-robins connections across all shards; each
    /// connection lives on one shard for its whole life.
    pub shards: usize,
    /// Per-connection outbound queue cap in bytes; see
    /// [`crate::SendError::Overflow`].
    pub outbox_cap: usize,
    /// Close connections idle (no reads, no writes) longer than this.
    /// `None` keeps idle connections forever — what the STOMP frontend
    /// wants for parked subscribers.
    pub idle_timeout: Option<Duration>,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8);
        ReactorConfig {
            name: "safeweb".to_string(),
            workers,
            shards: 1,
            outbox_cap: 8 * 1024 * 1024,
            idle_timeout: None,
        }
    }
}

/// A running reactor serving one listener; dropping it shuts the whole
/// frontend down (accept loop, connections, shards, workers).
#[derive(Debug)]
pub struct Reactor {
    addr: SocketAddr,
    shards: Vec<Arc<ReactorShared>>,
    active: Arc<AtomicUsize>,
    queued_bytes: Arc<AtomicUsize>,
    accepted: Counter,
    disconnected: Counter,
    threads: Vec<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl Reactor {
    /// Binds `addr` (port 0 for ephemeral) and starts the reactor shard
    /// threads and the shared worker pool. `factory` builds one
    /// [`Protocol`] per accepted connection (it runs on whichever shard
    /// adopts the connection, hence `Sync`).
    ///
    /// # Errors
    ///
    /// Propagates bind and epoll setup failures.
    pub fn bind<F>(addr: &str, config: ReactorConfig, factory: F) -> io::Result<Reactor>
    where
        F: Fn() -> Box<dyn Protocol> + Send + Sync + 'static,
    {
        let shard_count = config.shards.max(1);
        let mut listener = Some(TcpListener::bind(addr)?);
        let local = listener.as_ref().expect("just bound").local_addr()?;
        listener
            .as_ref()
            .expect("just bound")
            .set_nonblocking(true)?;
        let factory: Arc<dyn Fn() -> Box<dyn Protocol> + Send + Sync> = Arc::new(factory);
        let pool = WorkerPool::new(&config.name, config.workers);
        let active = Arc::new(AtomicUsize::new(0));
        let queued_bytes = Arc::new(AtomicUsize::new(0));
        let accepted = Counter::new();
        let disconnected = Counter::new();
        let shards: Vec<Arc<ReactorShared>> = (0..shard_count)
            .map(|_| Ok(Arc::new(ReactorShared::new(EventFd::new()?))))
            .collect::<io::Result<_>>()?;
        let mut threads = Vec::with_capacity(shard_count);
        for shard_id in 0..shard_count {
            let epoll = Epoll::new()?;
            let shared = Arc::clone(&shards[shard_id]);
            epoll.add(shared.wake_fd(), EPOLLIN, WAKE_TOKEN)?;
            let listener = if shard_id == 0 {
                let l = listener.take().expect("taken once");
                epoll.add(l.as_raw_fd(), EPOLLIN, LISTEN_TOKEN)?;
                Some(l)
            } else {
                None
            };
            let core = Core {
                epoll,
                shared,
                peers: shards.clone(),
                shard_id,
                next_shard: 0,
                listener,
                factory: Arc::clone(&factory),
                jobs: pool.sender(),
                config: config.clone(),
                slots: Vec::new(),
                free: Vec::new(),
                read_buf: vec![0u8; 64 * 1024],
                active: Arc::clone(&active),
                queued_bytes: Arc::clone(&queued_bytes),
                accepted: accepted.clone(),
                disconnected: disconnected.clone(),
                reaccept_at: None,
                next_sweep: Instant::now(),
                stopping: false,
            };
            let thread = std::thread::Builder::new()
                .name(format!("{}-reactor{shard_id}", config.name))
                .spawn(move || core.run())
                .expect("spawn reactor thread");
            threads.push(thread);
        }
        Ok(Reactor {
            addr: local,
            shards,
            active,
            queued_bytes,
            accepted,
            disconnected,
            threads,
            pool: Some(pool),
        })
    }

    /// Wires this reactor's telemetry into `registry` under `prefix`
    /// (several reactors — broker frontend, HTTP frontends — can share a
    /// registry, each with its own prefix): `<prefix>.accepted` /
    /// `<prefix>.disconnected` counters plus derived gauges
    /// `<prefix>.active_connections` and `<prefix>.outbox_bytes` (the
    /// aggregate outbox depth [`Reactor::queued_bytes`] reports).
    pub fn attach_metrics(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.register_counter(&format!("{prefix}.accepted"), &self.accepted);
        registry.register_counter(&format!("{prefix}.disconnected"), &self.disconnected);
        let active = Arc::clone(&self.active);
        registry.register_derived(&format!("{prefix}.active_connections"), move || {
            active.load(Ordering::Relaxed) as f64
        });
        let queued = Arc::clone(&self.queued_bytes);
        registry.register_derived(&format!("{prefix}.outbox_bytes"), move || {
            queued.load(Ordering::Relaxed) as f64
        });
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently registered, across all shards.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Outbound bytes currently queued across every connection of this
    /// frontend: the aggregate outbox depth. A persistently high value
    /// means consumers are slower than producers (fan-out bursts, slow
    /// subscribers) and backpressure caps are doing the bounding.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes.load(Ordering::Relaxed)
    }

    /// Stops accepting, closes every connection, drains queued jobs and
    /// joins all shard and worker threads. Idempotent.
    pub fn shutdown(&mut self) {
        if !self.threads.is_empty() {
            for shard in &self.shards {
                shard.push(Command::Shutdown);
            }
            for thread in self.threads.drain(..) {
                let _ = thread.join();
            }
        }
        // After the shards are gone: the pool drains still-queued jobs
        // (including on_close cleanup the teardowns dispatched).
        if let Some(mut pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One slab slot; `gen` disambiguates commands aimed at a previous
/// occupant of the same index.
struct Slot {
    gen: u32,
    state: Option<ConnState>,
}

struct ConnState {
    stream: TcpStream,
    protocol: Box<dyn Protocol>,
    shared: Arc<ConnShared>,
    /// Readiness mask currently registered with epoll.
    interest: u32,
    read_paused: bool,
    last_activity: Instant,
}

impl ConnState {
    fn handle(&self) -> ConnHandle {
        ConnHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

struct Core {
    epoll: Epoll,
    shared: Arc<ReactorShared>,
    /// Every shard's mailbox (including this one's, at `shard_id`), for
    /// round-robining accepted connections.
    peers: Vec<Arc<ReactorShared>>,
    shard_id: usize,
    /// Round-robin cursor over `peers`; only the accepting shard uses it.
    next_shard: usize,
    /// `Some` on the accepting shard (shard 0) only.
    listener: Option<TcpListener>,
    factory: Arc<dyn Fn() -> Box<dyn Protocol> + Send + Sync>,
    /// Job entry of the shared worker pool (the pool itself is owned by
    /// [`Reactor`], which shuts it down after every shard has exited).
    jobs: Option<crate::pool::JobSender>,
    config: ReactorConfig,
    slots: Vec<Slot>,
    free: Vec<usize>,
    read_buf: Vec<u8>,
    active: Arc<AtomicUsize>,
    queued_bytes: Arc<AtomicUsize>,
    accepted: Counter,
    disconnected: Counter,
    /// When set, the listener is disarmed after an accept error until
    /// this instant.
    reaccept_at: Option<Instant>,
    next_sweep: Instant,
    stopping: bool,
}

impl Core {
    fn run(mut self) {
        let mut events = vec![EpollEvent::zeroed(); 1024];
        while !self.stopping {
            let timeout = self.poll_timeout();
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!(
                        "safeweb-reactor[{}]: epoll_wait failed: {e}",
                        self.config.name
                    );
                    break;
                }
            };
            let now = Instant::now();
            for event in &events[..n] {
                let (token, mask) = (event.data, event.events);
                if token == WAKE_TOKEN {
                    self.shared.drain_wakeups();
                } else if token == LISTEN_TOKEN {
                    self.accept_ready(now);
                } else if let Some(idx) = self.lookup(token) {
                    self.conn_ready(idx, mask, now);
                }
            }
            self.process_commands();
            self.maybe_rearm_listener(now);
            self.maybe_sweep(now);
        }
        self.teardown();
    }

    fn poll_timeout(&self) -> i32 {
        let mut timeout: i32 = -1;
        if self.config.idle_timeout.is_some() {
            timeout = 500;
        }
        if let Some(at) = self.reaccept_at {
            let ms = at
                .saturating_duration_since(Instant::now())
                .as_millis()
                .min(i32::MAX as u128) as i32
                + 1;
            timeout = if timeout < 0 { ms } else { timeout.min(ms) };
        }
        timeout
    }

    fn lookup(&self, token: u64) -> Option<usize> {
        let idx = (token & u64::from(u32::MAX)) as usize;
        let gen = (token >> 32) as u32;
        match self.slots.get(idx) {
            Some(slot) if slot.gen == gen && slot.state.is_some() => Some(idx),
            _ => None,
        }
    }

    // ---- accepting -----------------------------------------------------

    fn accept_ready(&mut self, now: Instant) {
        if self.reaccept_at.is_some() {
            return; // disarmed after an error; wait out the backoff
        }
        for _ in 0..ACCEPT_BUDGET {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => self.place_conn(stream, now),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    // A transient accept failure (EMFILE, ECONNABORTED,
                    // EINTR storm, ...) must never stop the server: log,
                    // disarm the listener briefly so a persistent error
                    // cannot spin the loop, and retry.
                    eprintln!(
                        "safeweb-reactor[{}]: accept error (retrying in {:?}): {e}",
                        self.config.name, ACCEPT_BACKOFF
                    );
                    if let Some(listener) = &self.listener {
                        let _ = self.epoll.modify(listener.as_raw_fd(), 0, LISTEN_TOKEN);
                    }
                    self.reaccept_at = Some(now + ACCEPT_BACKOFF);
                    break;
                }
            }
        }
    }

    /// Routes an accepted connection to its shard: round-robin over all
    /// shards, registering locally when the cursor lands on this one and
    /// handing the stream to the peer's mailbox otherwise.
    fn place_conn(&mut self, stream: TcpStream, now: Instant) {
        if self.peers.len() > 1 {
            let target = self.next_shard;
            self.next_shard = (self.next_shard + 1) % self.peers.len();
            if target != self.shard_id {
                self.peers[target].push(Command::Register(stream));
                return;
            }
        }
        self.register_conn(stream, now);
    }

    fn maybe_rearm_listener(&mut self, now: Instant) {
        if let Some(at) = self.reaccept_at {
            if now >= at {
                self.reaccept_at = None;
                if let Some(listener) = &self.listener {
                    let _ = self
                        .epoll
                        .modify(listener.as_raw_fd(), EPOLLIN, LISTEN_TOKEN);
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream, now: Instant) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slots.push(Slot {
                gen: 0,
                state: None,
            });
            self.slots.len() - 1
        });
        let gen = self.slots[idx].gen;
        let token = (u64::from(gen) << 32) | idx as u64;
        let shared = Arc::new(ConnShared::new(
            token,
            Arc::clone(&self.shared),
            self.config.outbox_cap,
            Arc::clone(&self.queued_bytes),
            self.jobs.clone(),
        ));
        let state = ConnState {
            stream,
            protocol: (self.factory)(),
            shared,
            interest: EPOLLIN | EPOLLRDHUP,
            read_paused: false,
            last_activity: now,
        };
        if self
            .epoll
            .add(state.stream.as_raw_fd(), state.interest, token)
            .is_err()
        {
            self.free.push(idx);
            return; // conn dropped; epoll table exhausted
        }
        self.slots[idx].state = Some(state);
        self.active.fetch_add(1, Ordering::Relaxed);
        self.accepted.inc();
    }

    // ---- per-connection events -----------------------------------------

    fn conn_ready(&mut self, idx: usize, mask: u32, now: Instant) {
        let mut close = false;
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
            close = self.read_ready(idx, now);
        } else if mask & (EPOLLERR | EPOLLHUP) != 0 {
            close = true;
        }
        if !close && mask & EPOLLOUT != 0 {
            close = self.flush_ready(idx, now);
        }
        if close {
            self.close_conn(idx);
        }
    }

    /// Reads until drained/budget and feeds the protocol. Returns whether
    /// the connection must be closed now.
    fn read_ready(&mut self, idx: usize, now: Instant) -> bool {
        let buf = &mut self.read_buf;
        let Some(state) = self.slots[idx].state.as_mut() else {
            return false;
        };
        if state.read_paused {
            return false;
        }
        let mut total = 0;
        loop {
            match state.stream.read(buf) {
                Ok(0) => {
                    // Clean EOF. Stop reading (level-triggered epoll would
                    // otherwise spin) and let the protocol pick shutdown
                    // or flush-then-close.
                    state.last_activity = now;
                    state.read_paused = true;
                    set_interest(&self.epoll, state, desired_interest(state));
                    let handle = state.handle();
                    state.protocol.on_eof(&handle);
                    return false;
                }
                Ok(n) => {
                    state.last_activity = now;
                    let handle = state.handle();
                    state.protocol.on_bytes(&buf[..n], &handle);
                    total += n;
                    if total >= READ_BUDGET {
                        return false; // fairness; epoll re-reports the rest
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return true,
            }
        }
    }

    /// Writes queued outbound bytes. Returns whether the connection must
    /// be closed now.
    fn flush_ready(&mut self, idx: usize, now: Instant) -> bool {
        let Some(state) = self.slots[idx].state.as_mut() else {
            return false;
        };
        match flush_outbox(state) {
            Err(_) => true,
            Ok((drained, close_after_flush)) => {
                if drained && close_after_flush {
                    return true;
                }
                state.last_activity = now;
                set_interest(&self.epoll, state, desired_interest(state));
                false
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let slot = &mut self.slots[idx];
        let Some(mut state) = slot.state.take() else {
            return;
        };
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        self.active.fetch_sub(1, Ordering::Relaxed);
        self.disconnected.inc();
        let _ = self.epoll.delete(state.stream.as_raw_fd());
        {
            let mut out = state.shared.out.lock().unwrap_or_else(|e| e.into_inner());
            out.closed = true;
            out.depth.fetch_sub(out.len, Ordering::Relaxed);
            out.chunks.clear();
            out.len = 0;
        }
        let handle = state.handle();
        state.protocol.on_close(&handle);
        // `state` drops here, closing the socket.
    }

    // ---- commands & timers ---------------------------------------------

    fn process_commands(&mut self) {
        for cmd in self.shared.drain() {
            match cmd {
                Command::Flush(token) => {
                    if let Some(idx) = self.lookup(token) {
                        if self.flush_ready(idx, Instant::now()) {
                            self.close_conn(idx);
                        }
                    }
                }
                Command::Close(token) => {
                    if let Some(idx) = self.lookup(token) {
                        self.close_conn(idx);
                    }
                }
                Command::PauseReads(token) => self.set_paused(token, true),
                Command::ResumeReads(token) => self.set_paused(token, false),
                Command::Register(stream) => self.register_conn(stream, Instant::now()),
                Command::Shutdown => self.stopping = true,
            }
        }
    }

    fn set_paused(&mut self, token: u64, paused: bool) {
        if let Some(idx) = self.lookup(token) {
            let state = self.slots[idx].state.as_mut().expect("looked up");
            if state.read_paused != paused {
                state.read_paused = paused;
                set_interest(&self.epoll, state, desired_interest(state));
            }
        }
    }

    fn maybe_sweep(&mut self, now: Instant) {
        let Some(timeout) = self.config.idle_timeout else {
            return;
        };
        if now < self.next_sweep {
            return;
        }
        self.next_sweep = now + Duration::from_secs(1);
        let idle: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let state = slot.state.as_ref()?;
                (now.duration_since(state.last_activity) > timeout).then_some(idx)
            })
            .collect();
        for idx in idle {
            self.close_conn(idx);
        }
    }

    fn teardown(&mut self) {
        for idx in 0..self.slots.len() {
            self.close_conn(idx);
        }
        // The shared pool outlives this shard: [`Reactor::shutdown`]
        // drains it (including on_close cleanup dispatched just above)
        // after every shard thread has joined.
    }
}

/// The epoll mask a connection should be registered for.
///
/// A paused connection drops `EPOLLRDHUP` along with `EPOLLIN`: epoll is
/// level-triggered, so keeping RDHUP armed while `read_ready` no-ops
/// would spin the reactor at 100% CPU whenever a half-closed peer sits
/// behind a paused (or EOF'd, close-pending) connection. A fully dead
/// peer still surfaces as `EPOLLERR`/`EPOLLHUP`, which cannot be masked.
fn desired_interest(state: &ConnState) -> u32 {
    let mut mask = 0;
    if !state.read_paused {
        mask |= EPOLLIN | EPOLLRDHUP;
    }
    let out = state.shared.out.lock().unwrap_or_else(|e| e.into_inner());
    if out.len > 0 {
        mask |= EPOLLOUT;
    }
    mask
}

fn set_interest(epoll: &Epoll, state: &mut ConnState, want: u32) {
    if want != state.interest {
        let _ = epoll.modify(state.stream.as_raw_fd(), want, state.shared.token);
        state.interest = want;
    }
}

/// Writes as much of the outbox as the socket accepts.
///
/// Returns `(drained, close_after_flush)`.
fn flush_outbox(state: &mut ConnState) -> io::Result<(bool, bool)> {
    let mut out = state.shared.out.lock().unwrap_or_else(|e| e.into_inner());
    let drained = write_outbox(&mut state.stream, &mut out)?;
    Ok((drained, out.close_after_flush))
}

/// Gather-writes the queued chunks with `writev`: one syscall flushes up
/// to [`sys::WRITEV_BATCH`] chunks (the broker's per-event frames queue
/// as one chunk each, so a fan-out burst previously cost one `write`
/// syscall per frame). Returns whether the queue fully drained.
///
/// A short write may stop anywhere — mid-chunk, or exactly on a chunk
/// boundary partway through the vector — so the queue is advanced purely
/// by byte count.
fn write_outbox(stream: &mut TcpStream, out: &mut Outbox) -> io::Result<bool> {
    loop {
        if out.chunks.is_empty() {
            return Ok(true);
        }
        // The gather list is an iterator straight over the chunk queue
        // (front chunk offset by its partial-write position): no
        // allocation on the flush path; `writev_fd` stops at its
        // stack-array batch cap.
        let result = sys::writev_fd(
            stream.as_raw_fd(),
            std::iter::once(&out.chunks[0][out.front_pos..])
                .chain(out.chunks.iter().skip(1).map(Vec::as_slice)),
        );
        let wrote = match result {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        advance_outbox(out, wrote);
    }
}

/// Advances the chunk queue past `wrote` bytes, wherever the short write
/// landed.
fn advance_outbox(out: &mut Outbox, mut wrote: usize) {
    debug_assert!(wrote <= out.len, "wrote more than was queued");
    out.len -= wrote;
    out.depth.fetch_sub(wrote, Ordering::Relaxed);
    while wrote > 0 {
        let front_remaining =
            out.chunks.front().expect("bytes imply a chunk").len() - out.front_pos;
        if wrote >= front_remaining {
            wrote -= front_remaining;
            out.chunks.pop_front();
            out.front_pos = 0;
        } else {
            out.front_pos += wrote;
            wrote = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// The gather-write flush against a real socket with a deliberately
    /// tiny kernel send buffer: `writev` keeps returning **short
    /// writes** — landing mid-chunk or exactly on a chunk boundary
    /// partway through the iovec — and the queue accounting must
    /// advance correctly through every one of them, delivering the byte
    /// stream intact and in order.
    #[test]
    fn writev_flush_survives_partial_vector_short_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut writer = TcpStream::connect(addr).unwrap();
        let (mut reader, _) = listener.accept().unwrap();
        // Shrink the send buffer so one writev can never take the whole
        // queue (the kernel clamps to its floor — still far below the
        // queued total).
        sys::set_send_buffer(writer.as_raw_fd(), 4096).unwrap();
        writer.set_nonblocking(true).unwrap();

        // Way more chunks than one WRITEV_BATCH, in awkward sizes, with
        // a position-dependent pattern so any reorder/skip is caught.
        let mut out = Outbox {
            chunks: VecDeque::new(),
            front_pos: 0,
            len: 0,
            cap: usize::MAX,
            closed: false,
            close_after_flush: false,
            depth: Arc::new(AtomicUsize::new(0)),
        };
        let mut expected = Vec::new();
        for i in 0..300usize {
            let size = 1 + (i * 37) % 900;
            let chunk: Vec<u8> = (0..size).map(|j| ((i + j) % 251) as u8).collect();
            expected.extend_from_slice(&chunk);
            out.len += chunk.len();
            out.chunks.push_back(chunk);
        }
        out.depth.store(out.len, Ordering::Relaxed);
        let total = expected.len();
        assert!(total > 64 * 1024, "queue must dwarf the send buffer");

        let mut received = Vec::new();
        let mut read_buf = vec![0u8; 8 * 1024];
        let mut rounds = 0;
        loop {
            rounds += 1;
            match write_outbox(&mut writer, &mut out).expect("flush") {
                true => break,
                false => {
                    // Short write: the queue must be mid-flight and
                    // internally consistent.
                    let queued: usize = out.chunks.iter().map(Vec::len).sum();
                    assert_eq!(out.len + out.front_pos, queued, "len bookkeeping");
                    if let Some(front) = out.chunks.front() {
                        assert!(out.front_pos < front.len(), "front_pos past front");
                    }
                    // Drain the peer so the socket opens up again.
                    let n = reader.read(&mut read_buf).expect("peer read");
                    received.extend_from_slice(&read_buf[..n]);
                }
            }
        }
        assert!(rounds > 2, "send buffer never forced a partial write");
        assert_eq!(out.len, 0);
        assert!(out.chunks.is_empty());
        while received.len() < total {
            let n = reader.read(&mut read_buf).expect("peer read");
            assert!(n > 0, "stream ended early");
            received.extend_from_slice(&read_buf[..n]);
        }
        assert_eq!(received, expected, "bytes reordered or lost");
    }

    /// Byte-count advancement over the chunk queue: cuts mid-chunk, on
    /// exact chunk boundaries, and across several chunks at once.
    #[test]
    fn advance_outbox_handles_every_cut_point() {
        let build = || {
            let chunks: VecDeque<Vec<u8>> = vec![vec![1u8; 4], vec![2u8; 6], vec![3u8; 2]].into();
            Outbox {
                len: 12,
                chunks,
                front_pos: 0,
                cap: usize::MAX,
                closed: false,
                close_after_flush: false,
                depth: Arc::new(AtomicUsize::new(12)),
            }
        };
        // Mid-first-chunk.
        let mut out = build();
        advance_outbox(&mut out, 3);
        assert_eq!((out.len, out.front_pos, out.chunks.len()), (9, 3, 3));
        // Exactly one chunk.
        let mut out = build();
        advance_outbox(&mut out, 4);
        assert_eq!((out.len, out.front_pos, out.chunks.len()), (8, 0, 2));
        // Across a boundary into the middle of the second chunk.
        let mut out = build();
        advance_outbox(&mut out, 7);
        assert_eq!((out.len, out.front_pos, out.chunks.len()), (5, 3, 2));
        // Everything.
        let mut out = build();
        advance_outbox(&mut out, 12);
        assert_eq!((out.len, out.front_pos, out.chunks.len()), (0, 0, 0));
        // Resume from a mid-chunk position across the rest.
        let mut out = build();
        advance_outbox(&mut out, 3);
        advance_outbox(&mut out, 8);
        assert_eq!((out.len, out.front_pos, out.chunks.len()), (1, 1, 1));
    }
}
