//! Raw Linux system-call bindings used by the reactor.
//!
//! The build environment has no crates.io access (so no `libc`/`mio`);
//! following the repository's shim approach, the handful of syscalls the
//! reactor needs — `epoll`, `eventfd` and `rlimit` — are declared here as
//! direct `extern "C"` bindings against the platform libc that every Rust
//! Linux target already links. This is the only module in the workspace
//! containing `unsafe` code; everything above it speaks in safe wrappers
//! ([`Epoll`], [`EventFd`]).

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_uint};

/// `epoll_event.events` flag: readable.
pub const EPOLLIN: u32 = 0x001;
/// `epoll_event.events` flag: writable.
pub const EPOLLOUT: u32 = 0x004;
/// `epoll_event.events` flag: error condition.
pub const EPOLLERR: u32 = 0x008;
/// `epoll_event.events` flag: hangup.
pub const EPOLLHUP: u32 = 0x010;
/// `epoll_event.events` flag: peer shut down its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const RLIMIT_NOFILE: c_int = 7;
const SOL_SOCKET: c_int = 1;
const SO_SNDBUF: c_int = 7;

/// Most buffers one [`writev_fd`] call gathers. Linux's `IOV_MAX` is
/// 1024; 64 already amortises the syscall across a deep outbox while
/// keeping the stack-allocated iovec array small.
pub const WRITEV_BATCH: usize = 64;

/// One gather-write segment (`struct iovec`).
#[repr(C)]
#[derive(Clone, Copy)]
struct IoVec {
    base: *const u8,
    len: usize,
}

/// One readiness notification, as filled in by `epoll_wait`.
///
/// The kernel/libc definition is packed on x86-64 (`__EPOLL_PACKED`), and
/// has natural alignment on other architectures; getting this wrong
/// corrupts the token of every second event.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitset of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub data: u64,
}

impl EpollEvent {
    /// An empty (zeroed) event, for pre-allocating wait buffers.
    pub const fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    fn writev(fd: c_int, iov: *const IoVec, iovcnt: c_int) -> isize;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_int,
        optlen: u32,
    ) -> c_int;
}

/// Gather-writes up to [`WRITEV_BATCH`] buffers to `fd` in **one**
/// syscall, returning the bytes written (possibly a short write ending
/// mid-buffer — the caller advances its queue by the count). The iovec
/// array lives on the stack and `bufs` is consumed lazily, so the hot
/// flush path allocates nothing; buffers beyond the batch cap are left
/// un-consumed and the caller loops.
///
/// # Errors
///
/// Propagates `writev` failure, including `WouldBlock` on a full socket
/// buffer and `Interrupted` on `EINTR` (callers retry).
pub fn writev_fd<'a>(fd: i32, bufs: impl IntoIterator<Item = &'a [u8]>) -> io::Result<usize> {
    let mut iov = [IoVec {
        base: std::ptr::null(),
        len: 0,
    }; WRITEV_BATCH];
    let mut count = 0;
    for (slot, buf) in iov.iter_mut().zip(bufs) {
        slot.base = buf.as_ptr();
        slot.len = buf.len();
        count += 1;
    }
    let n = unsafe { writev(fd, iov.as_ptr(), count as c_int) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Shrinks (or grows) a socket's kernel send buffer. The outbox flush
/// tests use a tiny buffer to force partial `writev` results; the kernel
/// clamps to its own minimum and doubles the value for bookkeeping.
///
/// # Errors
///
/// Propagates `setsockopt` failure.
pub fn set_send_buffer(fd: i32, bytes: i32) -> io::Result<()> {
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            &bytes,
            std::mem::size_of::<c_int>() as u32,
        )
    })
    .map(drop)
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: c_int,
}

impl Epoll {
    /// Creates a new epoll instance (`CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (fd exhaustion).
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    /// Registers `fd` for the `events` readiness set under `token`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) }).map(drop)
    }

    /// Changes the readiness set of an already registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_MOD, fd, &mut ev) }).map(drop)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        let mut ev = EpollEvent::zeroed();
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
    }

    /// Waits for readiness, filling `events`; `timeout_ms` of `-1` blocks
    /// indefinitely. Returns the number of events filled in. `EINTR`
    /// surfaces as `Ok(0)` so callers simply loop.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure other than `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len().min(i32::MAX as usize) as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// An owned `eventfd`, used to wake `epoll_wait` from other threads.
#[derive(Debug)]
pub struct EventFd {
    fd: c_int,
}

impl EventFd {
    /// Creates a nonblocking eventfd.
    ///
    /// # Errors
    ///
    /// Propagates `eventfd` failure.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw descriptor, for epoll registration.
    pub fn raw_fd(&self) -> i32 {
        self.fd
    }

    /// Posts one wakeup. Saturation (`EAGAIN` when the counter is full)
    /// is fine — the pending wakeup already guarantees delivery.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consumes all pending wakeups.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// Attempts to raise the process's open-file soft limit to at least
/// `want` descriptors (capped at the hard limit), and returns the soft
/// limit in force afterwards. Used by the idle-connection benches, which
/// hold tens of thousands of sockets in one process.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024; // conservative POSIX default
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    let target = want.min(lim.rlim_max);
    let new = RLimit {
        rlim_cur: target,
        rlim_max: lim.rlim_max,
    };
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } == 0 {
        target
    } else {
        lim.rlim_cur
    }
}

/// OS threads currently in this process, from `/proc/self/status`.
/// Used by the benches and tests that pin the reactor's bounded-thread
/// property (`0` if the proc file is unreadable).
pub fn os_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("Threads:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|count| count.parse().ok())
        })
        .unwrap_or(0)
}

/// Sets the open-file *soft* limit (which may be below the current
/// value — used by the accept-robustness tests to provoke `EMFILE`), and
/// returns the previous soft limit.
///
/// # Errors
///
/// Propagates `getrlimit`/`setrlimit` failure.
pub fn set_nofile_soft(limit: u64) -> io::Result<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    let previous = lim.rlim_cur;
    let new = RLimit {
        rlim_cur: limit.min(lim.rlim_max),
        rlim_max: lim.rlim_max,
    };
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &new) })?;
    Ok(previous)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing pending: times out immediately.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ev.wake();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 7);

        // Level-triggered: still ready until drained.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn modify_and_delete_registrations() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), EPOLLIN, 1).unwrap();
        ev.wake();
        // Mask out EPOLLIN: no longer reported.
        ep.modify(ev.raw_fd(), 0, 1).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ep.modify(ev.raw_fd(), EPOLLIN, 2).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        assert_eq!({ events[0].data }, 2);
        ep.delete(ev.raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn nofile_limit_reports_a_sane_value() {
        let lim = raise_nofile_limit(64);
        assert!(lim >= 64, "soft limit {lim} below floor");
    }
}
