//! Cross-thread connection handles: outbound queues, close flags and the
//! per-connection dispatch FIFO.
//!
//! The reactor thread owns the socket and the protocol state machine;
//! everything else (worker jobs, broker delivery sinks) talks to a
//! connection through a cloneable [`ConnHandle`]. A handle can queue
//! outbound bytes (bounded by the connection's backpressure cap), request
//! a close, pause/resume reads, and dispatch jobs that run **in FIFO
//! order per connection** on the shared worker pool — the property that
//! keeps pipelined HTTP responses and STOMP frame effects in order
//! without a thread per connection.

use std::collections::VecDeque;
use std::fmt;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam::channel::Sender;

use crate::sys::EventFd;

/// A unit of work for the pool.
pub(crate) type Job = Box<dyn FnOnce() + Send>;

/// Control messages from handles to the reactor thread.
#[derive(Debug)]
pub(crate) enum Command {
    /// The connection's outbox gained data: flush or arm write interest.
    Flush(u64),
    /// Close the connection now.
    Close(u64),
    /// Stop reading from the connection.
    PauseReads(u64),
    /// Start reading from the connection again.
    ResumeReads(u64),
    /// Adopt an accepted connection (multi-reactor sharding: the shard
    /// owning the listener round-robins streams to its peers).
    Register(TcpStream),
    /// Stop this reactor shard.
    Shutdown,
}

/// The command mailbox + wakeup pair shared by every handle of a reactor.
pub(crate) struct ReactorShared {
    cmds: Mutex<Vec<Command>>,
    wake: EventFd,
}

impl ReactorShared {
    pub(crate) fn new(wake: EventFd) -> ReactorShared {
        ReactorShared {
            cmds: Mutex::new(Vec::new()),
            wake,
        }
    }

    /// Queues a command, posting a wakeup only on the empty→non-empty
    /// transition (one `eventfd` write covers any burst, e.g. a broker
    /// fan-out touching thousands of connections).
    pub(crate) fn push(&self, cmd: Command) {
        let was_empty = {
            let mut cmds = self.cmds.lock().unwrap_or_else(|e| e.into_inner());
            let was_empty = cmds.is_empty();
            cmds.push(cmd);
            was_empty
        };
        if was_empty {
            self.wake.wake();
        }
    }

    /// Takes the queued commands (reactor thread only).
    pub(crate) fn drain(&self) -> Vec<Command> {
        std::mem::take(&mut *self.cmds.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub(crate) fn wake_fd(&self) -> i32 {
        self.wake.raw_fd()
    }

    pub(crate) fn drain_wakeups(&self) {
        self.wake.drain();
    }
}

impl fmt::Debug for ReactorShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReactorShared").finish_non_exhaustive()
    }
}

/// Failure to queue outbound bytes on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The connection is closed or closing; the bytes were dropped.
    Closed,
    /// Queuing the bytes would exceed the connection's backpressure cap.
    /// The caller decides the policy — the STOMP frontend disconnects the
    /// slow consumer; see `BrokerServer`.
    Overflow,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Closed => write!(f, "connection is closed"),
            SendError::Overflow => write!(f, "outbound queue over backpressure cap"),
        }
    }
}

impl std::error::Error for SendError {}

/// The outbound byte queue of one connection.
#[derive(Debug)]
pub(crate) struct Outbox {
    /// Queued chunks; the front chunk is partially written up to
    /// `front_pos`.
    pub(crate) chunks: VecDeque<Vec<u8>>,
    pub(crate) front_pos: usize,
    /// Total unwritten bytes across all chunks.
    pub(crate) len: usize,
    /// Backpressure cap: sends beyond this fail with
    /// [`SendError::Overflow`].
    pub(crate) cap: usize,
    /// No further sends are accepted.
    pub(crate) closed: bool,
    /// Close the connection once the queue drains.
    pub(crate) close_after_flush: bool,
    /// Frontend-wide queued-bytes counter shared by every outbox of one
    /// reactor; kept in step with `len` so operators can read aggregate
    /// outbound depth with one atomic load. See `Reactor::queued_bytes`.
    pub(crate) depth: Arc<AtomicUsize>,
}

impl Outbox {
    fn new(cap: usize, depth: Arc<AtomicUsize>) -> Outbox {
        Outbox {
            chunks: VecDeque::new(),
            front_pos: 0,
            len: 0,
            cap,
            closed: false,
            close_after_flush: false,
            depth,
        }
    }
}

/// Reactor-side + handle-side shared state for one connection.
pub(crate) struct ConnShared {
    pub(crate) token: u64,
    pub(crate) reactor: Arc<ReactorShared>,
    pub(crate) out: Mutex<Outbox>,
    /// Per-connection job FIFO (see [`ConnHandle::dispatch`]).
    queue: Mutex<VecDeque<Job>>,
    /// Whether a drain task for `queue` is scheduled or running.
    scheduled: AtomicBool,
    /// Jobs dispatched but not yet finished; protocols use this for read
    /// backpressure.
    pending_jobs: AtomicUsize,
    pool: Option<Sender<Job>>,
}

impl fmt::Debug for ConnShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConnShared")
            .field("token", &self.token)
            .finish_non_exhaustive()
    }
}

impl ConnShared {
    pub(crate) fn new(
        token: u64,
        reactor: Arc<ReactorShared>,
        cap: usize,
        depth: Arc<AtomicUsize>,
        pool: Option<Sender<Job>>,
    ) -> ConnShared {
        ConnShared {
            token,
            reactor,
            out: Mutex::new(Outbox::new(cap, depth)),
            queue: Mutex::new(VecDeque::new()),
            scheduled: AtomicBool::new(false),
            pending_jobs: AtomicUsize::new(0),
            pool,
        }
    }
}

/// How many queued jobs one drain task runs before re-queuing itself, so
/// a busy connection cannot monopolise a pool worker.
const DRAIN_SLICE: usize = 32;

fn drain_queue(shared: Arc<ConnShared>) {
    let mut ran = 0;
    loop {
        if ran == DRAIN_SLICE {
            // Yield the worker: requeue the drain task at the pool's tail.
            if let Some(pool) = &shared.pool {
                let again = Arc::clone(&shared);
                let _ = pool.send(Box::new(move || drain_queue(again)));
                return;
            }
        }
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.pop_front()
        };
        match job {
            Some(job) => {
                job();
                shared.pending_jobs.fetch_sub(1, Ordering::SeqCst);
                ran += 1;
            }
            None => {
                shared.scheduled.store(false, Ordering::SeqCst);
                // Re-check: a dispatch may have raced the store above.
                let empty = shared
                    .queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty();
                if empty || shared.scheduled.swap(true, Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// A cloneable, thread-safe handle to one reactor connection.
#[derive(Debug, Clone)]
pub struct ConnHandle {
    pub(crate) shared: Arc<ConnShared>,
}

impl ConnHandle {
    /// Queues `bytes` for writing and wakes the reactor.
    ///
    /// # Errors
    ///
    /// [`SendError::Closed`] if the connection is closed or closing,
    /// [`SendError::Overflow`] if the bytes would exceed the connection's
    /// backpressure cap (nothing is queued in either case).
    pub fn send(&self, bytes: Vec<u8>) -> Result<(), SendError> {
        if bytes.is_empty() {
            return Ok(());
        }
        let was_empty = {
            let mut out = self.shared.out.lock().unwrap_or_else(|e| e.into_inner());
            if out.closed {
                return Err(SendError::Closed);
            }
            if out.len + bytes.len() > out.cap {
                return Err(SendError::Overflow);
            }
            let was_empty = out.len == 0;
            out.len += bytes.len();
            out.depth.fetch_add(bytes.len(), Ordering::Relaxed);
            out.chunks.push_back(bytes);
            was_empty
        };
        if was_empty {
            // Non-empty outboxes already have a flush pending or write
            // interest armed; appends under the outbox lock serialise
            // against the reactor's flush, so the transition is exact.
            self.shared.reactor.push(Command::Flush(self.shared.token));
        }
        Ok(())
    }

    /// Closes the connection, dropping any unwritten outbound bytes.
    pub fn close(&self) {
        {
            let mut out = self.shared.out.lock().unwrap_or_else(|e| e.into_inner());
            out.closed = true;
        }
        self.shared.reactor.push(Command::Close(self.shared.token));
    }

    /// Refuses further sends and closes the connection once everything
    /// already queued has been written.
    pub fn close_after_flush(&self) {
        {
            let mut out = self.shared.out.lock().unwrap_or_else(|e| e.into_inner());
            out.closed = true;
            out.close_after_flush = true;
        }
        self.shared.reactor.push(Command::Flush(self.shared.token));
    }

    /// Whether the connection is closed or closing.
    pub fn is_closed(&self) -> bool {
        self.shared
            .out
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .closed
    }

    /// Stops reading from the connection until [`ConnHandle::resume_reads`].
    /// Idempotent.
    pub fn pause_reads(&self) {
        self.shared
            .reactor
            .push(Command::PauseReads(self.shared.token));
    }

    /// Resumes reading. Idempotent.
    pub fn resume_reads(&self) {
        self.shared
            .reactor
            .push(Command::ResumeReads(self.shared.token));
    }

    /// Runs `job` on the worker pool. Jobs dispatched through one handle
    /// run strictly in dispatch order (an actor-style FIFO), so a
    /// protocol can hand off every parsed request/frame and still get
    /// in-order effects.
    pub fn dispatch(&self, job: impl FnOnce() + Send + 'static) {
        let Some(pool) = &self.shared.pool else {
            return;
        };
        self.shared.pending_jobs.fetch_add(1, Ordering::SeqCst);
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(Box::new(job));
        }
        if !self.shared.scheduled.swap(true, Ordering::SeqCst) {
            let shared = Arc::clone(&self.shared);
            let _ = pool.send(Box::new(move || drain_queue(shared)));
        }
    }

    /// Jobs dispatched on this connection that have not finished yet.
    pub fn pending_jobs(&self) -> usize {
        self.shared.pending_jobs.load(Ordering::SeqCst)
    }

    /// Unwritten outbound bytes currently queued.
    pub fn outbox_len(&self) -> usize {
        self.shared
            .out
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len
    }
}
