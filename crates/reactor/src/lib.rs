//! # safeweb-reactor
//!
//! The epoll-backed connection reactor under SafeWeb's network
//! frontends. The paper's middleware (and this repository's seed) served
//! every HTTP request and STOMP subscriber from its own blocking thread;
//! that model cannot hold the tens of thousands of idle subscriber
//! connections a deployed event broker accumulates. This crate replaces
//! it with the classic reactor pattern:
//!
//! * [`Reactor`] — [`ReactorConfig::shards`] event-loop threads per
//!   frontend, multiplexing the listener and all connections through
//!   `epoll` with nonblocking sockets (direct `extern "C"` bindings in
//!   [`sys`]; the build environment has no crates.io, matching the
//!   repository's shim approach). Shard 0 owns the listener and
//!   round-robins accepted connections across all shards, so event-loop
//!   work scales past one core.
//! * [`Protocol`] — the per-connection state machine a frontend plugs in
//!   (incremental HTTP request parsing, STOMP frame decoding). Runs on
//!   the reactor thread; must never block.
//! * [`ConnHandle`] — how everything off the reactor thread talks to a
//!   connection: bounded outbound byte queues (backpressure caps), close
//!   requests, read pause/resume, and an actor-style per-connection job
//!   FIFO ([`ConnHandle::dispatch`]) onto the bounded worker pool.
//!
//! # Invariants
//!
//! * The reactor thread never blocks on application work; protocols
//!   dispatch it to the pool.
//! * Jobs dispatched through one connection run in FIFO order, so
//!   responses and frame effects keep wire order without per-connection
//!   threads.
//! * A transient `accept()` error (e.g. `EMFILE`) never stops the accept
//!   loop: it is logged and retried after a short backoff.
//! * Outbound queues are bounded; a slow consumer surfaces as
//!   [`SendError::Overflow`] and the protocol chooses the policy.
//!
//! Thread count is `shards + workers` per frontend, independent of
//! connection count — the property the idle-connection benches in
//! `safeweb-bench` measure.

#![deny(unsafe_code)]
#![deny(missing_docs)]

mod conn;
mod pool;
mod reactor;
pub mod sys;

pub use conn::{ConnHandle, SendError};
pub use pool::WorkerPool;
pub use reactor::{Protocol, Reactor, ReactorConfig};
