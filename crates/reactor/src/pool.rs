//! A small fixed-size worker pool.
//!
//! The reactor thread must never block on application work (a password
//! hash, a broker fan-out), so ready connections hand their parsed
//! requests and frames to this pool. The pool is *bounded in threads*,
//! not in queue depth — per-connection dispatch FIFOs
//! ([`crate::conn::ConnHandle::dispatch`]) cap how much any one
//! connection can enqueue, which bounds the queue transitively.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

type Job = Box<dyn FnOnce() + Send>;

/// A cloneable handle that enqueues jobs onto a pool from other threads.
pub(crate) type JobSender = Sender<Job>;

/// A fixed set of worker threads draining a shared job queue.
#[derive(Debug)]
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `size` workers (at least one), named `{name}-worker-{i}`.
    pub fn new(name: &str, size: usize) -> WorkerPool {
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let workers = (0..size.max(1))
            .map(|i| {
                let rx = rx.clone();
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn(move || loop {
                        // A stop flag (not sender-drop) ends the loop:
                        // connection handles hold sender clones that can
                        // outlive the pool, and shutdown must still
                        // terminate. Queued jobs are drained first —
                        // recv keeps returning work until empty.
                        match rx.recv_timeout(Duration::from_millis(20)) {
                            Ok(job) => job(),
                            Err(RecvTimeoutError::Timeout) => {
                                if stop.load(Ordering::SeqCst) {
                                    break;
                                }
                            }
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    })
                    .expect("spawn reactor worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            stop,
            workers,
        }
    }

    /// Enqueues a job. Jobs submitted after [`WorkerPool::shutdown`] are
    /// silently dropped.
    pub fn execute(&self, job: Job) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(job);
        }
    }

    /// A handle that can enqueue jobs from other threads.
    pub fn sender(&self) -> Option<Sender<Job>> {
        self.tx.clone()
    }

    /// Stops accepting jobs, lets the workers drain what is queued, and
    /// joins them.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_jobs_and_drains_on_shutdown() {
        let mut pool = WorkerPool::new("test", 2);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let count = Arc::clone(&count);
            pool.execute(Box::new(move || {
                count.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 100);
        // Post-shutdown jobs are dropped, not panicking.
        pool.execute(Box::new(|| unreachable!("job after shutdown")));
    }
}
