//! The attack rig: a full Figure-4 topology (registry → units →
//! application database → DMZ replica → enforcing frontend) with canaries
//! planted behind the security boundary and query/render attack surfaces
//! installed, ready for campaign replay.
//!
//! The rig's extra routes come in two flavours:
//!
//! * **secure-by-construction** — `/find` (relstore [`QuerySpec`]),
//!   `/match` ([`Selector::bind`]) and `/greet` (escaping template
//!   interpolation) take user input only as *data*;
//! * **deliberately vulnerable** (gated by
//!   [`RigOptions::raw_routes`], the negative control) — `/find_raw`
//!   concatenates the query parameter into selector text and `/greet_raw`
//!   launders taint into a raw template splice, re-creating the string
//!   concatenation bugs the typed surfaces make unrepresentable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use safeweb_http::{Method, Request, Response};
use safeweb_labels::LabelSet;
use safeweb_mdt::labels::mdt_label;
use safeweb_mdt::registry::RegistryConfig;
use safeweb_mdt::{password_for, MdtPortal, PortalConfig, VulnConfig};
use safeweb_relstore::{CellValue, ColumnDef, ColumnType, Database, Filter, QuerySpec, Schema};
use safeweb_selector::Selector;
use safeweb_taint::SStr;
use safeweb_web::{Ctx, SResponse, SafeWebApp, TContext, Template};

use crate::oracle::CanarySet;

/// How to stand the rig up.
#[derive(Debug, Clone, Copy)]
pub struct RigOptions {
    /// Vulnerability injection for the portal routes (§5.2 classes).
    pub vuln: VulnConfig,
    /// Response label checking (`false` only for negative controls and
    /// enforcement-tax baselines).
    pub label_checking: bool,
    /// Install the deliberately vulnerable `_raw` routes.
    pub raw_routes: bool,
    /// Seed for canary tokens (campaigns add their own mutation seeds).
    pub seed: u64,
}

impl Default for RigOptions {
    fn default() -> RigOptions {
        RigOptions {
            vuln: VulnConfig::default(),
            label_checking: true,
            raw_routes: false,
            seed: crate::campaign::DEFAULT_SEED,
        }
    }
}

/// A running attack target.
pub struct AttackRig {
    portal: MdtPortal,
    app: Arc<SafeWebApp>,
    canaries: CanarySet,
    raw_routes: bool,
    attacker: String,
    attacker_password: String,
    victim: String,
    victim_patient_names: Vec<String>,
}

/// Canary documents planted in the victim MDT's replicated records.
const PLANTED_DOCS: usize = 3;
/// Canary rows in the victim's `accounts` table entries.
const PLANTED_ROWS: usize = 3;

impl AttackRig {
    /// Builds the topology, waits for the pipeline, plants canaries and
    /// installs the attack surfaces.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline does not settle (broken deployment).
    pub fn build(options: RigOptions) -> AttackRig {
        let portal = MdtPortal::build(PortalConfig {
            registry: RegistryConfig {
                regions: 1,
                hospitals_per_region: 1,
                mdts_per_hospital: 2,
                patients_per_mdt: 4,
                seed: 7,
            },
            vuln: options.vuln,
            auth_iterations: 600, // keep replay throughput high
            replication_interval: Duration::from_millis(20),
            ..PortalConfig::default()
        });
        portal.wait_for_pipeline(Duration::from_secs(30));

        let mdts = portal.mdts().to_vec();
        let victim = mdts[0].clone();
        let attacker = mdts[1].clone();
        let canaries = CanarySet::new(options.seed, PLANTED_DOCS + PLANTED_ROWS);

        // Canary case records, labelled as the victim MDT's patient data
        // and planted straight into the DMZ replica the frontend reads:
        // the label check is the only thing between them and a response.
        let dmz = portal.deployment().dmz_db();
        // The replica is read-only for the application (replication is
        // its only writer); planting goes around that, like an operator
        // seeding test fixtures, and restores the flag after.
        dmz.set_read_only(false);
        for i in 0..PLANTED_DOCS {
            dmz.put(
                &format!("record-canary-{i}"),
                safeweb_json::jobject! {
                    "kind" => "case_record",
                    "mdt_id" => victim.name.as_str(),
                    "name" => canaries.token(i),
                    "case_id" => format!("canary-case-{i}"),
                },
                LabelSet::singleton(mdt_label(&victim.name)),
                None,
            )
            .expect("canary documents are fresh");
        }
        dmz.set_read_only(true);

        // The `accounts` table the query surfaces search: victim rows hold
        // canary secrets; the attacker's own row holds nothing of value.
        let web_db = portal.deployment().users().database().clone();
        create_accounts(&web_db, &victim.name, &attacker.name, &canaries);

        let mut app = portal.frontend(&options.vuln);
        if !options.label_checking {
            app = app.with_options(safeweb_web::FrontendOptions {
                label_checking: false,
                ..Default::default()
            });
        }
        install_attack_routes(&mut app, &web_db, options.raw_routes);

        let victim_patient_names = portal
            .registry()
            .select_eq("patients", "mdt_id", &CellValue::Int(victim.id))
            .expect("patients table exists")
            .into_iter()
            .filter_map(|row| row.text("name").map(str::to_string))
            .collect();

        let attacker_password = password_for(&attacker.name);
        AttackRig {
            portal,
            app: Arc::new(app),
            canaries,
            raw_routes: options.raw_routes,
            attacker: attacker.name,
            attacker_password,
            victim: victim.name,
            victim_patient_names,
        }
    }

    /// Drives one request through the frontend.
    pub fn handle(&self, request: &Request) -> Response {
        self.app.handle(request)
    }

    /// The frontend (shared with background load threads).
    pub fn app(&self) -> Arc<SafeWebApp> {
        Arc::clone(&self.app)
    }

    /// The underlying portal.
    pub fn portal(&self) -> &MdtPortal {
        &self.portal
    }

    /// The rig's canary set.
    pub fn canaries(&self) -> &CanarySet {
        &self.canaries
    }

    /// Whether the deliberately vulnerable routes are installed.
    pub fn raw_routes(&self) -> bool {
        self.raw_routes
    }

    /// The insider attacker's username (a legitimate member of the other
    /// MDT in the hospital).
    pub fn attacker(&self) -> &str {
        &self.attacker
    }

    /// The attacker's (valid) password.
    pub fn attacker_password(&self) -> &str {
        &self.attacker_password
    }

    /// The victim MDT name.
    pub fn victim(&self) -> &str {
        &self.victim
    }

    /// Patient names treated by the victim MDT (disclosure oracle).
    pub fn victim_patient_names(&self) -> &[String] {
        &self.victim_patient_names
    }

    /// Browses the cached portal views as the victim, so the victim's
    /// rendered pages sit warm in the per-clearance render cache. The
    /// cache-probe campaign calls this before replaying: a cache keyed
    /// without the clearance id would then serve these pages to the
    /// attacker.
    pub fn warm_victim_views(&self) {
        let password = password_for(&self.victim);
        for path in [
            format!("/board/{}", self.victim),
            format!("/metrics/{}", self.victim),
            format!("/compare/{}", self.victim),
        ] {
            let request = Request::new(Method::Get, &path).with_basic_auth(&self.victim, &password);
            let response = self.app.handle(&request);
            assert_eq!(
                response.status(),
                200,
                "victim cannot warm {path}: the rig pipeline has not produced metrics"
            );
        }
    }
}

fn create_accounts(db: &Database, victim: &str, attacker: &str, canaries: &CanarySet) {
    db.create_table(
        "accounts",
        Schema::new(
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Text),
                ColumnDef::new("owner", ColumnType::Text),
                ColumnDef::new("secret", ColumnType::Text),
            ],
            "id",
        ),
    )
    .expect("accounts table is fresh");
    for i in 0..PLANTED_ROWS {
        db.insert(
            "accounts",
            vec![
                (i as i64).into(),
                format!("{victim}-card-{i}").into(),
                victim.to_string().into(),
                canaries.token(PLANTED_DOCS + i).to_string().into(),
            ],
        )
        .expect("fresh victim account rows");
    }
    db.insert(
        "accounts",
        vec![
            (PLANTED_ROWS as i64).into(),
            format!("{attacker}-note").into(),
            attacker.to_string().into(),
            "nothing-to-see".to_string().into(),
        ],
    )
    .expect("fresh attacker account row");
}

fn row_attrs(row: &safeweb_relstore::Row) -> BTreeMap<String, String> {
    ["name", "owner", "secret"]
        .iter()
        .filter_map(|col| row.text(col).map(|v| ((*col).to_string(), v.to_string())))
        .collect()
}

fn rows_to_json(rows: &[safeweb_relstore::Row]) -> SStr {
    let parts: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{{\"name\":{:?},\"owner\":{:?},\"secret\":{:?}}}",
                row.text("name").unwrap_or(""),
                row.text("owner").unwrap_or(""),
                row.text("secret").unwrap_or("")
            )
        })
        .collect();
    SStr::public(format!("[{}]", parts.join(",")))
}

fn attrs_to_json(rows: &[BTreeMap<String, String>]) -> SStr {
    let parts: Vec<String> = rows
        .iter()
        .map(|attrs| {
            format!(
                "{{\"name\":{:?},\"owner\":{:?},\"secret\":{:?}}}",
                attrs.get("name").map(String::as_str).unwrap_or(""),
                attrs.get("owner").map(String::as_str).unwrap_or(""),
                attrs.get("secret").map(String::as_str).unwrap_or("")
            )
        })
        .collect();
    SStr::public(format!("[{}]", parts.join(",")))
}

fn install_attack_routes(app: &mut SafeWebApp, web_db: &Database, raw_routes: bool) {
    // --- GET /find?name= — relstore QuerySpec, parameters bound ---------
    let db = web_db.clone();
    app.get("/find", move |ctx: &Ctx<'_>| {
        let name = ctx.query("name").unwrap_or_else(|| SStr::from_user(""));
        // The tainted value can only enter as a bound parameter; the
        // column/table names are compile-time literals.
        let spec = QuerySpec::table("accounts").filter(
            Filter::eq("name", &name).and(Filter::eq("owner", ctx.user().username.as_str())),
        );
        match db.select_spec(&spec) {
            Ok(rows) => SResponse::json(rows_to_json(&rows)),
            Err(e) => SResponse::error(400, &format!("query error: {e}")),
        }
    });

    // --- GET /match?name= — selector template, parameters bound ---------
    let db = web_db.clone();
    app.get("/match", move |ctx: &Ctx<'_>| {
        let name = ctx.query("name").unwrap_or_else(|| SStr::from_user(""));
        let sel = match Selector::bind(
            "name = ? AND owner = ?",
            &[(&name).into(), ctx.user().username.as_str().into()],
        ) {
            Ok(sel) => sel,
            Err(e) => return SResponse::error(400, &format!("selector error: {e}")),
        };
        let matched: Vec<BTreeMap<String, String>> = db
            .select("accounts", |row| sel.matches(&row_attrs(row)))
            .unwrap_or_default()
            .iter()
            .map(row_attrs)
            .collect();
        SResponse::json(attrs_to_json(&matched))
    });

    // --- GET /greet?name= — escaping template interpolation -------------
    let greet = Arc::new(Template::parse("<p>Hello, <%= name %>!</p>").expect("static template"));
    app.get("/greet", move |ctx: &Ctx<'_>| {
        let name = ctx.query("name").unwrap_or_else(|| SStr::from_user(""));
        let tctx = TContext::new().bind("name", name);
        match greet.render(&tctx) {
            Ok(body) => SResponse::html(body),
            Err(e) => SResponse::error(500, &format!("template error: {e}")),
        }
    });

    // --- POST /profile/note — a state-changing route (forgery target) ---
    app.post("/profile/note", move |_ctx: &Ctx<'_>| {
        SResponse::text(SStr::public("saved"))
    });

    // --- GET /board/:mid — per-clearance CACHED case board --------------
    // The cache-probe campaign's target. Deliberately no app-level access
    // check: the response carries the MDT's case records (canaries
    // included) labelled with that MDT's label, so the boundary label
    // check — and correct `(route, path, clearance)` cache keying — are
    // all that stand between the planted canaries and the attacker. The
    // handler depends only on the path and the store, which is the
    // `get_cached` contract.
    app.get_cached("/board/:mid", move |ctx: &Ctx<'_>| {
        let mid = ctx.param_raw("mid").unwrap_or("");
        let records = ctx.records_by("by_mid", mid);
        let json_parts: Vec<SStr> = records
            .iter()
            .map(safeweb_taint::SValue::to_json_sstr)
            .collect();
        let mut body = SStr::public("[");
        body.push_sstr(&SStr::join(json_parts.iter(), ","));
        body.push_str("]");
        SResponse::json(body)
    });

    if !raw_routes {
        return;
    }

    // --- GET /find_raw?name= — NEGATIVE CONTROL: string concatenation ---
    // This is the bug class `QuerySpec`/`Selector::bind` exist to kill:
    // the tainted value is formatted into selector *text*, so a quote in
    // it rewrites the query structure.
    let db = web_db.clone();
    app.get("/find_raw", move |ctx: &Ctx<'_>| {
        let name = ctx.query("name").unwrap_or_else(|| SStr::from_user(""));
        let source = format!(
            "name = '{}' AND owner = '{}'",
            name.as_str(),
            ctx.user().username
        );
        match Selector::parse(&source) {
            Ok(sel) => {
                let matched: Vec<BTreeMap<String, String>> = db
                    .select("accounts", |row| sel.matches(&row_attrs(row)))
                    .unwrap_or_default()
                    .iter()
                    .map(row_attrs)
                    .collect();
                SResponse::json(attrs_to_json(&matched))
            }
            Err(e) => SResponse::error(400, &format!("selector error: {e}")),
        }
    });

    // --- GET /greet_raw?name= — NEGATIVE CONTROL: taint laundering ------
    let greet_raw =
        Arc::new(Template::parse("<p>Hello, <%= raw name %>!</p>").expect("static template"));
    app.get("/greet_raw", move |ctx: &Ctx<'_>| {
        let name = ctx.query("name").unwrap_or_else(|| SStr::from_user(""));
        // Laundering the taint bit defeats both the template safety net
        // and the response label check — the classic "I know better"
        // conversion the campaign must catch.
        let laundered = SStr::public(name.as_str().to_string());
        let tctx = TContext::new().bind("name", laundered);
        match greet_raw.render(&tctx) {
            Ok(body) => SResponse::html(body),
            Err(e) => SResponse::error(500, &format!("template error: {e}")),
        }
    });
}

/// Background legitimate traffic: member users browsing their own MDT
/// pages while a campaign replays, so enforcement is measured under load.
pub struct BackgroundLoad {
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    threads: Vec<JoinHandle<()>>,
}

impl BackgroundLoad {
    /// Starts `threads` legitimate-browsing threads against the rig.
    pub fn start(rig: &AttackRig, threads: usize) -> BackgroundLoad {
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let mdts: Vec<String> = rig.portal().mdts().iter().map(|m| m.name.clone()).collect();
        let handles = (0..threads)
            .map(|i| {
                let app = rig.app();
                let stop = Arc::clone(&stop);
                let served = Arc::clone(&served);
                let own = mdts[i % mdts.len()].clone();
                let password = password_for(&own);
                std::thread::spawn(move || {
                    let targets = [
                        format!("/mdt/{own}"),
                        format!("/records/{own}"),
                        "/aggregates/regional".to_string(),
                    ];
                    let mut n = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let req = Request::new(Method::Get, &targets[n % targets.len()])
                            .with_basic_auth(&own, &password);
                        let resp = app.handle(&req);
                        if resp.status() == 200 {
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        n += 1;
                    }
                })
            })
            .collect();
        let load = BackgroundLoad {
            stop,
            served,
            threads: handles,
        };
        // Don't return until traffic actually flows: a short campaign
        // (mostly router 404s) can otherwise finish before the first
        // legitimate request lands.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while load.served.load(Ordering::Relaxed) == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        load
    }

    /// Stops the load and returns how many legitimate requests succeeded.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.served.load(Ordering::Relaxed)
    }
}

impl Drop for BackgroundLoad {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}
