//! # safeweb-attack
//!
//! The adversarial campaign testbed: corpus-driven injection, XSS,
//! label-leak and session-forgery replay against a live Figure-4 SafeWeb
//! topology, with canary oracles and deterministic seeds.
//!
//! The testbed complements the §5.2 vulnerability study: where the study
//! injects four known bugs and shows SafeWeb contains each once, the
//! campaigns replay *hundreds* of seeded mutations per attack family
//! against the secure-by-construction query and template surfaces
//! ([`safeweb_safeq::TrustedLiteral`], `QuerySpec`, `Selector::bind`,
//! escaping interpolation) while legitimate traffic runs, and assert a
//! zero-canary outcome. Deliberately vulnerable `_raw` routes — string
//! concatenation and taint laundering — serve as negative controls
//! proving the oracles catch what the typed surfaces forbid.
//!
//! ```no_run
//! use safeweb_attack::{run_campaign, seed_from_env, AttackRig, Family, RigOptions};
//!
//! let rig = AttackRig::build(RigOptions::default());
//! let report = run_campaign(&rig, Family::Sqli, 150, seed_from_env());
//! report.assert_sealed(); // panics with SAFEWEB_ATTACK_SEED on a leak
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod oracle;
pub mod rig;

pub use campaign::{run_campaign, seed_from_env, CampaignReport, Family, DEFAULT_SEED};
pub use oracle::CanarySet;
pub use rig::{AttackRig, BackgroundLoad, RigOptions};
