//! Attack corpora and the seeded payload mutator.
//!
//! Each campaign family starts from a hand-written base corpus (classic
//! injection shapes, markup smuggling, identifier twisting, credential
//! forgeries) and replays *mutations* of it: the [`Mutator`] applies a
//! seeded sequence of case flips, comment splices, quote doubling,
//! percent-encoding, unicode garbage, NUL smuggling and junk affixes, so
//! hundreds of distinct attempts derive deterministically from one seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::campaign::Family;

/// Base payloads for one family. `{victim}`, `{attacker}` and `{apw}`
/// placeholders are expanded by the campaign before mutation.
pub fn base_payloads(family: Family) -> &'static [&'static str] {
    match family {
        Family::Sqli => &[
            "x' OR 'a' = 'a",
            "' OR '1' = '1",
            "{victim}' OR '1' = '1",
            "' OR owner <> '",
            "x' OR name IS NOT NULL OR 'y' = 'z",
            "%' OR name LIKE '%",
            "x'' OR ''a'' = ''a",
            "'; DROP TABLE accounts; --",
            "x' OR owner = '{victim}",
            "{victim}-card",
            "x' AND 1 = 1 OR 'b' = 'b",
            // A middle disjunct that is TRUE on its own: with `AND`
            // binding tighter than `OR`, this is the shape that actually
            // bypasses a trailing `AND owner = …` when concatenated.
            "x' OR '1' = '1' OR 'z' = 'q",
            "x') OR ('1' = '1",
        ],
        Family::Xss => &[
            "<canary>",
            "<script>canary()</script>",
            "\"><canary src=x>",
            "'><canary>",
            "<img src=x onerror=canary(1)>",
            "<svg onload=canary>",
            "</p><canary>",
            "<CANARY TITLE='x'>",
            "%3Ccanary%3E",
            "javascript:canary(1)",
            "<a href=\"javascript:canary()\">x</a>",
        ],
        Family::LabelLeak => &[
            "{victim}",
            "{VICTIM}",
            "../{victim}",
            "{victim}/",
            "{victim}%00",
            "{victim}.",
            "./{victim}",
            "{victim}%2F..",
            "{victim}//",
            "%2e%2e/{victim}",
        ],
        // The cached-route probes reuse the identifier-twisting shapes:
        // every payload names the victim whose rendered page is sitting in
        // the per-clearance cache when the probe arrives.
        Family::CacheProbe => &[
            "{victim}",
            "{VICTIM}",
            "{victim}/",
            "{victim}%00",
            "{victim}.",
            "./{victim}",
            "../{victim}",
            "{victim}%2F..",
            "{victim}//",
            "{victim}?cached=1",
        ],
        // `b64:` prefixed entries are base64-encoded into a `Basic`
        // credential after mutation; the rest are raw header values.
        Family::SessionForgery => &[
            "b64:{victim}:",
            "b64:{victim}:wrong",
            "b64:{victim}:{apw}",
            "b64:{victim}",
            "b64::{apw}",
            "b64:admin:admin",
            "b64:admin:password",
            "b64:{attacker}:pw-{victim}",
            "Basic not-base64-at-all!!!",
            "Basic",
            "Bearer forged-token-{victim}",
            "Basic YWJjCg==\r\nX-Injected: 1",
        ],
    }
}

/// A deterministic payload mutator: the same seed yields the same mutation
/// sequence, which is what makes campaign replays reproducible from the
/// `SAFEWEB_ATTACK_SEED` a failing run prints.
#[derive(Debug)]
pub struct Mutator {
    rng: StdRng,
}

impl Mutator {
    /// A mutator for one campaign run.
    pub fn new(seed: u64) -> Mutator {
        Mutator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies 0–3 random mutations to `base`.
    pub fn mutate(&mut self, base: &str) -> String {
        let mut payload = base.to_string();
        let rounds = self.rng.gen_range(0usize..4);
        for _ in 0..rounds {
            payload = self.mutate_once(&payload);
        }
        payload
    }

    fn mutate_once(&mut self, payload: &str) -> String {
        match self.rng.gen_range(0u32..9) {
            0 => self.flip_case(payload),
            1 => self.splice_comment(payload),
            2 => payload.replace('\'', "''"),
            3 => self.percent_encode_some(payload),
            4 => self.append_junk(payload),
            5 => format!("  {payload}"),
            6 => self.insert_unicode(payload),
            7 => self.insert_at_char_boundary(payload, "%00"),
            8 => format!("{payload}{payload}"),
            _ => unreachable!("range is 0..9"),
        }
    }

    fn flip_case(&mut self, payload: &str) -> String {
        payload
            .chars()
            .map(|c| {
                if c.is_ascii_alphabetic() && self.rng.gen_bool(0.4) {
                    if c.is_ascii_lowercase() {
                        c.to_ascii_uppercase()
                    } else {
                        c.to_ascii_lowercase()
                    }
                } else {
                    c
                }
            })
            .collect()
    }

    fn splice_comment(&mut self, payload: &str) -> String {
        self.insert_at_char_boundary(payload, "/**/")
    }

    fn percent_encode_some(&mut self, payload: &str) -> String {
        let mut out = String::with_capacity(payload.len() * 2);
        for c in payload.chars() {
            if c.is_ascii() && !c.is_ascii_alphanumeric() && self.rng.gen_bool(0.5) {
                out.push_str(&format!("%{:02X}", c as u32));
            } else {
                out.push(c);
            }
        }
        out
    }

    fn append_junk(&mut self, payload: &str) -> String {
        const JUNK: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        let n = self.rng.gen_range(1usize..6);
        let mut out = payload.to_string();
        for _ in 0..n {
            out.push(JUNK[self.rng.gen_range(0usize..JUNK.len())] as char);
        }
        out
    }

    fn insert_unicode(&mut self, payload: &str) -> String {
        const GARBAGE: [&str; 5] = ["é", "✓", "𝕏", "\u{202e}", "ʼ"];
        let g = GARBAGE[self.rng.gen_range(0usize..GARBAGE.len())];
        self.insert_at_char_boundary(payload, g)
    }

    fn insert_at_char_boundary(&mut self, payload: &str, insert: &str) -> String {
        let mut boundaries: Vec<usize> = payload.char_indices().map(|(i, _)| i).collect();
        boundaries.push(payload.len());
        let at = boundaries[self.rng.gen_range(0usize..boundaries.len())];
        let mut out = String::with_capacity(payload.len() + insert.len());
        out.push_str(&payload[..at]);
        out.push_str(insert);
        out.push_str(&payload[at..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let mut a = Mutator::new(42);
        let mut b = Mutator::new(42);
        for base in base_payloads(Family::Sqli) {
            assert_eq!(a.mutate(base), b.mutate(base));
        }
        let mut c = Mutator::new(43);
        let differs = base_payloads(Family::Sqli)
            .iter()
            .any(|base| Mutator::new(42).mutate(base) != c.mutate(base));
        assert!(differs, "different seeds should diverge somewhere");
    }

    #[test]
    fn mutations_preserve_utf8() {
        let mut m = Mutator::new(7);
        for _ in 0..200 {
            for base in base_payloads(Family::Xss) {
                let out = m.mutate(base);
                // String invariants hold by construction; exercise slicing.
                assert_eq!(out.chars().count(), out.chars().count());
            }
        }
    }

    #[test]
    fn every_family_has_a_corpus() {
        for family in Family::all() {
            assert!(!base_payloads(family).is_empty());
        }
    }
}
