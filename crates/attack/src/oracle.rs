//! Leak oracles: canary tokens planted behind the security boundary and
//! detectors that scan every campaign response for them.
//!
//! A canary is a high-entropy token (`CANARY-<seed>-<i>`) stored where
//! only an authorised principal should ever read it — a victim MDT's
//! replicated case record, a victim row's `secret` column. Any campaign
//! response containing a canary is a confirmed disclosure regardless of
//! status code. A second oracle detects *markup survival* for the XSS
//! family: attacker-shaped tags that reach the page unescaped.

/// The set of canary tokens for one rig, derived from the campaign seed.
#[derive(Debug, Clone)]
pub struct CanarySet {
    tokens: Vec<String>,
}

impl CanarySet {
    /// `count` canaries derived from `seed`.
    pub fn new(seed: u64, count: usize) -> CanarySet {
        CanarySet {
            tokens: (0..count)
                .map(|i| format!("CANARY-{:08x}-{i}", seed & 0xffff_ffff))
                .collect(),
        }
    }

    /// The `i`-th token.
    pub fn token(&self, i: usize) -> &str {
        &self.tokens[i % self.tokens.len()]
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Whether `body` contains any canary, case-insensitively (mutated
    /// payloads may re-case what they echo, but stored canaries come back
    /// byte-identical — the fold is cheap insurance).
    pub fn leaked(&self, body: &str) -> bool {
        let haystack = body.to_ascii_lowercase();
        self.tokens
            .iter()
            .any(|t| haystack.contains(&t.to_ascii_lowercase()))
    }
}

/// Whether attacker-shaped markup survived into `body` unescaped. The XSS
/// corpus builds payloads around distinctive tag openers; after correct
/// escaping they appear only as `&lt;…` entities, which this scan
/// (case-insensitive) does not match. Markers are raw *tag openers* only:
/// an event-handler string or `javascript:` URL is inert as plain text,
/// dangerous only inside a surviving tag — which the opener detects.
pub fn xss_markup_survives(body: &str) -> bool {
    let haystack = body.to_ascii_lowercase();
    ["<canary", "<script", "<img", "<svg", "<a href"]
        .iter()
        .any(|marker| haystack.contains(marker))
}

/// Whether `body` mentions any of the victim's patient names — the
/// label-leak disclosure oracle, mirroring the §5.2 study.
pub fn names_leaked(body: &str, victim_names: &[String]) -> bool {
    victim_names.iter().any(|n| body.contains(n.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canaries_are_seed_scoped_and_detected() {
        let set = CanarySet::new(0xfeed, 4);
        assert_eq!(set.len(), 4);
        assert!(set.leaked(&format!("...{}...", set.token(2))));
        assert!(set.leaked(&set.token(1).to_ascii_lowercase()));
        assert!(!set.leaked("no canaries here"));
        let other = CanarySet::new(0xbeef, 4);
        assert!(!other.leaked(set.token(0)));
    }

    #[test]
    fn markup_oracle_ignores_escaped_output() {
        assert!(xss_markup_survives("<p><canary></p>"));
        assert!(xss_markup_survives("<img src=x OnError=canary(1)>"));
        assert!(!xss_markup_survives("&lt;canary&gt; &lt;script&gt;"));
        assert!(!xss_markup_survives("hello <p>world</p>"));
        // Escaped tag + surviving handler text is inert: the opener is
        // what makes the handler executable.
        assert!(!xss_markup_survives("&lt;img src=x onerror=canary(1)&gt;"));
        assert!(!xss_markup_survives("Hello, javascript:canary(1)!"));
    }

    #[test]
    fn name_oracle() {
        let names = vec!["Ada Lovelace".to_string()];
        assert!(names_leaked("{\"name\":\"Ada Lovelace\"}", &names));
        assert!(!names_leaked("{\"name\":\"Grace Hopper\"}", &names));
    }
}
