//! Campaign replay: hundreds of seeded, mutated attack attempts driven
//! through a live [`AttackRig`], every response scanned by the leak
//! oracles, with per-campaign timing for the enforcement-tax benchmark.
//!
//! Replay is deterministic: the full request sequence derives from
//! `(family, seed, rig contents)`, and every failure message carries the
//! seed as `SAFEWEB_ATTACK_SEED=<n>` so CI failures reproduce locally
//! with `SAFEWEB_ATTACK_SEED=<n> cargo test -p safeweb-attack`.

use std::fmt;
use std::time::{Duration, Instant};

use safeweb_http::{base64, url_encode, Method, Request};

use crate::corpus::{base_payloads, Mutator};
use crate::oracle::{names_leaked, xss_markup_survives};
use crate::rig::AttackRig;

/// Default replay seed (overridden by `SAFEWEB_ATTACK_SEED`).
pub const DEFAULT_SEED: u64 = 0x5afe_eb07;

/// The replay seed: `SAFEWEB_ATTACK_SEED` if set, else [`DEFAULT_SEED`].
pub fn seed_from_env() -> u64 {
    std::env::var("SAFEWEB_ATTACK_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// The four campaign families of the adversarial testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Query-structure injection against the relstore/selector surfaces.
    Sqli,
    /// Markup smuggling through the template engine.
    Xss,
    /// Cross-MDT disclosure probes against the portal routes.
    LabelLeak,
    /// Forged credentials and cross-site state changes.
    SessionForgery,
    /// Probes at the *cached* metrics route after the victim has warmed
    /// the per-clearance render cache: a mis-keyed cache (route+path only,
    /// forgetting the clearance id) would hand the attacker the victim's
    /// rendered page without ever re-running the label check.
    CacheProbe,
}

impl Family {
    /// All families, in replay order.
    pub fn all() -> [Family; 5] {
        [
            Family::Sqli,
            Family::Xss,
            Family::LabelLeak,
            Family::SessionForgery,
            Family::CacheProbe,
        ]
    }

    /// Stable name (report keys, bench ids).
    pub fn name(self) -> &'static str {
        match self {
            Family::Sqli => "sqli",
            Family::Xss => "xss",
            Family::LabelLeak => "label_leak",
            Family::SessionForgery => "session_forgery",
            Family::CacheProbe => "cache_probe",
        }
    }

    fn seed_salt(self) -> u64 {
        match self {
            Family::Sqli => 0x51,
            Family::Xss => 0x52,
            Family::LabelLeak => 0x53,
            Family::SessionForgery => 0x54,
            Family::CacheProbe => 0x55,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What one campaign replay observed.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The family replayed.
    pub family: Family,
    /// The seed the mutation sequence derived from.
    pub seed: u64,
    /// Attempts replayed.
    pub attempts: usize,
    /// Attempts whose response disclosed a canary, victim data, raw
    /// attacker markup, or granted access to forged credentials.
    pub leaks: usize,
    /// Attempts answered with an error status (4xx/5xx).
    pub denied: usize,
    /// Attempts answered 2xx/3xx without any disclosure (the request
    /// degenerated into something harmless).
    pub served: usize,
    /// Wall-clock for the whole replay (campaign requests only).
    pub elapsed: Duration,
    /// FNV-1a digest over `(target, status)` pairs — equal digests mean
    /// byte-identical replay.
    pub fingerprint: u64,
    /// Up to 3 samples of leaking responses, for diagnostics.
    pub leak_samples: Vec<String>,
}

impl CampaignReport {
    /// Mean microseconds per attempt.
    pub fn micros_per_attempt(&self) -> f64 {
        self.elapsed.as_micros() as f64 / self.attempts.max(1) as f64
    }

    /// Panics if any attempt leaked, printing the reproduction seed.
    ///
    /// # Panics
    ///
    /// When `leaks > 0`; the message includes `SAFEWEB_ATTACK_SEED`.
    pub fn assert_sealed(&self) {
        assert!(
            self.leaks == 0,
            "{} campaign leaked {}/{} attempts — reproduce with \
             SAFEWEB_ATTACK_SEED={} — samples: {:?}",
            self.family,
            self.leaks,
            self.attempts,
            self.seed,
            self.leak_samples
        );
    }
}

fn fnv1a(fingerprint: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *fingerprint ^= u64::from(b);
        *fingerprint = fingerprint.wrapping_mul(0x100_0000_01b3);
    }
}

/// Expands `{victim}` / `{VICTIM}` / `{attacker}` / `{apw}` placeholders.
fn expand(template: &str, rig: &AttackRig) -> String {
    template
        .replace("{victim}", rig.victim())
        .replace("{VICTIM}", &rig.victim().to_ascii_uppercase())
        .replace("{attacker}", rig.attacker())
        .replace("{apw}", rig.attacker_password())
}

/// Builds the `i`-th request of a family's replay sequence.
fn build_request(rig: &AttackRig, family: Family, payload: &str, i: usize) -> Request {
    match family {
        Family::Sqli => {
            let routes: &[&str] = if rig.raw_routes() {
                &["/find_raw"]
            } else {
                &["/find", "/match"]
            };
            let route = routes[i % routes.len()];
            Request::new(
                Method::Get,
                &format!("{route}?name={}", url_encode(payload)),
            )
            .with_basic_auth(rig.attacker(), rig.attacker_password())
        }
        Family::Xss => {
            let route = if rig.raw_routes() {
                "/greet_raw"
            } else {
                "/greet"
            };
            Request::new(
                Method::Get,
                &format!("{route}?name={}", url_encode(payload)),
            )
            .with_basic_auth(rig.attacker(), rig.attacker_password())
        }
        Family::LabelLeak => {
            let routes = ["/records", "/mdt", "/metrics"];
            let route = routes[i % routes.len()];
            Request::new(Method::Get, &format!("{route}/{payload}"))
                .with_basic_auth(rig.attacker(), rig.attacker_password())
        }
        Family::CacheProbe => {
            // Only cached routes: every probe lands where the victim's
            // rendered pages sit in the per-clearance cache. `/board` is
            // the canary-bearing target; `/metrics` and `/compare` are
            // warmed too.
            let routes = ["/board", "/board", "/metrics", "/compare"];
            let route = routes[i % routes.len()];
            Request::new(Method::Get, &format!("{route}/{payload}"))
                .with_basic_auth(rig.attacker(), rig.attacker_password())
        }
        Family::SessionForgery => {
            // Alternate between reading victim records and forging a
            // state change; authorization comes from the forged payload,
            // never from real credentials.
            let request = if i % 3 == 2 {
                Request::new(Method::Post, "/profile/note").with_body("note=owned")
            } else {
                Request::new(Method::Get, &format!("/records/{}", rig.victim()))
            };
            let header = match payload.strip_prefix("b64:") {
                Some(credentials) => {
                    format!("Basic {}", base64::encode(credentials.as_bytes()))
                }
                None => payload.to_string(),
            };
            request.with_header("authorization", header)
        }
    }
}

/// Whether the response to `family`'s attempt discloses anything.
fn is_leak(rig: &AttackRig, family: Family, status: u16, body: &str) -> bool {
    if rig.canaries().leaked(body) {
        return true;
    }
    match family {
        Family::Sqli => false,
        Family::Xss => status == 200 && xss_markup_survives(body),
        Family::LabelLeak => names_leaked(body, rig.victim_patient_names()),
        Family::CacheProbe => {
            // The canary scan above is the primary oracle (the cached
            // board renders planted canary records); victim patient names
            // escaping a cached page count too. Per-MDT *metrics* are
            // region-visible aggregates by policy, so a 200 there is not
            // by itself a leak.
            names_leaked(body, rig.victim_patient_names())
        }
        Family::SessionForgery => {
            // Forged credentials must never be granted anything.
            status < 400 || names_leaked(body, rig.victim_patient_names())
        }
    }
}

/// Replays `attempts` seeded mutations of `family`'s corpus against the
/// rig and scans every response with the leak oracles.
pub fn run_campaign(rig: &AttackRig, family: Family, attempts: usize, seed: u64) -> CampaignReport {
    let mut mutator = Mutator::new(seed ^ family.seed_salt());
    let bases = base_payloads(family);
    if family == Family::CacheProbe {
        // Put the victim's rendered pages into the per-clearance cache
        // before probing: the campaign attacks warm entries, not cold ones.
        rig.warm_victim_views();
    }
    let mut leaks = 0;
    let mut denied = 0;
    let mut served = 0;
    let mut fingerprint: u64 = 0xcbf2_9ce4_8422_2325;
    let mut leak_samples = Vec::new();

    let start = Instant::now();
    for i in 0..attempts {
        let base = expand(bases[i % bases.len()], rig);
        // Replay the pristine base first, then mutations of it.
        let payload = if i < bases.len() {
            base
        } else {
            mutator.mutate(&base)
        };
        let request = build_request(rig, family, &payload, i);
        let response = rig.handle(&request);
        let status = response.status();
        let body = response.body_str().unwrap_or_default();

        fnv1a(&mut fingerprint, request.path().as_bytes());
        fnv1a(&mut fingerprint, payload.as_bytes());
        fnv1a(&mut fingerprint, &status.to_be_bytes());

        if is_leak(rig, family, status, body) {
            leaks += 1;
            if leak_samples.len() < 3 {
                let excerpt: String = body.chars().take(120).collect();
                leak_samples.push(format!("{status} {} → {excerpt}", request.path()));
            }
        } else if status >= 400 {
            denied += 1;
        } else {
            served += 1;
        }
    }

    CampaignReport {
        family,
        seed,
        attempts,
        leaks,
        denied,
        served,
        elapsed: start.elapsed(),
        fingerprint,
        leak_samples,
    }
}
