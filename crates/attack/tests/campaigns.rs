//! The adversarial campaigns: four attack families, ≥100 seeded mutated
//! attempts each, replayed against the live Figure-4 topology while
//! legitimate traffic runs — plus the negative controls proving the
//! oracles catch exactly the bugs the typed surfaces forbid.
//!
//! A failing campaign prints `SAFEWEB_ATTACK_SEED=<n>`; re-running with
//! that variable set replays the identical attempt sequence. The optional
//! `SAFEWEB_ATTACK_BUDGET_SECS` bounds a campaign's wall-clock (set by
//! the CI adversarial-suite job).

use std::time::Duration;

use safeweb_attack::{
    run_campaign, seed_from_env, AttackRig, BackgroundLoad, CampaignReport, Family, RigOptions,
};
use safeweb_mdt::VulnClass;

/// Attempts per family — comfortably above the ≥100 floor.
const ATTEMPTS: usize = 150;
/// Attempts per vulnerability configuration in the label-leak sweep.
const ATTEMPTS_PER_VULN: usize = 30;

fn check_budget(reports: &[&CampaignReport]) {
    let Some(budget) = std::env::var("SAFEWEB_ATTACK_BUDGET_SECS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    else {
        return;
    };
    let total: Duration = reports.iter().map(|r| r.elapsed).sum();
    assert!(
        total <= Duration::from_secs(budget),
        "campaigns exceeded SAFEWEB_ATTACK_BUDGET_SECS={budget}: took {total:?}"
    );
}

fn summarize(report: &CampaignReport, load_served: Option<u64>) {
    println!(
        "{}: {} attempts, {} denied, {} served, 0 leaks, {:.1} µs/attempt{}",
        report.family,
        report.attempts,
        report.denied,
        report.served,
        report.micros_per_attempt(),
        match load_served {
            Some(n) => format!(", {n} legit requests alongside"),
            None => String::new(),
        }
    );
}

#[test]
fn sqli_campaign_is_sealed_under_load() {
    let rig = AttackRig::build(RigOptions::default());
    let load = BackgroundLoad::start(&rig, 2);
    let report = run_campaign(&rig, Family::Sqli, ATTEMPTS, seed_from_env());
    let served = load.stop();
    report.assert_sealed();
    assert_eq!(
        report.leaks + report.denied + report.served,
        report.attempts
    );
    assert!(
        served > 0,
        "legitimate traffic must flow during the campaign"
    );
    summarize(&report, Some(served));
    check_budget(&[&report]);
}

#[test]
fn xss_campaign_is_sealed_under_load() {
    let rig = AttackRig::build(RigOptions::default());
    let load = BackgroundLoad::start(&rig, 2);
    let report = run_campaign(&rig, Family::Xss, ATTEMPTS, seed_from_env());
    let served = load.stop();
    report.assert_sealed();
    assert_eq!(
        report.leaks + report.denied + report.served,
        report.attempts
    );
    assert!(
        served > 0,
        "legitimate traffic must flow during the campaign"
    );
    summarize(&report, Some(served));
    check_budget(&[&report]);
}

#[test]
fn session_forgery_campaign_is_sealed_under_load() {
    let rig = AttackRig::build(RigOptions::default());
    let load = BackgroundLoad::start(&rig, 2);
    let report = run_campaign(&rig, Family::SessionForgery, ATTEMPTS, seed_from_env());
    let served = load.stop();
    report.assert_sealed();
    // Forged credentials must never be served anything at all.
    assert_eq!(
        report.denied, report.attempts,
        "every forged-credential attempt must be denied"
    );
    assert!(
        served > 0,
        "legitimate traffic must flow during the campaign"
    );
    summarize(&report, Some(served));
    check_budget(&[&report]);
}

#[test]
fn label_leak_campaign_is_sealed_across_vuln_classes() {
    // The correct portal plus each §5.2 vulnerability class, SafeWeb
    // enforcing throughout: the label check is what stands between the
    // attacker and the canary records, and it must hold every time.
    let seed = seed_from_env();
    let mut reports = Vec::new();
    let configs = std::iter::once(safeweb_mdt::VulnConfig::default())
        .chain(VulnClass::all().into_iter().map(VulnClass::config));
    for vuln in configs {
        let rig = AttackRig::build(RigOptions {
            vuln,
            ..RigOptions::default()
        });
        let load = BackgroundLoad::start(&rig, 1);
        let report = run_campaign(&rig, Family::LabelLeak, ATTEMPTS_PER_VULN, seed);
        let served = load.stop();
        report.assert_sealed();
        assert!(
            served > 0,
            "legitimate traffic must flow during the campaign"
        );
        summarize(&report, Some(served));
        reports.push(report);
    }
    let total: usize = reports.iter().map(|r| r.attempts).sum();
    assert!(total >= 100, "label-leak family must replay ≥100 attempts");
    check_budget(&reports.iter().collect::<Vec<_>>());
}

#[test]
fn cache_probe_campaign_is_sealed_and_cache_is_warm() {
    // The render-cache leak oracle: the victim browses the cached routes
    // (their pages go into the per-clearance cache), then the attacker
    // replays twisted identifiers at the same route. A cache keyed
    // without the clearance id would serve the victim's page straight
    // from memory, skipping the label check entirely.
    let rig = AttackRig::build(RigOptions::default());
    let report = run_campaign(&rig, Family::CacheProbe, ATTEMPTS, seed_from_env());
    report.assert_sealed();
    assert_eq!(
        report.leaks + report.denied + report.served,
        report.attempts
    );
    let stats = rig.app().stats();
    assert!(
        stats.render_cache_misses() > 0,
        "the cached route must actually be cache-backed during the campaign"
    );
    // And the probes must not have poisoned the victim's own entry: the
    // victim still gets their metrics, now served from cache.
    let hits_before = stats.render_cache_hits();
    rig.warm_victim_views();
    assert!(
        stats.render_cache_hits() > hits_before,
        "the victim's warmed pages must be served from the cache"
    );
    summarize(&report, None);
    check_budget(&[&report]);
}

#[test]
fn raw_query_and_template_paths_are_caught() {
    // NEGATIVE CONTROL: re-enable the string-concatenated query path and
    // the taint-laundering template splice; the same campaigns that come
    // back clean against the typed surfaces must now report leaks —
    // otherwise the oracles are blind and the green runs above prove
    // nothing.
    let rig = AttackRig::build(RigOptions {
        raw_routes: true,
        ..RigOptions::default()
    });
    let seed = seed_from_env();
    let sqli = run_campaign(&rig, Family::Sqli, ATTEMPTS, seed);
    assert!(
        sqli.leaks > 0,
        "the raw query path must leak canaries (oracle has gone blind?)"
    );
    let xss = run_campaign(&rig, Family::Xss, ATTEMPTS, seed);
    assert!(
        xss.leaks > 0,
        "the raw template path must leak markup (oracle has gone blind?)"
    );
    println!(
        "negative control: sqli {}/{} leaked, xss {}/{} leaked",
        sqli.leaks, sqli.attempts, xss.leaks, xss.attempts
    );
}

#[test]
fn disabling_enforcement_reveals_the_label_leak() {
    // Second negative control, for the label check itself: inject E6
    // (omitted access check) AND disable response label checking — the
    // planted canaries must escape, proving they sit where only the
    // label check protects them.
    let rig = AttackRig::build(RigOptions {
        vuln: VulnClass::OmittedAccessCheck.config(),
        label_checking: false,
        ..RigOptions::default()
    });
    let report = run_campaign(&rig, Family::LabelLeak, ATTEMPTS_PER_VULN, seed_from_env());
    assert!(
        report.leaks > 0,
        "without the label check the canaries must leak (oracle has gone blind?)"
    );
    println!(
        "negative control: label check off → {}/{} attempts leaked",
        report.leaks, report.attempts
    );
}

#[test]
fn campaign_replay_is_deterministic() {
    let rig = AttackRig::build(RigOptions::default());
    let a = run_campaign(&rig, Family::Sqli, 60, 1234);
    let b = run_campaign(&rig, Family::Sqli, 60, 1234);
    assert_eq!(a.fingerprint, b.fingerprint, "same seed, same replay");
    assert_eq!(
        (a.leaks, a.denied, a.served),
        (b.leaks, b.denied, b.served),
        "same seed, same outcome counts"
    );
    let c = run_campaign(&rig, Family::Sqli, 60, 4321);
    assert_ne!(
        a.fingerprint, c.fingerprint,
        "a different seed must mutate differently"
    );
}
