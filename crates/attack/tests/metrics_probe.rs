//! Negative control `metrics_probe`: the observability layer must not
//! weaken the security argument. Two claims, both exercised against
//! the live rig:
//!
//! 1. the ops surface itself is a guarded door — anonymous callers and
//!    authenticated-but-under-cleared principals (the attacker's own
//!    MDT account) get nothing;
//! 2. telemetry is not a side channel — after a full label-leak
//!    campaign (every attempt minted traces and bumped counters), no
//!    canary token appears anywhere in the metrics, health, or trace
//!    snapshots an admin can pull.

use safeweb_attack::{run_campaign, seed_from_env, AttackRig, Family, RigOptions};
use safeweb_http::{client, Method, Request};
use safeweb_labels::PrivilegeSet;

const OPS_PATHS: [&str; 2] = ["/__obs/metrics", "/__obs/health"];

#[test]
fn ops_surface_denies_attackers_and_leaks_no_canaries() {
    let rig = AttackRig::build(RigOptions::default());
    let deployment = rig.portal().deployment();
    deployment
        .users()
        .create_user("obs-admin", "obs-admin-pw", &PrivilegeSet::new(), true)
        .expect("admin account is fresh");

    let ops = deployment.serve_ops("127.0.0.1:0").expect("ops binds");
    let addr = ops.addr().to_string();

    // Claim 1: the door holds. The attacker's portal credentials are
    // real, but carry no admin bit — same denial as anonymous probing.
    for path in OPS_PATHS.iter().copied().chain(["/__obs/trace/1234"]) {
        let anon = client::send(&addr, Request::new(Method::Get, path)).unwrap();
        assert_eq!(anon.status(), 401, "{path}: anonymous must be refused");
        let attacker = client::send(
            &addr,
            Request::new(Method::Get, path)
                .with_basic_auth(rig.attacker(), rig.attacker_password()),
        )
        .unwrap();
        assert_eq!(
            attacker.status(),
            403,
            "{path}: an under-cleared principal must be refused"
        );
        for denied in [&anon, &attacker] {
            assert!(
                !denied.body_str().unwrap_or_default().contains('{'),
                "{path}: a denial must carry no telemetry"
            );
        }
    }

    // Drive the full label-leak family through the frontend, collecting
    // the trace ids the responses advertise — the exact ids an attacker
    // (or a curious admin) could later look up.
    let mut trace_ids = Vec::new();
    let probe = rig.handle(
        &Request::new(Method::Get, "/records")
            .with_basic_auth(rig.attacker(), rig.attacker_password()),
    );
    if let Some(id) = probe.headers().get("x-safeweb-trace") {
        trace_ids.push(id.to_string());
    }
    let report = run_campaign(&rig, Family::LabelLeak, 120, seed_from_env());
    report.assert_sealed();

    // Claim 2: nothing the campaign touched shows up in telemetry. The
    // canary oracle scans every snapshot body the admin can fetch.
    let mut bodies = Vec::new();
    for path in OPS_PATHS {
        let response = client::send(
            &addr,
            Request::new(Method::Get, path).with_basic_auth("obs-admin", "obs-admin-pw"),
        )
        .unwrap();
        assert_eq!(response.status(), 200, "{path}: admin scrape must work");
        bodies.push((path.to_string(), response.body_str().unwrap().to_string()));
    }
    for id in &trace_ids {
        let response = client::send(
            &addr,
            Request::new(Method::Get, &format!("/__obs/trace/{id}"))
                .with_basic_auth("obs-admin", "obs-admin-pw"),
        )
        .unwrap();
        // 404 (ring evicted under load) is fine; a live body joins the
        // scan.
        if response.status() == 200 {
            bodies.push((
                format!("trace {id}"),
                response.body_str().unwrap().to_string(),
            ));
        }
    }
    for (what, body) in &bodies {
        assert!(
            !rig.canaries().leaked(body),
            "{what}: canary token leaked into telemetry"
        );
        for name in rig.victim_patient_names() {
            assert!(
                !body.contains(name),
                "{what}: victim patient name leaked into telemetry"
            );
        }
    }
}
