//! A recursive-descent JSON parser (RFC 8259 subset: no duplicate-key
//! detection; numbers outside `i64` fall back to `f64`).

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Value;

/// Error produced when JSON parsing fails; carries a byte offset into the
/// input for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    offset: usize,
    message: String,
}

impl ParseJsonError {
    fn new(offset: usize, message: impl Into<String>) -> ParseJsonError {
        ParseJsonError {
            offset,
            message: message.into(),
        }
    }

    /// Byte offset in the input where parsing failed.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseJsonError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum nesting depth accepted, to bound stack use on hostile inputs.
const MAX_DEPTH: usize = 128;

impl Value {
    /// Parses a complete JSON document. Trailing whitespace is permitted;
    /// trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// Returns [`ParseJsonError`] on malformed input, invalid escapes,
    /// non-UTF-8 escape sequences or nesting deeper than 128 levels.
    pub fn parse(input: &str) -> Result<Value, ParseJsonError> {
        let mut p = Parser {
            input: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(ParseJsonError::new(
                p.pos,
                "trailing characters after document",
            ));
        }
        Ok(v)
    }
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseJsonError {
        ParseJsonError::new(self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseJsonError> {
        if self.input[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseJsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uDC00-\uDFFF next.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: determine length from the lead byte
                    // and validate the whole sequence.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 lead byte")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.input.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.input[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseJsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobject;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::from("hi"));
    }

    #[test]
    fn parses_nested_document() {
        let v = Value::parse(r#"{"a":[1,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(
            v,
            jobject! {
                "a" => Value::Array(vec![Value::Int(1), jobject!{"b" => Value::Null}]),
                "c" => "x",
            }
        );
    }

    #[test]
    fn parses_escapes() {
        let v = Value::parse(r#""a\"b\\c\/d\n\tA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/d\n\tA"));
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = Value::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn parses_raw_utf8() {
        let v = Value::parse("\"héllo → 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → 世界"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{,}",
            "tru",
            "01",
            "1.",
            "1e",
            "--1",
            "\"\\x\"",
            "\"\\u12\"",
            "\"\\uD800\"",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn error_carries_offset() {
        let err = Value::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset(), 4);
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        let v = Value::parse("99999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
        assert_eq!(
            Value::parse("9223372036854775807").unwrap(),
            Value::Int(i64::MAX)
        );
    }
}
