//! The JSON value tree.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
///
/// Objects use a [`BTreeMap`] so that serialisation is deterministic — the
/// document store relies on byte-identical re-serialisation for revision
/// hashing and replication comparison.
///
/// ```
/// use safeweb_json::Value;
///
/// let v = Value::parse(r#"{"patient":"33812769","age":61}"#)?;
/// assert_eq!(v.get("age").and_then(Value::as_i64), Some(61));
/// # Ok::<(), safeweb_json::ParseJsonError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// The JSON `null` literal.
    #[default]
    Null,
    /// A JSON boolean.
    Bool(bool),
    /// A JSON number with no fractional part that fits in `i64`.
    Int(i64),
    /// Any other JSON number.
    Float(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with deterministically ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Shorthand for an empty object.
    pub fn object() -> Value {
        Value::Object(BTreeMap::new())
    }

    /// Shorthand for an empty array.
    pub fn array() -> Value {
        Value::Array(Vec::new())
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload; `Float` values with an exact integral value are
    /// converted.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f)
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `f64` for either number representation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable access to the array payload.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an `Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutable access to the object payload.
    pub fn as_object_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Mutable member lookup on objects.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|o| o.get_mut(key))
    }

    /// Element lookup on arrays; `None` for other variants or out-of-range
    /// indices.
    pub fn at(&self, index: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(index))
    }

    /// Inserts `key: value` into an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object; use [`Value::as_object_mut`] for a
    /// fallible alternative.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Value {
        match self {
            Value::Object(o) => {
                o.insert(key.to_string(), value.into());
                self
            }
            other => panic!("Value::set on non-object {other:?}"),
        }
    }

    /// Follows a `/`-separated path of object keys and array indices, e.g.
    /// `"records/0/patient_id"`.
    pub fn pointer(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('/') {
            if seg.is_empty() {
                continue;
            }
            cur = match cur {
                Value::Object(o) => o.get(seg)?,
                Value::Array(a) => a.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// The variant name, for diagnostics ("null", "bool", "number",
    /// "string", "array", "object").
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Displays the compact JSON encoding.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i as i64)
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Value {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Value {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl FromIterator<(String, Value)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Value {
        Value::Object(iter.into_iter().collect())
    }
}

/// Builds a [`Value::Object`] from `key => value` pairs.
///
/// ```
/// use safeweb_json::{jobject, Value};
///
/// let v = jobject! {
///     "patient_id" => 33812769,
///     "name" => "A. Patient",
///     "metrics" => Value::Array(vec![Value::Int(1), Value::Int(2)]),
/// };
/// assert_eq!(v.get("patient_id").and_then(Value::as_i64), Some(33812769));
/// ```
#[macro_export]
macro_rules! jobject {
    () => { $crate::Value::object() };
    ($($key:expr => $value:expr),+ $(,)?) => {{
        let mut obj = ::std::collections::BTreeMap::new();
        $(obj.insert(::std::string::String::from($key), $crate::Value::from($value));)+
        $crate::Value::Object(obj)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = jobject! {
            "a" => 1,
            "b" => "two",
            "c" => vec![1i64, 2, 3],
            "d" => 2.5,
            "e" => true,
        };
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("two"));
        assert_eq!(
            v.get("c").and_then(|c| c.at(2)).and_then(Value::as_i64),
            Some(3)
        );
        assert_eq!(v.get("d").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("e").and_then(Value::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn pointer_walks_nested_structure() {
        let v = jobject! {
            "records" => Value::Array(vec![jobject! {"id" => 7}]),
        };
        assert_eq!(v.pointer("records/0/id").and_then(Value::as_i64), Some(7));
        assert!(v.pointer("records/1/id").is_none());
        assert!(v.pointer("records/x").is_none());
    }

    #[test]
    fn float_int_coercion() {
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
    }

    #[test]
    fn set_inserts_into_object() {
        let mut v = Value::object();
        v.set("x", 1).set("y", "z");
        assert_eq!(v.get("x").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("y").and_then(Value::as_str), Some("z"));
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_panics_on_array() {
        Value::array().set("x", 1);
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Null.kind(), "null");
        assert_eq!(Value::Int(1).kind(), "number");
        assert_eq!(Value::Float(1.5).kind(), "number");
        assert_eq!(Value::from("s").kind(), "string");
    }
}
