//! # safeweb-json
//!
//! A small, dependency-free JSON implementation used throughout SafeWeb: the
//! CouchDB-like application database stores JSON documents, the MDT portal
//! returns JSON responses (`r.to_json` in the paper's Listing 2), and event
//! payloads may carry JSON bodies.
//!
//! Built in-tree because the reproduction's dependency allow-list does not
//! include `serde_json`, and because deterministic (sorted-key) encoding is
//! required for document revision hashing.
//!
//! ```
//! use safeweb_json::{jobject, Value};
//!
//! let doc = jobject! { "mdt" => "addenbrookes", "patients" => 42 };
//! let text = doc.to_json();
//! assert_eq!(Value::parse(&text)?, doc);
//! # Ok::<(), safeweb_json::ParseJsonError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod parse;
mod ser;
mod value;

pub use parse::ParseJsonError;
pub use value::Value;
