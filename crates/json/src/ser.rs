//! JSON serialisation: compact and pretty printers.

use crate::value::Value;

impl Value {
    /// Serialises to the compact (no-whitespace) JSON encoding.
    ///
    /// Object keys are emitted in sorted order, so equal values always
    /// produce byte-identical output — the document store's revision hashes
    /// depend on this.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Serialises with two-space indentation for human consumption.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, &mut out, 0);
        out
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// JSON floats: emit NaN/Infinity as `null` (they are unrepresentable in
/// JSON), integral floats with a trailing `.0` so they re-parse as `Float`.
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobject;

    #[test]
    fn compact_encoding() {
        let v = jobject! {
            "b" => 1,
            "a" => vec!["x", "y"],
        };
        // Keys sorted deterministically.
        assert_eq!(v.to_json(), r#"{"a":["x","y"],"b":1}"#);
    }

    #[test]
    fn escapes_in_strings() {
        let v = Value::from("a\"b\\c\nd\u{1}");
        assert_eq!(v.to_json(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn floats_keep_floatness() {
        assert_eq!(Value::Float(3.0).to_json(), "3.0");
        assert_eq!(Value::Float(2.5).to_json(), "2.5");
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn pretty_encoding() {
        let v = jobject! {"a" => vec![1i64], "b" => Value::object()};
        let pretty = v.to_json_pretty();
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]"));
        assert!(pretty.contains("\"b\": {}"));
    }

    #[test]
    fn roundtrip_preserves_value() {
        let v = jobject! {
            "nested" => jobject!{"list" => Value::Array(vec![
                Value::Int(-5), Value::Float(1.25), Value::from("é✓"), Value::Null, Value::Bool(true),
            ])},
        };
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
        assert_eq!(Value::parse(&v.to_json_pretty()).unwrap(), v);
    }
}
