//! Property tests: serialise→parse round-trips for arbitrary JSON trees.

use proptest::prelude::*;
use safeweb_json::Value;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Restrict to finite floats: NaN/inf are unrepresentable in JSON.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Float),
        "[ -~]{0,12}".prop_map(Value::from), // printable ASCII
        "\\PC{0,8}".prop_map(Value::from),   // arbitrary printable unicode
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            proptest::collection::btree_map("[a-z_]{1,8}", inner, 0..6).prop_map(Value::Object),
        ]
    })
}

proptest! {
    #[test]
    fn compact_roundtrip(v in arb_value()) {
        let text = v.to_json();
        let back = Value::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_roundtrip(v in arb_value()) {
        let text = v.to_json_pretty();
        let back = Value::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Deterministic encoding: equal values yield byte-identical JSON.
    #[test]
    fn encoding_is_deterministic(v in arb_value()) {
        prop_assert_eq!(v.to_json(), v.clone().to_json());
        let reparsed = Value::parse(&v.to_json()).unwrap();
        prop_assert_eq!(reparsed.to_json(), v.to_json());
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_garbage(s in "\\PC{0,64}") {
        let _ = Value::parse(&s);
    }
}
