//! The MDT portal's three event-processing units (§5.1, Figure 4):
//!
//! * **data producer** (privileged) — reads cases from the main registry
//!   and publishes them as labelled events;
//! * **data aggregator** (jailed) — combines the events of each cancer
//!   case into records and computes MDT/regional aggregate metrics;
//! * **data storage** (privileged) — persists processed records with
//!   their labels into the application database.

use std::collections::BTreeMap;
use std::time::Duration;

use safeweb_docstore::DocStore;
use safeweb_engine::{Relabel, UnitError, UnitSpec};
use safeweb_events::Event;
use safeweb_json::{jobject, Value};
use safeweb_labels::LabelSet;
use safeweb_relstore::{CellValue, Database};

use crate::labels::{mdt_label, region_aggregate_label, regional_label};
use crate::registry::MdtInfo;

/// Topic carrying raw per-case events from the producer.
pub const PATIENT_REPORT_TOPIC: &str = "/patient_report";
/// Topic carrying aggregated per-case records.
pub const MDT_RECORD_TOPIC: &str = "/mdt_record";
/// Topic carrying per-MDT aggregate metrics.
pub const MDT_METRICS_TOPIC: &str = "/mdt_metrics";
/// Topic carrying regional aggregate metrics.
pub const REGIONAL_METRICS_TOPIC: &str = "/regional_metrics";

/// Tuning for the producer unit.
#[derive(Debug, Clone, Copy)]
pub struct ProducerConfig {
    /// How often the producer polls the registry.
    pub interval: Duration,
    /// Cases published per tick.
    pub batch: usize,
}

impl Default for ProducerConfig {
    fn default() -> ProducerConfig {
        ProducerConfig {
            interval: Duration::from_millis(25),
            batch: 50,
        }
    }
}

/// One joined case row read from the registry.
#[derive(Debug, Clone)]
struct CaseRow {
    patient_id: i64,
    patient_name: Option<String>,
    birth_year: i64,
    mdt: MdtInfo,
    site: String,
    stage: Option<String>,
    diagnosed: i64,
    treatment: Option<String>,
}

fn read_cases(registry: &Database, mdts: &[MdtInfo]) -> Vec<CaseRow> {
    let by_id: BTreeMap<i64, &MdtInfo> = mdts.iter().map(|m| (m.id, m)).collect();
    let mut cases = Vec::new();
    for patient in registry
        .select("patients", |_| true)
        .expect("patients table")
    {
        let patient_id = patient.int("id").expect("id");
        let mdt_id = patient.int("mdt_id").expect("mdt_id");
        let Some(mdt) = by_id.get(&mdt_id) else {
            continue;
        };
        let tumours = registry
            .select_eq("tumours", "patient_id", &CellValue::Int(patient_id))
            .expect("tumours table");
        let Some(tumour) = tumours.first() else {
            continue;
        };
        let tumour_id = tumour.int("id").expect("id");
        let treatment = registry
            .select_eq("treatments", "tumour_id", &CellValue::Int(tumour_id))
            .expect("treatments table")
            .first()
            .and_then(|t| t.text("kind").map(str::to_string));
        cases.push(CaseRow {
            patient_id,
            patient_name: patient.text("name").map(str::to_string),
            birth_year: patient.int("birth_year").expect("birth_year"),
            mdt: (*mdt).clone(),
            site: tumour.text("site").expect("site").to_string(),
            stage: tumour.text("stage").map(str::to_string),
            diagnosed: tumour.int("diagnosed").expect("diagnosed"),
            treatment,
        });
    }
    cases
}

/// Builds the data-producer unit: a privileged source that walks the
/// registry in batches and publishes three events per case (patient,
/// tumour, treatment), each labelled with the treating MDT's label.
///
/// "For the sake of simplicity, we use only MDT-level labels as these are
/// sufficient to satisfy our security requirements" (§5.1).
pub fn data_producer(registry: Database, mdts: Vec<MdtInfo>, config: ProducerConfig) -> UnitSpec {
    let cases = read_cases(&registry, &mdts);
    let mut cursor = 0usize;
    UnitSpec::new("data_producer").every(config.interval, move |jail| {
        // Privileged: reading the registry is I/O outside the jail.
        let _io = jail.io()?;
        let end = (cursor + config.batch).min(cases.len());
        for case in &cases[cursor..end] {
            let label = mdt_label(&case.mdt.name);
            let base = |kind: &str| -> Result<Event, UnitError> {
                Event::new(PATIENT_REPORT_TOPIC)
                    .map_err(|e| UnitError::BadEvent(e.to_string()))?
                    .set_attrs(&[
                        ("kind", kind),
                        ("type", "cancer"),
                        ("case_id", &case.patient_id.to_string()),
                        ("mdt", &case.mdt.name),
                        ("hospital_id", &case.mdt.hospital_id.to_string()),
                        ("region_id", &case.mdt.region_id.to_string()),
                        ("clinic", &case.mdt.clinic),
                    ])
            };
            let patient_payload = jobject! {
                "name" => case.patient_name.clone(),
                "birth_year" => case.birth_year,
            };
            jail.publish(
                base("patient")?.with_payload(patient_payload.to_json()),
                Relabel::keep().add(label.clone()),
            )?;
            let tumour_payload = jobject! {
                "site" => case.site.as_str(),
                "stage" => case.stage.clone(),
                "diagnosed" => case.diagnosed,
            };
            jail.publish(
                base("tumour")?.with_payload(tumour_payload.to_json()),
                Relabel::keep().add(label.clone()),
            )?;
            if let Some(kind) = &case.treatment {
                let treatment_payload = jobject! { "kind" => kind.as_str() };
                jail.publish(
                    base("treatment")?.with_payload(treatment_payload.to_json()),
                    Relabel::keep().add(label),
                )?;
            }
        }
        cursor = end;
        Ok(())
    })
}

/// Fault injection for the aggregator (§5.2 "design errors"): when `true`
/// the aggregator keys its case state **ignoring the originating MDT**, so
/// cases from different MDTs collide and merged records mix data — and
/// labels — of multiple MDTs.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggregatorConfig {
    /// Inject the E9 design error.
    pub mix_hospitals: bool,
}

/// Fields a complete record should carry; used for the completeness
/// metric (F2).
const RECORD_FIELDS: &[&str] = &[
    "name",
    "birth_year",
    "site",
    "stage",
    "diagnosed",
    "treatment",
];

/// Builds the data-aggregator unit: jailed application logic that combines
/// per-case events and maintains aggregate metrics. It never performs I/O;
/// everything goes through the jail's key-value store and publish.
pub fn data_aggregator(config: AggregatorConfig) -> UnitSpec {
    UnitSpec::new("data_aggregator").subscribe(
        PATIENT_REPORT_TOPIC,
        Some("type = 'cancer'"),
        move |jail, event| {
            let case_id = event
                .attr("case_id")
                .ok_or_else(|| UnitError::BadEvent("missing case_id".to_string()))?
                .to_string();
            let mdt = event.attr("mdt").unwrap_or("?").to_string();
            let hospital = event.attr("hospital_id").unwrap_or("?").to_string();
            let region = event.attr("region_id").unwrap_or("?").to_string();
            let kind = event.attr("kind").unwrap_or("?").to_string();
            let payload = event.payload().unwrap_or("{}");
            let piece = Value::parse(payload)
                .map_err(|e| UnitError::BadEvent(format!("bad payload: {e}")))?;

            // E9 injection point: the correct key includes the MDT of
            // origin; the buggy key collides across MDTs.
            let case_key = if config.mix_hospitals {
                let short: u64 = case_id.parse::<u64>().unwrap_or(0) % 7;
                format!("case/{short}")
            } else {
                format!("case/{mdt}/{case_id}")
            };

            // Fold this piece into the stored case (reading taints
            // $LABELS with everything previously folded in).
            let existing = jail.get(&case_key);
            let is_new_case = existing.is_none();
            let mut record = match existing {
                Some(json) => Value::parse(&json)
                    .map_err(|e| UnitError::Application(format!("corrupt case state: {e}")))?,
                None => jobject! {
                    "case_id" => case_id.as_str(),
                    "mdt_id" => mdt.as_str(),
                    "hospital_id" => hospital.as_str(),
                    "region_id" => region.as_str(),
                },
            };
            let old_completeness = record
                .get("completeness")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            if let Some(obj) = piece.as_object() {
                for (k, v) in obj {
                    if kind == "treatment" && k == "kind" {
                        record.set("treatment", v.clone());
                    } else {
                        record.set(k, v.clone());
                    }
                }
            }
            let filled = RECORD_FIELDS
                .iter()
                .filter(|f| record.get(f).is_some_and(|v| !v.is_null()))
                .count();
            let completeness = (filled as f64 / RECORD_FIELDS.len() as f64 * 100.0).round();
            record.set("completeness", completeness);
            jail.set(&case_key, record.to_json(), Relabel::keep())?;

            // Publish the (updated) aggregated record.
            let rec_event = Event::new(MDT_RECORD_TOPIC)
                .map_err(|e| UnitError::BadEvent(e.to_string()))?
                .set_attrs(&[("case_id", &case_id), ("mdt", &mdt), ("region_id", &region)])?
                .with_payload(record.to_json());
            jail.publish(rec_event, Relabel::keep())?;

            // Update per-MDT aggregates (keyed by MDT, carrying the MDT
            // label via the store) and republish metrics relabelled for
            // same-region consumption: remove the patient-carrying MDT
            // label (declassification granted by policy to this trusted
            // component, §3.1) and add the region aggregate label.
            let stats_key = format!("stats/mdt/{mdt}");
            let mut stats = match jail.get(&stats_key) {
                Some(json) => Value::parse(&json)
                    .map_err(|e| UnitError::Application(format!("corrupt stats: {e}")))?,
                None => jobject! {"cases" => 0, "completeness_sum" => 0.0},
            };
            // Distinct-case accounting: new cases extend the count, updates
            // to known cases adjust the running completeness sum.
            let cases = stats.get("cases").and_then(Value::as_i64).unwrap_or(0)
                + if is_new_case { 1 } else { 0 };
            let sum = stats
                .get("completeness_sum")
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
                + completeness
                - old_completeness;
            stats.set("cases", cases);
            stats.set("completeness_sum", sum);
            jail.set(&stats_key, stats.to_json(), Relabel::keep())?;

            let avg = (sum / cases as f64).round();
            let metrics = jobject! {
                "kind" => "mdt_metrics",
                "mdt_id" => mdt.as_str(),
                "region_id" => region.as_str(),
                "cases" => cases,
                "avg_completeness" => avg,
            };
            let region_id: i64 = region.parse().unwrap_or(-1);
            let metrics_event = Event::new(MDT_METRICS_TOPIC)
                .map_err(|e| UnitError::BadEvent(e.to_string()))?
                .set_attrs(&[("mdt", &mdt), ("region_id", &region)])?
                .with_payload(metrics.to_json());
            jail.publish(
                metrics_event,
                Relabel::keep()
                    .remove(mdt_label(&mdt))
                    .add(region_aggregate_label(region_id)),
            )?;

            // Regional aggregates: visible to every MDT (P1), so remove
            // everything and attach only the regional label.
            let region_key = format!("stats/region/{region}");
            let mut rstats = match jail.get(&region_key) {
                Some(json) => Value::parse(&json)
                    .map_err(|e| UnitError::Application(format!("corrupt region stats: {e}")))?,
                None => jobject! {"cases" => 0, "completeness_sum" => 0.0},
            };
            let rcases = rstats.get("cases").and_then(Value::as_i64).unwrap_or(0)
                + if is_new_case { 1 } else { 0 };
            let rsum = rstats
                .get("completeness_sum")
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
                + completeness
                - old_completeness;
            rstats.set("cases", rcases);
            rstats.set("completeness_sum", rsum);
            jail.set(&region_key, rstats.to_json(), Relabel::keep())?;

            let regional = jobject! {
                "kind" => "regional_metrics",
                "region_id" => region.as_str(),
                "cases" => rcases,
                "avg_completeness" => (rsum / rcases as f64).round(),
            };
            let regional_event = Event::new(REGIONAL_METRICS_TOPIC)
                .map_err(|e| UnitError::BadEvent(e.to_string()))?
                .set_attrs(&[("region_id", &region)])?
                .with_payload(regional.to_json());
            jail.publish(
                regional_event,
                Relabel::keep().remove_all().add(regional_label()),
            )?;
            Ok(())
        },
    )
}

/// Builds the data-storage unit: privileged persistence that writes
/// records and metrics — **with their labels** — into the application
/// database ("a data storage unit, which has declassification privileges
/// for all MDTs, handles data persistence", §5.1).
pub fn data_storage(app_db: DocStore) -> UnitSpec {
    let records_db = app_db.clone();
    let metrics_db = app_db.clone();
    let regional_db = app_db;
    UnitSpec::new("data_storage")
        .subscribe(MDT_RECORD_TOPIC, None, move |jail, event| {
            let _io = jail.io()?;
            store_event(&records_db, *jail.labels(), event, |e| {
                format!(
                    "record-{}-{}",
                    e.attr("mdt").unwrap_or("x"),
                    e.attr("case_id").unwrap_or("0")
                )
            })
        })
        .subscribe(MDT_METRICS_TOPIC, None, move |jail, event| {
            let _io = jail.io()?;
            store_event(&metrics_db, *jail.labels(), event, |e| {
                format!("metrics-{}", e.attr("mdt").unwrap_or("x"))
            })
        })
        .subscribe(REGIONAL_METRICS_TOPIC, None, move |jail, event| {
            let _io = jail.io()?;
            store_event(&regional_db, *jail.labels(), event, |e| {
                format!("regional-{}", e.attr("region_id").unwrap_or("x"))
            })
        })
}

fn store_event(
    db: &DocStore,
    labels: LabelSet,
    event: &Event,
    id_of: impl Fn(&Event) -> String,
) -> Result<(), UnitError> {
    let body = Value::parse(event.payload().unwrap_or("{}"))
        .map_err(|e| UnitError::BadEvent(format!("bad payload: {e}")))?;
    let id = id_of(event);
    // Upsert: fetch the current revision if the document exists.
    let rev = db.get(&id).map(|d| d.rev().clone());
    db.put(&id, body, labels, rev.as_ref())
        .map_err(|e| UnitError::Application(format!("store failed: {e}")))?;
    Ok(())
}

/// Convenience extension used by the units above.
trait EventExt: Sized {
    fn set_attrs(self, attrs: &[(&str, &str)]) -> Result<Self, UnitError>;
}

impl EventExt for Event {
    fn set_attrs(mut self, attrs: &[(&str, &str)]) -> Result<Event, UnitError> {
        for (k, v) in attrs {
            self.set_attr(k, v)
                .map_err(|e| UnitError::BadEvent(e.to_string()))?;
        }
        Ok(self)
    }
}
