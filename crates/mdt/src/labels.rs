//! The MDT application's label vocabulary (§3.1, §4.1).
//!
//! Three kinds of confidentiality labels implement policy **P1**:
//!
//! * per-MDT labels protect patient-level records ("details about patients
//!   can be consulted only by members of the MDT that treats them");
//! * per-region aggregate labels protect MDT-level aggregates ("MDT-level
//!   aggregates can be consulted by all MDTs in the same region");
//! * one regional-aggregates label protects region-level aggregates
//!   ("regional-level aggregates can be seen by all MDTs").

use safeweb_labels::{Label, Privilege, PrivilegeSet};

/// The label authority for the whole application.
pub const AUTHORITY: &str = "ecric.org.uk";

/// The confidentiality label protecting one MDT's patient-level data
/// (`label:conf:ecric.org.uk/mdt/<name>`). The paper's deployment labels
/// at MDT granularity: "we use only MDT-level labels as these are
/// sufficient to satisfy our security requirements" (§5.1).
pub fn mdt_label(mdt_name: &str) -> Label {
    Label::conf(AUTHORITY, &format!("mdt/{mdt_name}"))
}

/// The label protecting a single patient's data
/// (`label:conf:ecric.org.uk/patient/<id>`), used by the finer-grained
/// variants of the pipeline and the quickstart example.
pub fn patient_label(patient_id: i64) -> Label {
    Label::conf(AUTHORITY, &format!("patient/{patient_id}"))
}

/// The label protecting MDT-level aggregates of one region
/// (`label:conf:ecric.org.uk/region/<id>/mdt-aggregates`).
pub fn region_aggregate_label(region_id: i64) -> Label {
    Label::conf(AUTHORITY, &format!("region/{region_id}/mdt-aggregates"))
}

/// The label protecting regional-level aggregates, visible to every MDT
/// (`label:conf:ecric.org.uk/aggregates/regional`).
pub fn regional_label() -> Label {
    Label::conf(AUTHORITY, "aggregates/regional")
}

/// The integrity label endorsing data produced inside the MDT application
/// (`label:int:ecric.org.uk/mdt`).
pub fn mdt_integrity_label() -> Label {
    Label::int(AUTHORITY, "mdt")
}

/// The privilege set policy P1 grants a member of `mdt_name` in
/// `region_id`: clearance on their MDT's data, on their region's MDT-level
/// aggregates, and on regional aggregates.
pub fn mdt_user_privileges(mdt_name: &str, region_id: i64) -> PrivilegeSet {
    let mut privs = PrivilegeSet::new();
    privs.grant(Privilege::clearance(mdt_label(mdt_name)));
    privs.grant(Privilege::clearance(region_aggregate_label(region_id)));
    privs.grant(Privilege::clearance(regional_label()));
    privs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_uris() {
        assert_eq!(
            mdt_label("addenbrookes").to_string(),
            "label:conf:ecric.org.uk/mdt/addenbrookes"
        );
        assert_eq!(
            patient_label(33812769).to_string(),
            "label:conf:ecric.org.uk/patient/33812769"
        );
        assert_eq!(
            region_aggregate_label(1).to_string(),
            "label:conf:ecric.org.uk/region/1/mdt-aggregates"
        );
        assert_eq!(
            regional_label().to_string(),
            "label:conf:ecric.org.uk/aggregates/regional"
        );
        assert_eq!(
            mdt_integrity_label().to_string(),
            "label:int:ecric.org.uk/mdt"
        );
    }

    #[test]
    fn p1_privilege_matrix() {
        let a = mdt_user_privileges("mdt-a", 0);
        // Own MDT data: yes. Other MDT data: no.
        assert!(a.has_clearance(&mdt_label("mdt-a")));
        assert!(!a.has_clearance(&mdt_label("mdt-b")));
        // Same-region aggregates: yes. Other region: no.
        assert!(a.has_clearance(&region_aggregate_label(0)));
        assert!(!a.has_clearance(&region_aggregate_label(1)));
        // Regional aggregates: yes, for everyone.
        assert!(a.has_clearance(&regional_label()));
        // No declassification anywhere.
        assert!(!a.can_declassify(&mdt_label("mdt-a")));
    }
}
