//! # safeweb-mdt
//!
//! The **MDT web portal** — the real-world application the SafeWeb paper
//! builds and evaluates (§2.1, §5.1): a portal giving hospital
//! Multidisciplinary Teams (MDTs) access to the cancer-registry data of
//! the patients they treat, with ECRIC's security policy **P1** enforced
//! end-to-end by the SafeWeb middleware:
//!
//! > Details about patients can be consulted only by members of the MDT
//! > that treats them. MDT-level aggregates can be consulted by all MDTs
//! > in the same region. Regional-level aggregates can be seen by all
//! > MDTs.
//!
//! Contents:
//!
//! * [`registry`] — a synthetic ECRIC cancer registry (schema +
//!   deterministic generator);
//! * [`labels`] — the application's label vocabulary and P1 privilege
//!   assignment;
//! * [`units`] — the data-producer / data-aggregator / data-storage units
//!   of Figure 4;
//! * [`MdtPortal`] — builds the full deployment (registry → events →
//!   application DB → DMZ replica → web frontend);
//! * [`vuln`] — the §5.2 security study: four injected CVE-style bug
//!   classes, each shown to be contained by SafeWeb.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod labels;
mod portal;
pub mod registry;
pub mod units;
pub mod vuln;

pub use portal::{mdt_policy, password_for, MdtPortal, PortalConfig};
pub use vuln::{run_experiment, run_security_study, StudyResult, VulnClass, VulnConfig};
