//! A synthetic ECRIC cancer registry (DESIGN.md §5: the real registry is
//! NHS-confidential, so the reproduction generates a registry with the
//! same schema and the cardinalities the MDT portal exercises — regions,
//! hospitals, MDTs, patients, tumours and treatments).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use safeweb_relstore::{CellValue, ColumnDef, ColumnType, Database, Schema};

/// Sizing and seeding of the synthetic registry.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Number of regions (the paper's deployment covers the East of
    /// England — one region — but the portal compares across regions).
    pub regions: usize,
    /// Hospitals per region.
    pub hospitals_per_region: usize,
    /// MDTs per hospital.
    pub mdts_per_hospital: usize,
    /// Patients per MDT.
    pub patients_per_mdt: usize,
    /// RNG seed for reproducible data.
    pub seed: u64,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        RegistryConfig {
            regions: 2,
            hospitals_per_region: 3,
            mdts_per_hospital: 2,
            patients_per_mdt: 25,
            seed: 0x05af_e3eb,
        }
    }
}

impl RegistryConfig {
    /// A registry sized to at least `tenants` MDTs, each of which gets its
    /// own distinct clearance (see `safeweb_mdt::mdt_user_privileges`).
    ///
    /// This is the scale knob the lattice benches turn: with interned label
    /// sets, thousands of per-tenant policies intern thousands of distinct
    /// privilege sets, and `flows_to` must stay flat across all of them.
    /// The shape is fixed at 8 hospitals × 4 MDTs per region so the portal's
    /// cross-region comparison pages stay meaningful at every size.
    pub fn with_tenants(tenants: usize, patients_per_mdt: usize, seed: u64) -> RegistryConfig {
        let per_region = 8 * 4;
        RegistryConfig {
            regions: tenants.div_ceil(per_region).max(1),
            hospitals_per_region: 8,
            mdts_per_hospital: 4,
            patients_per_mdt,
            seed,
        }
    }

    /// The exact number of MDT tenants this configuration generates.
    pub fn tenant_count(&self) -> usize {
        self.regions * self.hospitals_per_region * self.mdts_per_hospital
    }
}

const CANCER_SITES: &[&str] = &[
    "breast",
    "lung",
    "colorectal",
    "prostate",
    "ovary",
    "melanoma",
    "lymphoma",
];
const TREATMENTS: &[&str] = &[
    "surgery",
    "chemotherapy",
    "radiotherapy",
    "hormone",
    "watchful",
];
const STAGES: &[&str] = &["I", "II", "III", "IV"];

/// Builds the registry database (tables: `regions`, `hospitals`, `mdts`,
/// `patients`, `tumours`, `treatments`).
pub fn generate(config: &RegistryConfig) -> Database {
    let db = Database::new("ecric-registry");
    create_schema(&db);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut mdt_id = 0i64;
    let mut patient_id = 0i64;
    let mut tumour_id = 0i64;
    let mut treatment_id = 0i64;
    let mut hospital_id = 0i64;

    for region in 0..config.regions {
        let region_name = format!("region-{region}");
        db.insert(
            "regions",
            vec![(region as i64).into(), region_name.clone().into()],
        )
        .expect("fresh region id");
        for h in 0..config.hospitals_per_region {
            hospital_id += 1;
            let hospital_name = format!("hospital-{region}-{h}");
            db.insert(
                "hospitals",
                vec![
                    hospital_id.into(),
                    hospital_name.clone().into(),
                    (region as i64).into(),
                ],
            )
            .expect("fresh hospital id");
            for m in 0..config.mdts_per_hospital {
                mdt_id += 1;
                let mdt_name = format!("mdt-{region}-{h}-{m}");
                // Deterministic clinic assignment: MDTs at the same
                // hospital treat different cancer sites, which the §5.2
                // "inappropriate access checks" experiment depends on.
                let clinic = CANCER_SITES[(mdt_id as usize - 1) % CANCER_SITES.len()];
                db.insert(
                    "mdts",
                    vec![
                        mdt_id.into(),
                        mdt_name.clone().into(),
                        hospital_id.into(),
                        (region as i64).into(),
                        clinic.into(),
                    ],
                )
                .expect("fresh mdt id");
                for _ in 0..config.patients_per_mdt {
                    patient_id += 1;
                    let birth_year = rng.gen_range(1930..1990) as i64;
                    // A minority of records have missing fields, giving the
                    // completeness metric something to measure (F2).
                    let name: CellValue = if rng.gen_bool(0.9) {
                        format!("patient-{patient_id}").into()
                    } else {
                        CellValue::Null
                    };
                    db.insert(
                        "patients",
                        vec![
                            patient_id.into(),
                            name,
                            birth_year.into(),
                            mdt_id.into(),
                            hospital_id.into(),
                        ],
                    )
                    .expect("fresh patient id");

                    tumour_id += 1;
                    let site = clinic;
                    let stage: CellValue = if rng.gen_bool(0.85) {
                        STAGES[rng.gen_range(0..STAGES.len())].into()
                    } else {
                        CellValue::Null
                    };
                    db.insert(
                        "tumours",
                        vec![
                            tumour_id.into(),
                            patient_id.into(),
                            site.into(),
                            stage,
                            (2000 + rng.gen_range(0..11) as i64).into(),
                        ],
                    )
                    .expect("fresh tumour id");

                    if rng.gen_bool(0.8) {
                        treatment_id += 1;
                        let kind = TREATMENTS[rng.gen_range(0..TREATMENTS.len())];
                        db.insert(
                            "treatments",
                            vec![
                                treatment_id.into(),
                                tumour_id.into(),
                                kind.into(),
                                (2000 + rng.gen_range(0..11) as i64).into(),
                            ],
                        )
                        .expect("fresh treatment id");
                    }
                }
            }
        }
    }
    db
}

fn create_schema(db: &Database) {
    db.create_table(
        "regions",
        Schema::new(
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Text),
            ],
            "id",
        ),
    )
    .expect("fresh db");
    db.create_table(
        "hospitals",
        Schema::new(
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Text),
                ColumnDef::new("region_id", ColumnType::Int),
            ],
            "id",
        ),
    )
    .expect("fresh db");
    db.create_table(
        "mdts",
        Schema::new(
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Text),
                ColumnDef::new("hospital_id", ColumnType::Int),
                ColumnDef::new("region_id", ColumnType::Int),
                ColumnDef::new("clinic", ColumnType::Text),
            ],
            "id",
        ),
    )
    .expect("fresh db");
    db.create_table(
        "patients",
        Schema::new(
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::nullable("name", ColumnType::Text),
                ColumnDef::new("birth_year", ColumnType::Int),
                ColumnDef::new("mdt_id", ColumnType::Int),
                ColumnDef::new("hospital_id", ColumnType::Int),
            ],
            "id",
        ),
    )
    .expect("fresh db");
    db.create_table(
        "tumours",
        Schema::new(
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("patient_id", ColumnType::Int),
                ColumnDef::new("site", ColumnType::Text),
                ColumnDef::nullable("stage", ColumnType::Text),
                ColumnDef::new("diagnosed", ColumnType::Int),
            ],
            "id",
        ),
    )
    .expect("fresh db");
    db.create_table(
        "treatments",
        Schema::new(
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("tumour_id", ColumnType::Int),
                ColumnDef::new("kind", ColumnType::Text),
                ColumnDef::new("started", ColumnType::Int),
            ],
            "id",
        ),
    )
    .expect("fresh db");
}

/// Metadata about one MDT, read back from the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdtInfo {
    /// Registry id.
    pub id: i64,
    /// Name, e.g. `mdt-0-1-0`.
    pub name: String,
    /// Owning hospital id.
    pub hospital_id: i64,
    /// Owning region id.
    pub region_id: i64,
    /// The clinic (cancer site) the MDT treats.
    pub clinic: String,
}

/// Lists every MDT in the registry.
pub fn list_mdts(db: &Database) -> Vec<MdtInfo> {
    db.select("mdts", |_| true)
        .expect("mdts table exists")
        .into_iter()
        .map(|row| MdtInfo {
            id: row.int("id").expect("id"),
            name: row.text("name").expect("name").to_string(),
            hospital_id: row.int("hospital_id").expect("hospital_id"),
            region_id: row.int("region_id").expect("region_id"),
            clinic: row.text("clinic").expect("clinic").to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_cardinalities() {
        let config = RegistryConfig {
            regions: 2,
            hospitals_per_region: 2,
            mdts_per_hospital: 2,
            patients_per_mdt: 5,
            seed: 42,
        };
        let db = generate(&config);
        assert_eq!(db.count("regions").unwrap(), 2);
        assert_eq!(db.count("hospitals").unwrap(), 4);
        assert_eq!(db.count("mdts").unwrap(), 8);
        assert_eq!(db.count("patients").unwrap(), 40);
        assert_eq!(db.count("tumours").unwrap(), 40);
        assert!(db.count("treatments").unwrap() <= 40);
    }

    #[test]
    fn tenant_scaling_reaches_the_target() {
        let config = RegistryConfig::with_tenants(1000, 1, 7);
        assert!(config.tenant_count() >= 1000);
        let db = generate(&config);
        assert_eq!(db.count("mdts").unwrap(), config.tenant_count());
        // Every tenant name is distinct — each one becomes a distinct
        // clearance, i.e. a distinct interned privilege set.
        let mdts = list_mdts(&db);
        let mut names: Vec<&str> = mdts.iter().map(|m| m.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), config.tenant_count());
    }

    #[test]
    fn generation_is_deterministic() {
        let config = RegistryConfig::default();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(
            a.count("treatments").unwrap(),
            b.count("treatments").unwrap()
        );
        let pa = a.select("patients", |_| true).unwrap();
        let pb = b.select("patients", |_| true).unwrap();
        assert_eq!(pa.len(), pb.len());
        for (x, y) in pa.iter().zip(&pb) {
            assert_eq!(x.cells(), y.cells());
        }
    }

    #[test]
    fn mdts_listable() {
        let db = generate(&RegistryConfig::default());
        let mdts = list_mdts(&db);
        assert_eq!(mdts.len(), 12);
        assert!(mdts
            .iter()
            .all(|m| !m.name.is_empty() && !m.clinic.is_empty()));
        // Names are unique.
        let mut names: Vec<&str> = mdts.iter().map(|m| m.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }
}
