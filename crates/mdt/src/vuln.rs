//! The §5.2 security study: inject the four CVE-derived vulnerability
//! classes into the MDT portal and verify that SafeWeb prevents the
//! disclosure each would otherwise cause.
//!
//! Each experiment runs three configurations:
//!
//! 1. **baseline** — the correct portal (expected: application check
//!    denies the attacker, 403);
//! 2. **protected** — the bug injected, SafeWeb enforcing (expected:
//!    the label check aborts the response, still no disclosure);
//! 3. **unprotected** — the bug injected *and* the label check disabled
//!    (expected: real disclosure — demonstrating that the bug is genuine
//!    and SafeWeb was the only thing standing).

use std::fmt;
use std::time::Duration;

use safeweb_http::{Method, Request};
use safeweb_relstore::CellValue;
use safeweb_web::SafeWebApp;

use crate::labels::mdt_user_privileges;
use crate::portal::{password_for, MdtPortal, PortalConfig};
use crate::registry::RegistryConfig;

/// Which implementation bugs to inject (all `false` = correct portal).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VulnConfig {
    /// E6 *Omitted access checks* (cf. CVE-2011-0701, CVE-2010-2353,
    /// CVE-2010-0752): remove the `check_privileges` call from the records
    /// routes (Listing 2 line 5).
    pub omitted_access_check: bool,
    /// E7 *Errors in access checks* (cf. CVE-2011-0449, CVE-2010-3092,
    /// CVE-2010-4403): the user lookup in `check_privileges` ignores
    /// username case, so `MDT1` inherits `mdt1`'s membership.
    pub case_insensitive_lookup: bool,
    /// E8 *Inappropriate access checks* (cf. CVE-2010-4775,
    /// CVE-2009-2431): the check drops the clinic-equality condition
    /// (Listing 3 line 7), letting any MDT of the same hospital through.
    pub inappropriate_check: bool,
    /// E9 *Design errors* (cf. CVE-2011-0899, CVE-2010-3933): the
    /// aggregator ignores the MDT of origin when matching case events,
    /// producing records that mix data of different MDTs.
    pub aggregator_mixes_hospitals: bool,
}

/// The four §5.2 vulnerability classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VulnClass {
    /// E6.
    OmittedAccessCheck,
    /// E7.
    ErrorInAccessCheck,
    /// E8.
    InappropriateAccessCheck,
    /// E9.
    DesignError,
}

impl VulnClass {
    /// All four classes, in paper order.
    pub fn all() -> [VulnClass; 4] {
        [
            VulnClass::OmittedAccessCheck,
            VulnClass::ErrorInAccessCheck,
            VulnClass::InappropriateAccessCheck,
            VulnClass::DesignError,
        ]
    }

    /// The matching injection config.
    pub fn config(self) -> VulnConfig {
        match self {
            VulnClass::OmittedAccessCheck => VulnConfig {
                omitted_access_check: true,
                ..VulnConfig::default()
            },
            VulnClass::ErrorInAccessCheck => VulnConfig {
                case_insensitive_lookup: true,
                ..VulnConfig::default()
            },
            VulnClass::InappropriateAccessCheck => VulnConfig {
                inappropriate_check: true,
                ..VulnConfig::default()
            },
            VulnClass::DesignError => VulnConfig {
                aggregator_mixes_hospitals: true,
                ..VulnConfig::default()
            },
        }
    }

    /// The paper's name for the class.
    pub fn title(self) -> &'static str {
        match self {
            VulnClass::OmittedAccessCheck => "Omitted Access Checks",
            VulnClass::ErrorInAccessCheck => "Errors in Access Checks",
            VulnClass::InappropriateAccessCheck => "Inappropriate Access Checks",
            VulnClass::DesignError => "Design Errors",
        }
    }

    /// Representative CVE identifiers cited by the paper.
    pub fn cves(self) -> &'static [&'static str] {
        match self {
            VulnClass::OmittedAccessCheck => &["CVE-2011-0701", "CVE-2010-2353", "CVE-2010-0752"],
            VulnClass::ErrorInAccessCheck => &["CVE-2011-0449", "CVE-2010-3092", "CVE-2010-4403"],
            VulnClass::InappropriateAccessCheck => &["CVE-2010-4775", "CVE-2009-2431"],
            VulnClass::DesignError => &["CVE-2011-0899", "CVE-2010-3933"],
        }
    }
}

impl fmt::Display for VulnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

/// Outcome of one injection experiment.
#[derive(Debug, Clone)]
pub struct StudyResult {
    /// The injected class.
    pub class: VulnClass,
    /// HTTP status without the vulnerability (baseline).
    pub baseline_status: u16,
    /// HTTP status with the bug injected and SafeWeb enforcing
    /// (≠200 = contained).
    pub protected_status: u16,
    /// HTTP status with the bug injected and the label check disabled.
    pub unprotected_status: u16,
    /// Whether the unprotected response actually disclosed another MDT's
    /// patient data (proves the bug is real).
    pub unprotected_leaked: bool,
}

impl StudyResult {
    /// SafeWeb contains the bug iff the protected run denies the response
    /// while the unprotected run demonstrates a real leak.
    pub fn contained(&self) -> bool {
        self.protected_status != 200 && self.unprotected_leaked
    }
}

/// A small registry so study runs stay fast: one hospital with two MDTs
/// (the E8 precondition) treating different clinics.
fn study_registry() -> RegistryConfig {
    RegistryConfig {
        regions: 1,
        hospitals_per_region: 1,
        mdts_per_hospital: 2,
        patients_per_mdt: 6,
        seed: 7,
    }
}

fn study_portal(vuln: VulnConfig, label_checking: bool) -> (MdtPortal, SafeWebApp) {
    let portal = MdtPortal::build(PortalConfig {
        registry: study_registry(),
        vuln,
        auth_iterations: 1_000, // keep the study fast
        replication_interval: Duration::from_millis(20),
        ..PortalConfig::default()
    });
    portal.wait_for_pipeline(Duration::from_secs(30));
    let mut app = portal.frontend(&vuln);
    if !label_checking {
        app = app.with_options(safeweb_web::FrontendOptions {
            label_checking: false,
            ..Default::default()
        });
    }
    (portal, app)
}

/// `victim`'s records requested with `attacker`'s credentials.
fn probe(app: &SafeWebApp, attacker: &str, password: &str, victim_mdt: &str) -> (u16, String) {
    let req = Request::new(Method::Get, &format!("/records/{victim_mdt}"))
        .with_basic_auth(attacker, password);
    let resp = app.handle(&req);
    (
        resp.status(),
        resp.body_str().unwrap_or_default().to_string(),
    )
}

/// Patient names treated by `mdt_id`, used as the disclosure oracle.
fn patient_names_of(portal: &MdtPortal, mdt_id: i64) -> Vec<String> {
    portal
        .registry()
        .select_eq("patients", "mdt_id", &CellValue::Int(mdt_id))
        .expect("patients table")
        .into_iter()
        .filter_map(|row| row.text("name").map(str::to_string))
        .collect()
}

fn leaked_any(body: &str, names: &[String]) -> bool {
    names.iter().any(|n| body.contains(n.as_str()))
}

/// Credentials the attacker uses; for E7 this provisions the paper's
/// `mdt1`/`MDT1` colliding pair in the fresh portal instance.
fn experiment_credentials(portal: &MdtPortal, class: VulnClass) -> (String, String) {
    let mdts = portal.mdts();
    let victim = &mdts[0];
    let attacker = &mdts[1];
    match class {
        VulnClass::ErrorInAccessCheck => {
            // A distinct account whose name is the upper-cased victim name
            // and whose *real* privileges are the attacker's. The buggy
            // case-insensitive membership lookup will hand it the victim's
            // membership rows, but the trusted privilege fetch still
            // returns the attacker's privileges — which is exactly the
            // privilege-sharing bug the paper injects.
            let twisted = victim.name.to_ascii_uppercase();
            let password = password_for(&twisted);
            portal
                .deployment()
                .users()
                .create_user(
                    &twisted,
                    &password,
                    &mdt_user_privileges(&attacker.name, attacker.region_id),
                    false,
                )
                .expect("twisted account is fresh");
            (twisted, password)
        }
        _ => (attacker.name.clone(), password_for(&attacker.name)),
    }
}

/// Runs the full study for one class.
pub fn run_experiment(class: VulnClass) -> StudyResult {
    match class {
        VulnClass::OmittedAccessCheck
        | VulnClass::ErrorInAccessCheck
        | VulnClass::InappropriateAccessCheck => run_frontend_experiment(class),
        VulnClass::DesignError => run_design_error_experiment(),
    }
}

fn run_frontend_experiment(class: VulnClass) -> StudyResult {
    // Baseline: correct portal; the attacker MDT asks for the victim's
    // records and the application check denies.
    let (portal, app) = study_portal(VulnConfig::default(), true);
    let victim = portal.mdts()[0].name.clone();
    let (attacker, password) = experiment_credentials(&portal, class);
    let (baseline_status, baseline_body) = probe(&app, &attacker, &password, &victim);
    let victim_names = patient_names_of(&portal, portal.mdts()[0].id);
    assert!(
        !leaked_any(&baseline_body, &victim_names),
        "baseline leaked: {baseline_body}"
    );
    drop(app);
    drop(portal);

    let vuln = class.config();

    // Protected: bug present, SafeWeb enforcing.
    let (portal, app) = study_portal(vuln, true);
    let victim = portal.mdts()[0].name.clone();
    let victim_names = patient_names_of(&portal, portal.mdts()[0].id);
    let (attacker, password) = experiment_credentials(&portal, class);
    let (protected_status, protected_body) = probe(&app, &attacker, &password, &victim);
    assert!(
        !leaked_any(&protected_body, &victim_names),
        "{class}: protected run leaked data: {protected_body}"
    );
    drop(app);
    drop(portal);

    // Unprotected: bug present, label check off — the leak manifests.
    let (portal, app) = study_portal(vuln, false);
    let victim = portal.mdts()[0].name.clone();
    let victim_names = patient_names_of(&portal, portal.mdts()[0].id);
    let (attacker, password) = experiment_credentials(&portal, class);
    let (unprotected_status, unprotected_body) = probe(&app, &attacker, &password, &victim);
    let unprotected_leaked = leaked_any(&unprotected_body, &victim_names);

    StudyResult {
        class,
        baseline_status,
        protected_status,
        unprotected_status,
        unprotected_leaked,
    }
}

fn run_design_error_experiment() -> StudyResult {
    // Baseline: correct aggregator; a member of MDT A reads their own
    // records — allowed, and no foreign patient appears.
    let (portal, app) = study_portal(VulnConfig::default(), true);
    let own = portal.mdts()[0].name.clone();
    let password = password_for(&own);
    let foreign_names = patient_names_of(&portal, portal.mdts()[1].id);
    let (baseline_status, baseline_body) = probe(&app, &own, &password, &own);
    assert_eq!(baseline_status, 200, "member must see own records");
    assert!(
        !leaked_any(&baseline_body, &foreign_names),
        "correct aggregator mixed records: {baseline_body}"
    );
    drop(app);
    drop(portal);

    let vuln = VulnClass::DesignError.config();

    // Protected: records now mix MDTs, so they carry both MDT labels and
    // "access is prevented because no MDT has the necessary privileges".
    let (portal, app) = study_portal(vuln, true);
    let own = portal.mdts()[0].name.clone();
    let password = password_for(&own);
    let foreign_names = patient_names_of(&portal, portal.mdts()[1].id);
    let (protected_status, protected_body) = probe(&app, &own, &password, &own);
    assert!(
        !leaked_any(&protected_body, &foreign_names),
        "protected run exposed mixed records: {protected_body}"
    );
    drop(app);
    drop(portal);

    // Unprotected: the mixed records are served, leaking foreign patients
    // into this MDT's view.
    let (portal, app) = study_portal(vuln, false);
    let own = portal.mdts()[0].name.clone();
    let password = password_for(&own);
    let foreign_names = patient_names_of(&portal, portal.mdts()[1].id);
    let (unprotected_status, unprotected_body) = probe(&app, &own, &password, &own);
    let unprotected_leaked = leaked_any(&unprotected_body, &foreign_names);

    StudyResult {
        class: VulnClass::DesignError,
        baseline_status,
        protected_status,
        unprotected_status,
        unprotected_leaked,
    }
}

/// Runs all four experiments (E6–E9).
pub fn run_security_study() -> Vec<StudyResult> {
    VulnClass::all().into_iter().map(run_experiment).collect()
}
