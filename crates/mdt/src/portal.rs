//! The MDT web portal: routes, templates and the end-to-end builder that
//! stands up the full Figure 4 deployment (registry → units → application
//! database → DMZ replica → enforcing web frontend).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use safeweb_core::{SafeWebBuilder, SafeWebDeployment};
use safeweb_engine::{EngineOptions, ExecutionMode};
use safeweb_labels::Policy;
use safeweb_relstore::{ColumnDef, ColumnType, Database, Schema};
use safeweb_taint::{SStr, SValue};
use safeweb_web::{
    AuthConfig, Ctx, FrontendOptions, SResponse, SafeWebApp, TContext, TValue, Template,
};

use crate::labels::mdt_user_privileges;
use crate::registry::{self, MdtInfo, RegistryConfig};
use crate::units::{
    data_aggregator, data_producer, data_storage, AggregatorConfig, ProducerConfig,
};
use crate::vuln::VulnConfig;

/// Password convention for generated MDT users (tests and examples).
pub fn password_for(mdt_name: &str) -> String {
    format!("pw-{mdt_name}")
}

/// Portal-wide configuration.
#[derive(Debug, Clone)]
pub struct PortalConfig {
    /// Synthetic registry sizing.
    pub registry: RegistryConfig,
    /// Producer batching.
    pub producer: ProducerConfig,
    /// Injected vulnerabilities (§5.2); all off by default.
    pub vuln: VulnConfig,
    /// Password-hash cost (lower it in tests).
    pub auth_iterations: u32,
    /// Intranet→DMZ replication period.
    pub replication_interval: Duration,
    /// When `false`, runs the paper's no-tracking baseline (§5.3 only).
    pub label_tracking: bool,
    /// Unit execution model: the shared scheduler worker pool by
    /// default; [`ExecutionMode::Threaded`] is the bench baseline.
    pub execution: ExecutionMode,
    /// When set, the application database and DMZ replica run durable
    /// (WAL + snapshots under this directory) and replication resumes
    /// from the replica's recovered checkpoint across restarts.
    pub data_dir: Option<PathBuf>,
}

impl Default for PortalConfig {
    fn default() -> PortalConfig {
        PortalConfig {
            registry: RegistryConfig::default(),
            producer: ProducerConfig::default(),
            vuln: VulnConfig::default(),
            auth_iterations: AuthConfig::default().hash_iterations,
            replication_interval: Duration::from_millis(50),
            label_tracking: true,
            execution: ExecutionMode::default(),
            data_dir: None,
        }
    }
}

/// The policy file of the MDT application (§4.1): generated from the MDT
/// list, it is part of the audited TCB.
pub fn mdt_policy(mdts: &[MdtInfo]) -> Policy {
    let mut text = String::new();
    text.push_str(
        "unit data_producer {\n    privileged\n}\n\
         unit data_aggregator {\n    clearance label:conf:ecric.org.uk/mdt/*\n    declassify label:conf:ecric.org.uk/mdt/*\n}\n\
         unit data_storage {\n    privileged\n    clearance label:conf:ecric.org.uk/*\n}\n",
    );
    let _ = mdts; // privileges are wildcard-based; users are per-MDT in the web DB
    text.parse().expect("generated policy is well-formed")
}

/// A running MDT portal.
pub struct MdtPortal {
    deployment: SafeWebDeployment,
    registry_db: Database,
    mdts: Vec<MdtInfo>,
    expected_records: usize,
}

impl MdtPortal {
    /// Builds and starts the full pipeline.
    pub fn build(config: PortalConfig) -> MdtPortal {
        let registry_db = registry::generate(&config.registry);
        let mdts = registry::list_mdts(&registry_db);
        let expected_records = registry_db.count("patients").expect("patients table");

        let mut builder = SafeWebBuilder::new();
        if let Some(dir) = &config.data_dir {
            builder = builder.data_dir(dir.clone());
        }
        let deployment = builder
            .policy(mdt_policy(&mdts))
            .replication_interval(config.replication_interval)
            .auth_config(AuthConfig {
                hash_iterations: config.auth_iterations,
            })
            .engine_options(EngineOptions {
                label_tracking: config.label_tracking,
                execution: config.execution.clone(),
            })
            .app_view("by_mid", "mdt_id")
            .app_view("by_kind", "kind")
            .app_view("metrics_by_region", "region_id")
            .unit(data_aggregator(AggregatorConfig {
                mix_hospitals: config.vuln.aggregator_mixes_hospitals,
            }))
            .unit(data_producer(
                registry_db.clone(),
                mdts.clone(),
                config.producer,
            ))
            .unit_with_app_db(data_storage)
            .build()
            .expect("deployment starts");

        // Provision web users: one account per MDT plus an admin.
        for mdt in &mdts {
            deployment
                .users()
                .create_user(
                    &mdt.name,
                    &password_for(&mdt.name),
                    &mdt_user_privileges(&mdt.name, mdt.region_id),
                    false,
                )
                .expect("fresh usernames");
        }
        deployment
            .users()
            .create_user("admin", "admin-pw", &admin_privileges(&mdts), true)
            .expect("fresh admin");

        // The application-level privileges table used by check_privileges
        // (the paper's Listing 3).
        let web_db = deployment.users().database().clone();
        create_app_privileges(&web_db, &mdts);

        MdtPortal {
            deployment,
            registry_db,
            mdts,
            expected_records,
        }
    }

    /// The underlying deployment.
    pub fn deployment(&self) -> &SafeWebDeployment {
        &self.deployment
    }

    /// The synthetic registry.
    pub fn registry(&self) -> &Database {
        &self.registry_db
    }

    /// MDTs in the registry.
    pub fn mdts(&self) -> &[MdtInfo] {
        &self.mdts
    }

    /// Blocks until the pipeline has produced and replicated a record for
    /// every patient (or panics after `timeout`).
    ///
    /// # Panics
    ///
    /// Panics if the pipeline does not settle within `timeout`.
    pub fn wait_for_pipeline(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            let records = self.deployment.dmz_db().count_prefix("record-");
            if records >= self.expected_records {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "pipeline did not settle: {records}/{} records in DMZ",
                self.expected_records
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Builds the portal's web application (routes + vulnerability
    /// injection per `vuln`).
    pub fn frontend(&self, vuln: &VulnConfig) -> SafeWebApp {
        let mut app = self
            .deployment
            .new_frontend()
            .with_options(FrontendOptions {
                label_checking: true,
                ..Default::default()
            });
        install_routes(
            &mut app,
            &self.mdts,
            self.deployment.users().database(),
            vuln,
        );
        app
    }
}

fn admin_privileges(mdts: &[MdtInfo]) -> safeweb_labels::PrivilegeSet {
    use safeweb_labels::{LabelPattern, Privilege, PrivilegeKind};
    let mut privs = safeweb_labels::PrivilegeSet::new();
    let everything: LabelPattern = "label:conf:ecric.org.uk/*".parse().expect("valid pattern");
    privs.grant(Privilege::new(PrivilegeKind::Clearance, everything));
    let _ = mdts;
    privs
}

fn create_app_privileges(web_db: &Database, mdts: &[MdtInfo]) {
    let _ = web_db.create_table(
        "app_privileges",
        Schema::new(
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("username", ColumnType::Text),
                ColumnDef::new("hospital_id", ColumnType::Int),
                ColumnDef::new("clinic", ColumnType::Text),
            ],
            "id",
        ),
    );
    for (i, mdt) in mdts.iter().enumerate() {
        web_db
            .insert(
                "app_privileges",
                vec![
                    (i as i64).into(),
                    mdt.name.clone().into(),
                    mdt.hospital_id.into(),
                    mdt.clinic.clone().into(),
                ],
            )
            .expect("fresh app privilege rows");
    }
}

/// The paper's Listing 3: the application-level access check the MDT
/// portal performs *before* fetching records. SafeWeb's point is that
/// bugs here (or its complete omission) cannot disclose data — the label
/// check is the safety net.
fn check_privileges(
    web_db: &Database,
    username: &str,
    is_admin: bool,
    mdt: &MdtInfo,
    vuln: &VulnConfig,
) -> bool {
    if is_admin {
        return true;
    }
    let rows = web_db
        .select("app_privileges", |row| {
            let name_matches = if vuln.case_insensitive_lookup {
                // E7 injection point (Listing 3 line 5): `User.find_by_name`
                // made case-insensitive, so `MDT1` inherits the membership
                // rows of `mdt1`.
                row.text("username")
                    .is_some_and(|u| u.eq_ignore_ascii_case(username))
            } else {
                row.text("username") == Some(username)
            };
            name_matches
                && row.int("hospital_id") == Some(mdt.hospital_id)
                // E8 injection point (Listing 3 line 7): the correct check
                // also matches the clinic; dropping it lets any MDT of the
                // same hospital through the *application* check.
                && (vuln.inappropriate_check || row.text("clinic") == Some(mdt.clinic.as_str()))
        })
        .unwrap_or_default();
    !rows.is_empty()
}

const FRONT_PAGE_TEMPLATE: &str = "<!doctype html>\n<html><head><title>MDT <%= mdt %></title></head>\n<body>\n<h1>MDT <%= mdt %> — patient records</h1>\n<p>Average completeness: <%= avg_completeness %>% over <%= cases %> cases</p>\n<table>\n<tr><th>Case</th><th>Name</th><th>Born</th><th>Site</th><th>Stage</th><th>Treatment</th><th>Completeness</th></tr>\n<% for r in records %><tr><td><%= r.case_id %></td><td><%= r.name %></td><td><%= r.birth_year %></td><td><%= r.site %></td><td><%= r.stage %></td><td><%= r.treatment %></td><td><%= r.completeness %></td></tr>\n<% end %></table>\n</body></html>\n";

const COMPARE_TEMPLATE: &str = "<!doctype html>\n<html><head><title>Compare <%= mdt %></title></head>\n<body>\n<h1>MDT <%= mdt %> in context (region <%= region %>)</h1>\n<table>\n<tr><th>MDT</th><th>Cases</th><th>Avg completeness</th></tr>\n<% for m in peers %><tr><td><%= m.mdt_id %></td><td><%= m.cases %></td><td><%= m.avg_completeness %></td></tr>\n<% end %></table>\n<p>Regional average: <%= regional_avg %>% over <%= regional_cases %> cases</p>\n</body></html>\n";

fn install_routes(app: &mut SafeWebApp, mdts: &[MdtInfo], web_db: &Database, vuln: &VulnConfig) {
    let mdt_index: Arc<BTreeMap<String, MdtInfo>> =
        Arc::new(mdts.iter().map(|m| (m.name.clone(), m.clone())).collect());
    let front_template = Arc::new(Template::parse(FRONT_PAGE_TEMPLATE).expect("valid template"));
    let compare_template = Arc::new(Template::parse(COMPARE_TEMPLATE).expect("valid template"));

    // --- GET /records/:mid — the paper's Listing 2 -----------------------
    let idx = Arc::clone(&mdt_index);
    let db = web_db.clone();
    let vuln_records = *vuln;
    app.get("/records/:mid", move |ctx: &Ctx<'_>| {
        let mid = ctx.param_raw("mid").unwrap_or("").to_string();
        let Some(mdt) = idx.get(&mid) else {
            return SResponse::not_found();
        };
        // E6 injection point: `return nil if !check_privileges(...)`.
        if !vuln_records.omitted_access_check
            && !check_privileges(
                &db,
                &ctx.user().username,
                ctx.user().is_admin,
                mdt,
                &vuln_records,
            )
        {
            return SResponse::error(403, "not a member of this MDT");
        }
        let records = ctx.records_by("by_mid", &mid);
        let json_parts: Vec<SStr> = records.iter().map(SValue::to_json_sstr).collect();
        let mut body = SStr::public("[");
        body.push_sstr(&SStr::join(json_parts.iter(), ","));
        body.push_str("]");
        SResponse::json(body)
    });

    // --- GET /mdt/:mid — the HTML front page (benchmark E1) --------------
    let idx = Arc::clone(&mdt_index);
    let db = web_db.clone();
    let vuln_page = *vuln;
    let template = Arc::clone(&front_template);
    app.get("/mdt/:mid", move |ctx: &Ctx<'_>| {
        let mid = ctx.param_raw("mid").unwrap_or("").to_string();
        let Some(mdt) = idx.get(&mid) else {
            return SResponse::not_found();
        };
        if !vuln_page.omitted_access_check
            && !check_privileges(
                &db,
                &ctx.user().username,
                ctx.user().is_admin,
                mdt,
                &vuln_page,
            )
        {
            return SResponse::error(403, "not a member of this MDT");
        }
        let records = ctx.records_by("by_mid", &mid);
        let rows: Vec<TContext> = records
            .iter()
            .map(|r| {
                let field = |name: &str| -> TValue {
                    r.get(name)
                        .and_then(|v| {
                            v.as_sstr()
                                .or_else(|| v.as_snum().map(|n| n.to_sstr()))
                                .or_else(|| {
                                    v.value()
                                        .as_f64()
                                        .map(|f| SStr::with_label_set(format!("{f}"), *v.labels()))
                                })
                        })
                        .map(TValue::Str)
                        .unwrap_or_else(|| TValue::Str(SStr::public("—")))
                };
                TContext::new()
                    .bind("case_id", field("case_id"))
                    .bind("name", field("name"))
                    .bind("birth_year", field("birth_year"))
                    .bind("site", field("site"))
                    .bind("stage", field("stage"))
                    .bind("treatment", field("treatment"))
                    .bind("completeness", field("completeness"))
            })
            .collect();
        let metrics = ctx.record(&format!("metrics-{mid}"));
        let metric_field = |name: &str| -> TValue {
            metrics
                .as_ref()
                .and_then(|m| m.get(name))
                .and_then(|v| {
                    v.as_sstr()
                        .or_else(|| v.as_snum().map(|n| n.to_sstr()))
                        .or_else(|| {
                            v.value()
                                .as_f64()
                                .map(|f| SStr::with_label_set(format!("{f}"), *v.labels()))
                        })
                })
                .map(TValue::Str)
                .unwrap_or_else(|| TValue::Str(SStr::public("—")))
        };
        let tctx = TContext::new()
            .bind("mdt", SStr::public(mid.clone()))
            .bind("records", TValue::List(rows))
            .bind("avg_completeness", metric_field("avg_completeness"))
            .bind("cases", metric_field("cases"));
        match template.render(&tctx) {
            Ok(body) => SResponse::html(body),
            Err(e) => SResponse::error(500, &format!("template error: {e}")),
        }
    });

    // --- GET /metrics/:mid — per-MDT aggregates (F2/F3) ------------------
    // Cached per clearance: the page is a pure function of the path and the
    // store; the boundary label check keys the cache by PrivilegeSetId.
    let idx = Arc::clone(&mdt_index);
    app.get_cached("/metrics/:mid", move |ctx: &Ctx<'_>| {
        let mid = ctx.param_raw("mid").unwrap_or("").to_string();
        if !idx.contains_key(&mid) {
            return SResponse::not_found();
        }
        match ctx.record(&format!("metrics-{mid}")) {
            Some(doc) => SResponse::json(doc.to_json_sstr()),
            None => SResponse::error(404, "no metrics yet"),
        }
    });

    // --- GET /compare/:mid — region comparison page (F3) -----------------
    // Cached per clearance: the comparison page renders the same rows for
    // every user holding the same privilege set (all users of one MDT).
    let idx = Arc::clone(&mdt_index);
    let template = Arc::clone(&compare_template);
    app.get_cached("/compare/:mid", move |ctx: &Ctx<'_>| {
        let mid = ctx.param_raw("mid").unwrap_or("").to_string();
        let Some(mdt) = idx.get(&mid) else {
            return SResponse::not_found();
        };
        let region = mdt.region_id.to_string();
        let peers = ctx.records_by("metrics_by_region", &region);
        let peer_rows: Vec<TContext> = peers
            .iter()
            .filter(|p| {
                p.get("kind")
                    .and_then(|k| k.as_sstr())
                    .map(|s| s.as_str().to_string())
                    == Some("mdt_metrics".to_string())
            })
            .map(|p| {
                let f = |name: &str| -> TValue {
                    p.get(name)
                        .and_then(|v| {
                            v.as_sstr()
                                .or_else(|| v.as_snum().map(|n| n.to_sstr()))
                                .or_else(|| {
                                    v.value()
                                        .as_f64()
                                        .map(|x| SStr::with_label_set(format!("{x}"), *v.labels()))
                                })
                        })
                        .map(TValue::Str)
                        .unwrap_or_else(|| TValue::Str(SStr::public("—")))
                };
                TContext::new()
                    .bind("mdt_id", f("mdt_id"))
                    .bind("cases", f("cases"))
                    .bind("avg_completeness", f("avg_completeness"))
            })
            .collect();
        let regional = ctx.record(&format!("regional-{region}"));
        let rf = |name: &str| -> TValue {
            regional
                .as_ref()
                .and_then(|m| m.get(name))
                .and_then(|v| {
                    v.as_sstr()
                        .or_else(|| v.as_snum().map(|n| n.to_sstr()))
                        .or_else(|| {
                            v.value()
                                .as_f64()
                                .map(|x| SStr::with_label_set(format!("{x}"), *v.labels()))
                        })
                })
                .map(TValue::Str)
                .unwrap_or_else(|| TValue::Str(SStr::public("—")))
        };
        let tctx = TContext::new()
            .bind("mdt", SStr::public(mid.clone()))
            .bind("region", SStr::public(region.clone()))
            .bind("peers", TValue::List(peer_rows))
            .bind("regional_avg", rf("avg_completeness"))
            .bind("regional_cases", rf("cases"));
        match template.render(&tctx) {
            Ok(body) => SResponse::html(body),
            Err(e) => SResponse::error(500, &format!("template error: {e}")),
        }
    });

    // --- GET /aggregates/regional — visible to every MDT (P1) ------------
    // Cached per clearance (pure function of the store; no user state).
    app.get_cached("/aggregates/regional", move |ctx: &Ctx<'_>| {
        let docs = ctx.records_by("by_kind", "regional_metrics");
        let parts: Vec<SStr> = docs.iter().map(SValue::to_json_sstr).collect();
        let mut body = SStr::public("[");
        body.push_sstr(&SStr::join(parts.iter(), ","));
        body.push_str("]");
        SResponse::json(body)
    });
}
