//! End-to-end tests of the MDT portal: the full pipeline (registry →
//! producer → broker → aggregator → storage → replication → DMZ → HTTP
//! frontend) and the P1 policy matrix.

use std::time::Duration;

use safeweb_http::{Method, Request};
use safeweb_mdt::registry::RegistryConfig;
use safeweb_mdt::{password_for, MdtPortal, PortalConfig, VulnConfig};

fn small_portal() -> MdtPortal {
    let portal = MdtPortal::build(PortalConfig {
        registry: RegistryConfig {
            regions: 2,
            hospitals_per_region: 1,
            mdts_per_hospital: 2,
            patients_per_mdt: 4,
            seed: 11,
        },
        auth_iterations: 500,
        replication_interval: Duration::from_millis(20),
        ..PortalConfig::default()
    });
    portal.wait_for_pipeline(Duration::from_secs(30));
    portal
}

fn get(app: &safeweb_web::SafeWebApp, path: &str, user: &str) -> (u16, String) {
    let resp =
        app.handle(&Request::new(Method::Get, path).with_basic_auth(user, &password_for(user)));
    (
        resp.status(),
        resp.body_str().unwrap_or_default().to_string(),
    )
}

#[test]
fn pipeline_delivers_labelled_records_to_dmz() {
    let portal = small_portal();
    // Every patient produced a record in the DMZ replica, with labels.
    let records = portal.deployment().dmz_db().scan_prefix("record-");
    assert_eq!(records.len(), 16);
    for doc in &records {
        assert!(
            !doc.labels().is_empty(),
            "stored record {} lost its labels",
            doc.id()
        );
    }
    // Metrics and regional aggregates exist too.
    assert!(!portal
        .deployment()
        .dmz_db()
        .scan_prefix("metrics-")
        .is_empty());
    assert!(!portal
        .deployment()
        .dmz_db()
        .scan_prefix("regional-")
        .is_empty());
    // No unit violated policy.
    assert!(portal.deployment().engine_violations().is_empty());
}

#[test]
fn p1_policy_matrix_over_http_pipeline() {
    let portal = small_portal();
    let app = portal.frontend(&VulnConfig::default());
    let mdts = portal.mdts().to_vec();
    // Layout with this config: mdts[0], mdts[1] share hospital in region
    // 0; mdts[2], mdts[3] in region 1.
    let (a, b, c) = (&mdts[0].name, &mdts[1].name, &mdts[2].name);
    assert_eq!(mdts[0].region_id, 0);
    assert_eq!(mdts[2].region_id, 1);

    // Own patient details: allowed.
    let (status, body) = get(&app, &format!("/records/{a}"), a);
    assert_eq!(status, 200);
    assert!(body.contains("\"case_id\""));

    // Another MDT's details: denied (application check, and the label
    // check behind it).
    let (status, _) = get(&app, &format!("/records/{a}"), b);
    assert_eq!(status, 403);
    let (status, _) = get(&app, &format!("/records/{a}"), c);
    assert_eq!(status, 403);

    // Front page renders for the owner.
    let (status, body) = get(&app, &format!("/mdt/{a}"), a);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("patient records"));

    // MDT-level aggregates: same-region MDT may read them...
    let (status, _) = get(&app, &format!("/metrics/{a}"), b);
    assert_eq!(status, 200);
    // ...an other-region MDT may not.
    let (status, _) = get(&app, &format!("/metrics/{a}"), c);
    assert_eq!(status, 403);

    // Regional aggregates: everyone.
    for user in [a, b, c] {
        let (status, body) = get(&app, "/aggregates/regional", user);
        assert_eq!(status, 200);
        assert!(body.contains("regional_metrics"));
    }

    // The comparison page (F3) renders for a member using same-region data.
    let (status, body) = get(&app, &format!("/compare/{a}"), a);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("Regional average"));

    // Unknown MDT 404s; unauthenticated requests 401.
    let (status, _) = get(&app, "/records/mdt-9-9-9", a);
    assert_eq!(status, 404);
    let resp = app.handle(&Request::new(Method::Get, &format!("/records/{a}")));
    assert_eq!(resp.status(), 401);
}

#[test]
fn admin_sees_everything() {
    let portal = small_portal();
    let app = portal.frontend(&VulnConfig::default());
    let a = &portal.mdts()[0].name;
    let resp = app.handle(
        &Request::new(Method::Get, &format!("/records/{a}")).with_basic_auth("admin", "admin-pw"),
    );
    assert_eq!(resp.status(), 200);
}

#[test]
fn served_over_real_http() {
    let portal = small_portal();
    let app = portal.frontend(&VulnConfig::default());
    let server = portal
        .deployment()
        .serve(app, "127.0.0.1:0")
        .expect("bind frontend");
    let addr = server.addr().to_string();
    let a = &portal.mdts()[0].name;
    let resp = safeweb_http::client::send(
        &addr,
        Request::new(Method::Get, &format!("/mdt/{a}")).with_basic_auth(a, &password_for(a)),
    )
    .expect("request");
    assert_eq!(resp.status(), 200);
    assert!(resp.body_str().unwrap().contains("patient records"));
}
