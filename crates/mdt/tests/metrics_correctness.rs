//! Functional correctness of the aggregation pipeline (F2/F3): metric
//! documents must count *distinct cases* and average completeness
//! correctly, and carry the right aggregate labels.

use std::time::Duration;

use safeweb_json::Value;
use safeweb_labels::Label;
use safeweb_mdt::registry::RegistryConfig;
use safeweb_mdt::{MdtPortal, PortalConfig};

fn portal() -> MdtPortal {
    let portal = MdtPortal::build(PortalConfig {
        registry: RegistryConfig {
            regions: 1,
            hospitals_per_region: 1,
            mdts_per_hospital: 1,
            patients_per_mdt: 10,
            seed: 99,
        },
        auth_iterations: 300,
        replication_interval: Duration::from_millis(15),
        ..PortalConfig::default()
    });
    portal.wait_for_pipeline(Duration::from_secs(30));
    // Allow trailing metric updates to replicate.
    std::thread::sleep(Duration::from_millis(200));
    portal
}

#[test]
fn metrics_count_distinct_cases() {
    let portal = portal();
    let mdt = &portal.mdts()[0];
    let doc = portal
        .deployment()
        .dmz_db()
        .get(&format!("metrics-{}", mdt.name))
        .expect("metrics doc exists");
    // 10 patients = 10 distinct cases, even though each case produced
    // 2–3 events (patient, tumour, optional treatment).
    assert_eq!(doc.body().get("cases").and_then(Value::as_i64), Some(10));

    let regional = portal
        .deployment()
        .dmz_db()
        .get(&format!("regional-{}", mdt.region_id))
        .expect("regional doc exists");
    assert_eq!(
        regional.body().get("cases").and_then(Value::as_i64),
        Some(10)
    );
}

#[test]
fn average_completeness_matches_records() {
    let portal = portal();
    let mdt = &portal.mdts()[0];
    let records = portal.deployment().dmz_db().scan_prefix("record-");
    assert_eq!(records.len(), 10);
    let sum: f64 = records
        .iter()
        .map(|d| {
            d.body()
                .get("completeness")
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
        })
        .sum();
    let expected_avg = (sum / records.len() as f64).round();

    let doc = portal
        .deployment()
        .dmz_db()
        .get(&format!("metrics-{}", mdt.name))
        .expect("metrics doc");
    let avg = doc
        .body()
        .get("avg_completeness")
        .and_then(Value::as_f64)
        .expect("avg field");
    assert_eq!(avg, expected_avg, "metric average must match the records");
    // Completeness is a percentage.
    assert!((0.0..=100.0).contains(&avg));
}

#[test]
fn aggregate_documents_carry_aggregate_labels() {
    let portal = portal();
    let mdt = &portal.mdts()[0];

    // Patient-level records carry the MDT label.
    let record = portal
        .deployment()
        .dmz_db()
        .scan_prefix("record-")
        .into_iter()
        .next()
        .expect("a record");
    assert!(record
        .labels()
        .contains(&safeweb_mdt::labels::mdt_label(&mdt.name)));

    // MDT metrics carry the per-region aggregate label — NOT the MDT
    // label (that is the relabelling step of §3.1).
    let metrics = portal
        .deployment()
        .dmz_db()
        .get(&format!("metrics-{}", mdt.name))
        .expect("metrics doc");
    assert!(metrics
        .labels()
        .contains(&safeweb_mdt::labels::region_aggregate_label(mdt.region_id)));
    assert!(!metrics
        .labels()
        .contains(&safeweb_mdt::labels::mdt_label(&mdt.name)));

    // Regional aggregates carry only the regional label.
    let regional = portal
        .deployment()
        .dmz_db()
        .get(&format!("regional-{}", mdt.region_id))
        .expect("regional doc");
    assert_eq!(
        regional.labels().to_wire(),
        safeweb_mdt::labels::regional_label().to_string()
    );
}

#[test]
fn records_contain_joined_case_fields() {
    let portal = portal();
    let records = portal.deployment().dmz_db().scan_prefix("record-");
    // Every record has the tumour join; treatments exist for ~80%.
    for doc in &records {
        assert!(doc.body().get("site").is_some(), "{:?}", doc.id());
        assert!(doc.body().get("birth_year").is_some());
        assert!(doc.body().get("completeness").is_some());
    }
    let with_treatment = records
        .iter()
        .filter(|d| d.body().get("treatment").is_some())
        .count();
    assert!(with_treatment >= 1, "some cases must have treatments");
    let _ = Label::conf("e", "x"); // silence unused import in cfg paths
}
