//! # safeweb-events
//!
//! The SafeWeb event model (§4.1): an event is a set of key-value
//! attribute pairs plus an optional data payload, all untyped strings. A
//! [`LabelledEvent`] pairs an event with the [`LabelSet`](safeweb_labels::LabelSet) the middleware
//! tracks as the event propagates between processing units.
//!
//! ```
//! use safeweb_events::Event;
//! use safeweb_labels::Label;
//!
//! let event = Event::new("/patient_report")?
//!     .with_attr("type", "cancer")
//!     .with_attr("patient_id", "33812769")
//!     .with_payload("histology: ...");
//! let labelled = event.with_labels([Label::conf("ecric.org.uk", "patient/33812769")]);
//! assert_eq!(labelled.labels().len(), 1);
//! # Ok::<(), safeweb_events::EventError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod id;

pub use event::{Event, EventError, LabelledEvent, RESERVED_ATTRIBUTES};
pub use id::EventId;
