//! Events and labelled events.

use std::collections::BTreeMap;
use std::fmt;

use safeweb_labels::{Label, LabelSet};
use safeweb_obs::TraceId;
use safeweb_selector::AttributeSource;

use crate::id::EventId;

/// Attribute names reserved for the middleware; application events may not
/// use them because they are carried as protocol headers on the wire.
pub const RESERVED_ATTRIBUTES: &[&str] = &[
    "destination",
    "selector",
    "subscription",
    "content-length",
    "x-safeweb-labels",
    "x-safeweb-id",
    "receipt",
];

/// Error constructing an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventError {
    /// The topic is empty or contains whitespace/control characters.
    InvalidTopic(String),
    /// The attribute name is reserved for the middleware or malformed.
    InvalidAttribute(String),
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::InvalidTopic(t) => write!(f, "invalid event topic {t:?}"),
            EventError::InvalidAttribute(a) => write!(f, "invalid or reserved attribute {a:?}"),
        }
    }
}

impl std::error::Error for EventError {}

/// An application event: topic, string attributes and an optional payload
/// (§4.1 — "the keys, values and the body are untyped strings").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    id: EventId,
    topic: String,
    attributes: BTreeMap<String, String>,
    payload: Option<String>,
}

impl Event {
    /// Creates an event on `topic` with a fresh [`EventId`].
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidTopic`] if the topic is empty or
    /// contains whitespace or control characters.
    pub fn new(topic: &str) -> Result<Event, EventError> {
        if topic.is_empty() || topic.chars().any(|c| c.is_whitespace() || c.is_control()) {
            return Err(EventError::InvalidTopic(topic.to_string()));
        }
        Ok(Event {
            id: EventId::generate(),
            topic: topic.to_string(),
            attributes: BTreeMap::new(),
            payload: None,
        })
    }

    /// The unique identifier of this event.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// Overrides the identifier (used when decoding from the wire so the
    /// id survives transport).
    pub fn set_id(&mut self, id: EventId) {
        self.id = id;
    }

    /// The topic the event is published on.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// The attribute map.
    pub fn attributes(&self) -> &BTreeMap<String, String> {
        &self.attributes
    }

    /// Looks up one attribute.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.get(name).map(String::as_str)
    }

    /// Sets an attribute in place.
    ///
    /// # Errors
    ///
    /// Returns [`EventError::InvalidAttribute`] for reserved or malformed
    /// names (empty, or containing `:`, newline or control characters —
    /// these would corrupt the STOMP header encoding).
    pub fn set_attr(&mut self, name: &str, value: &str) -> Result<(), EventError> {
        if name.is_empty()
            || RESERVED_ATTRIBUTES.contains(&name)
            || name
                .chars()
                .any(|c| c == ':' || c.is_control() || c.is_whitespace())
            || value.chars().any(|c| c == '\n' || c == '\r')
        {
            return Err(EventError::InvalidAttribute(name.to_string()));
        }
        self.attributes.insert(name.to_string(), value.to_string());
        Ok(())
    }

    /// Builder-style attribute setter.
    ///
    /// # Panics
    ///
    /// Panics on reserved or malformed attribute names; use
    /// [`Event::set_attr`] for fallible setting.
    pub fn with_attr(mut self, name: &str, value: &str) -> Event {
        self.set_attr(name, value)
            .unwrap_or_else(|e| panic!("with_attr: {e}"));
        self
    }

    /// The payload body, if any.
    pub fn payload(&self) -> Option<&str> {
        self.payload.as_deref()
    }

    /// Sets the payload body.
    pub fn set_payload(&mut self, payload: impl Into<String>) {
        self.payload = Some(payload.into());
    }

    /// Builder-style payload setter.
    pub fn with_payload(mut self, payload: impl Into<String>) -> Event {
        self.set_payload(payload);
        self
    }

    /// Wraps this event with labels, producing a [`LabelledEvent`].
    pub fn with_labels<I: IntoIterator<Item = Label>>(self, labels: I) -> LabelledEvent {
        LabelledEvent::new(self, labels.into_iter().collect())
    }

    /// Wraps this event with an existing label set.
    pub fn with_label_set(self, labels: LabelSet) -> LabelledEvent {
        LabelledEvent::new(self, labels)
    }
}

impl AttributeSource for Event {
    fn attribute(&self, name: &str) -> Option<&str> {
        self.attr(name)
    }
}

/// An event together with the security labels SafeWeb tracks for it.
///
/// The labels are *not* part of the application-visible attribute map; they
/// travel as a protected header (`x-safeweb-labels`) that only the
/// middleware may write.
#[derive(Debug, Clone)]
pub struct LabelledEvent {
    event: Event,
    // An interned handle: one pointer, `Copy`, equality by id. The broker
    // clones every event once per matching subscriber and this costs
    // nothing per clone (the CoW `Arc<LabelSet>` this replaced is obsolete
    // now that label sets are hash-consed).
    labels: LabelSet,
    // The causal chain this event belongs to. Inherited from the
    // thread's ambient trace scope at construction (a frontend request,
    // a unit activation), or minted by the broker at first publish.
    trace: TraceId,
}

/// Trace ids are telemetry routing, not event identity: two events that
/// agree on content and labels are equal even if observed under
/// different traces.
impl PartialEq for LabelledEvent {
    fn eq(&self, other: &LabelledEvent) -> bool {
        self.event == other.event && self.labels == other.labels
    }
}

impl Eq for LabelledEvent {}

impl LabelledEvent {
    /// Creates a labelled event, inheriting the ambient
    /// [`trace scope`](safeweb_obs::trace_scope) of the calling thread
    /// (unset outside any scope).
    pub fn new(event: Event, labels: LabelSet) -> LabelledEvent {
        LabelledEvent {
            event,
            labels,
            trace: safeweb_obs::current_trace(),
        }
    }

    /// The trace this event belongs to ([`TraceId::UNSET`] if it has
    /// not been traced yet).
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// Attaches a trace id (used by the broker to mint one at first
    /// publish for engine-originated events, and by transports to
    /// restore the id after the wire).
    pub fn set_trace_id(&mut self, trace: TraceId) {
        self.trace = trace;
    }

    /// Builder-style trace attachment.
    pub fn with_trace_id(mut self, trace: TraceId) -> LabelledEvent {
        self.trace = trace;
        self
    }

    /// The underlying event.
    pub fn event(&self) -> &Event {
        &self.event
    }

    /// The labels currently attached.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Replaces the label set, returning the rewritten event — the builder
    /// path the enforcement layers use instead of mutating labels in place.
    pub fn with_label_set(mut self, labels: LabelSet) -> LabelledEvent {
        self.labels = labels;
        self
    }

    /// Rewrites the labels through `f`, returning the rewritten event.
    ///
    /// This replaces the old `labels_mut` escape hatch: label rewrites are
    /// now explicit set-to-set functions (the enforcement layers compute a
    /// new interned set and re-point the event at it), which keeps every
    /// relabelling auditable at the call site.
    pub fn map_labels<F: FnOnce(LabelSet) -> LabelSet>(self, f: F) -> LabelledEvent {
        let labels = f(self.labels);
        self.with_label_set(labels)
    }

    /// Splits into parts.
    pub fn into_parts(self) -> (Event, LabelSet) {
        (self.event, self.labels)
    }

    /// Convenience: topic of the inner event.
    pub fn topic(&self) -> &str {
        self.event.topic()
    }

    /// Convenience: attribute of the inner event.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.event.attr(name)
    }

    /// Derives a new labelled event from this one, combining labels per
    /// §4.1 (confidentiality union, integrity intersection) with the labels
    /// of `other_inputs`.
    pub fn derive(&self, event: Event, other_inputs: &[&LabelledEvent]) -> LabelledEvent {
        let mut labels = self.labels;
        for other in other_inputs {
            labels = labels.combine(&other.labels);
        }
        // Causality follows the primary input: the derived event stays
        // on this event's trace (falling back to the ambient scope).
        let trace = if self.trace.is_set() {
            self.trace
        } else {
            safeweb_obs::current_trace()
        };
        LabelledEvent {
            event,
            labels,
            trace,
        }
    }
}

impl AttributeSource for LabelledEvent {
    fn attribute(&self, name: &str) -> Option<&str> {
        self.event.attr(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use safeweb_selector::Selector;

    #[test]
    fn builds_event_with_attributes_and_payload() {
        let e = Event::new("/patient_report")
            .unwrap()
            .with_attr("type", "cancer")
            .with_payload("body");
        assert_eq!(e.topic(), "/patient_report");
        assert_eq!(e.attr("type"), Some("cancer"));
        assert_eq!(e.payload(), Some("body"));
    }

    #[test]
    fn rejects_bad_topics() {
        assert!(Event::new("").is_err());
        assert!(Event::new("has space").is_err());
        assert!(Event::new("ok/topic").is_ok());
    }

    #[test]
    fn rejects_reserved_attributes() {
        let mut e = Event::new("/t").unwrap();
        for name in RESERVED_ATTRIBUTES {
            assert!(e.set_attr(name, "v").is_err(), "{name}");
        }
        assert!(e.set_attr("with:colon", "v").is_err());
        assert!(e.set_attr("", "v").is_err());
        assert!(e.set_attr("ok", "line\nbreak").is_err());
    }

    #[test]
    fn selector_matches_event_attributes() {
        let e = Event::new("/t")
            .unwrap()
            .with_attr("type", "cancer")
            .with_attr("age", "61");
        let sel = Selector::parse("type = 'cancer' AND age > 50").unwrap();
        assert!(sel.matches(&e));
    }

    #[test]
    fn derive_combines_labels() {
        use safeweb_labels::Label;
        let a = Event::new("/a")
            .unwrap()
            .with_labels([Label::conf("e", "p/1"), Label::int("e", "ok")]);
        let b = Event::new("/b")
            .unwrap()
            .with_labels([Label::conf("e", "p/2"), Label::int("e", "ok")]);
        let c = Event::new("/c").unwrap();
        let derived = a.derive(c, &[&b]);
        assert!(derived.labels().contains(&Label::conf("e", "p/1")));
        assert!(derived.labels().contains(&Label::conf("e", "p/2")));
        assert!(derived.labels().contains(&Label::int("e", "ok")));

        let d = Event::new("/d")
            .unwrap()
            .with_labels([Label::conf("e", "p/3")]);
        let derived2 = a.derive(Event::new("/c2").unwrap(), &[&d]);
        // d lacks the integrity label, so it must not survive.
        assert!(!derived2.labels().contains(&Label::int("e", "ok")));
    }

    #[test]
    fn ids_survive_set_id() {
        let mut e = Event::new("/t").unwrap();
        let id = EventId::from_parts(1, 2);
        e.set_id(id);
        assert_eq!(e.id(), id);
    }
}
