//! Unique event identifiers.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

/// A process-unique event identifier.
///
/// Combines a per-process random prefix with a monotonically increasing
/// counter, so identifiers from different producers collide with negligible
/// probability while remaining cheap to generate and humanly readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    prefix: u64,
    seq: u64,
}

static COUNTER: AtomicU64 = AtomicU64::new(1);

fn process_prefix() -> u64 {
    use std::sync::OnceLock;
    static PREFIX: OnceLock<u64> = OnceLock::new();
    *PREFIX.get_or_init(rand::random::<u64>)
}

impl EventId {
    /// Generates a fresh identifier.
    pub fn generate() -> EventId {
        EventId {
            prefix: process_prefix(),
            seq: COUNTER.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Reconstructs an identifier from its two components (used when
    /// decoding from the wire).
    pub fn from_parts(prefix: u64, seq: u64) -> EventId {
        EventId { prefix, seq }
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}-{:x}", self.prefix, self.seq)
    }
}

/// Error parsing an [`EventId`] from its string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEventIdError;

impl fmt::Display for ParseEventIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid event id syntax")
    }
}

impl std::error::Error for ParseEventIdError {}

impl FromStr for EventId {
    type Err = ParseEventIdError;

    fn from_str(s: &str) -> Result<EventId, ParseEventIdError> {
        let (prefix, seq) = s.split_once('-').ok_or(ParseEventIdError)?;
        Ok(EventId {
            prefix: u64::from_str_radix(prefix, 16).map_err(|_| ParseEventIdError)?,
            seq: u64::from_str_radix(seq, 16).map_err(|_| ParseEventIdError)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_ordered() {
        let a = EventId::generate();
        let b = EventId::generate();
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn string_roundtrip() {
        let id = EventId::generate();
        let s = id.to_string();
        assert_eq!(s.parse::<EventId>().unwrap(), id);
    }

    #[test]
    fn rejects_garbage() {
        assert!("nope".parse::<EventId>().is_err());
        assert!("xx-yy".parse::<EventId>().is_err());
    }
}
