//! Property tests for the fixed-bucket histogram against a sorted-`Vec`
//! oracle: quantiles must equal the bucket upper bound covering the true
//! order statistic, bucket assignment must respect the boundary
//! convention (`lo < v <= hi`), and per-writer snapshots merged together
//! must be indistinguishable from one shared histogram.

use proptest::prelude::*;
use safeweb_obs::{Histogram, HistogramSnapshot};

/// The bucket upper bound the histogram is *allowed* to report for a
/// raw value: the smallest bound `>= v`, saturating to the last bound
/// for overflow observations.
fn covering_bound(bounds: &[u64], v: u64) -> u64 {
    bounds
        .iter()
        .copied()
        .find(|b| v <= *b)
        .unwrap_or(*bounds.last().unwrap())
}

/// The oracle: sort the raw observations, take the 1-based rank
/// `max(1, ceil(q*n))` order statistic, and map it through the bucket
/// layout. Bucket resolution loses the exact value but must never move
/// the statistic into a different bucket.
fn oracle_quantile(bounds: &[u64], values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    covering_bound(bounds, sorted[rank - 1])
}

fn arb_bounds() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        Just(Histogram::latency_bounds().to_vec()),
        Just(Histogram::size_bounds().to_vec()),
        // Irregular layouts shake out off-by-ones the power-of-two
        // layouts cannot (repeats removed to keep bounds strictly
        // increasing).
        proptest::collection::vec(1u64..10_000, 1..12).prop_map(|mut b| {
            b.sort_unstable();
            b.dedup();
            b
        }),
    ]
}

proptest! {
    /// Quantiles at bucket resolution equal the sorted-Vec oracle for
    /// every q, including the tails the registry snapshots (p50, p99,
    /// p999).
    #[test]
    fn quantiles_match_the_sorted_vec_oracle(
        bounds in arb_bounds(),
        values in proptest::collection::vec(0u64..100_000, 1..300),
        permille in proptest::collection::vec(1u64..1001, 1..8),
    ) {
        let h = Histogram::with_bounds(&bounds);
        for v in &values {
            h.observe(*v);
        }
        let qs: Vec<f64> = permille.iter().map(|p| *p as f64 / 1000.0).collect();
        for q in qs.iter().chain([0.5, 0.99, 0.999].iter()) {
            prop_assert_eq!(
                h.quantile(*q),
                oracle_quantile(&bounds, &values, *q),
                "q={} over {} values", q, values.len()
            );
        }
    }

    /// Boundary convention: an observation lands in bucket `i` iff
    /// `bounds[i-1] < v <= bounds[i]`; values above the last bound land
    /// in the overflow bucket, and a value *equal* to a bound lands at
    /// that bound, not the next bucket up.
    #[test]
    fn bucket_assignment_respects_boundaries(bounds in arb_bounds(), v in 0u64..200_000) {
        let h = Histogram::with_bounds(&bounds);
        h.observe(v);
        let snap = h.snapshot();
        let idx = snap.counts.iter().position(|c| *c == 1).unwrap();
        if idx < bounds.len() {
            prop_assert!(v <= bounds[idx], "value above its bucket's bound");
        } else {
            prop_assert!(v > *bounds.last().unwrap(), "finite value in overflow");
        }
        if idx > 0 {
            prop_assert!(v > bounds[idx - 1], "value belongs in an earlier bucket");
        }
    }

    /// Exact bound values are the interesting edge: `observe(bound)`
    /// must count under that bound (closed upper interval), so the
    /// quantile of a bound-only stream is the bound itself.
    #[test]
    fn exact_bound_observations_stay_in_their_bucket(bounds in arb_bounds()) {
        let h = Histogram::with_bounds(&bounds);
        for b in &bounds {
            h.observe(*b);
        }
        let snap = h.snapshot();
        for (i, _) in bounds.iter().enumerate() {
            prop_assert_eq!(snap.counts[i], 1, "one observation per finite bucket");
        }
        prop_assert_eq!(*snap.counts.last().unwrap(), 0, "no overflow");
    }

    /// Sharded writers: distributing the same observations over any
    /// partition of per-writer histograms and merging the snapshots is
    /// equivalent to one shared histogram — counts, sum and every
    /// quantile.
    #[test]
    fn merged_shards_equal_one_shared_histogram(
        bounds in arb_bounds(),
        values in proptest::collection::vec(0u64..100_000, 1..200),
        shards in 1usize..6,
    ) {
        let shared = Histogram::with_bounds(&bounds);
        let per_shard: Vec<Histogram> =
            (0..shards).map(|_| Histogram::with_bounds(&bounds)).collect();
        for (i, v) in values.iter().enumerate() {
            shared.observe(*v);
            per_shard[i % shards].observe(*v);
        }
        let mut merged: HistogramSnapshot = per_shard[0].snapshot();
        for shard in &per_shard[1..] {
            merged.merge(&shard.snapshot());
        }
        prop_assert_eq!(&merged, &shared.snapshot());
        for q in [0.5, 0.9, 0.99, 0.999] {
            prop_assert_eq!(merged.quantile(q), shared.quantile(q));
        }
    }

    /// Quantiles are monotone in q and bracketed by the covering bounds
    /// of the extremes.
    #[test]
    fn quantiles_are_monotone(
        bounds in arb_bounds(),
        values in proptest::collection::vec(0u64..100_000, 1..200),
    ) {
        let h = Histogram::with_bounds(&bounds);
        for v in &values {
            h.observe(*v);
        }
        let (p50, p99, p999) = (h.p50(), h.p99(), h.p999());
        prop_assert!(p50 <= p99 && p99 <= p999);
        let min = covering_bound(&bounds, *values.iter().min().unwrap());
        let max = covering_bound(&bounds, *values.iter().max().unwrap());
        prop_assert!(min <= p50 && p999 <= max);
    }
}

/// True concurrency (not just a partition): racing writers through
/// clone handles onto one histogram lose nothing, and the result equals
/// the same observations applied sequentially.
#[test]
fn concurrent_writers_lose_no_observations() {
    let shared = Histogram::new();
    let threads = 8;
    let per_thread: u64 = 5_000;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let handle = shared.clone();
            scope.spawn(move || {
                for i in 0..per_thread {
                    // Spread across buckets deterministically.
                    handle.observe((i * 997 + t * 131) % 50_000_000);
                }
            });
        }
    });

    let sequential = Histogram::new();
    for t in 0..threads {
        for i in 0..per_thread {
            sequential.observe((i * 997 + t * 131) % 50_000_000);
        }
    }
    assert_eq!(shared.count(), threads * per_thread);
    assert_eq!(shared.snapshot(), sequential.snapshot());
}
